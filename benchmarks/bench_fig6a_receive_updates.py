"""Figure 6(a): time to receive and learn N routing updates.

Paper: ~40 ms at 100 updates for every implementation; flat below ~10K;
then near-linear growth.  FRRouting fastest, GoBGP ~ BIRD, TENSOR slowest
(its replication adds database writes, verify reads and delayed ACKs):
"at least 5 seconds for any open-sourced implementation" at 500K, and
TENSOR's overhead "less than one second to receive tens of thousands of
routing updates".
"""

from conftest import PROFILES, PROFILE_LABELS, DaemonLab, run_once
from repro.metrics import format_table
from repro.sim.calibration import BGP_SESSION_SETUP_COST

UPDATE_COUNTS = (100, 1_000, 10_000, 50_000, 100_000, 500_000)


def run_experiment():
    results = {}
    for profile in PROFILES:
        times = []
        for count in UPDATE_COUNTS:
            lab = DaemonLab(profile)
            # the paper's measurement includes session setup overheads; the
            # calibrated floor keeps the 100-update point at ~40 ms
            times.append(BGP_SESSION_SETUP_COST + lab.receive_time(count))
        results[profile] = times
    return results


def test_fig6a_receive_updates(benchmark):
    results = run_once(benchmark, run_experiment)
    print()
    rows = [
        [PROFILE_LABELS[p]] + [f"{t:.3f}" for t in results[p]]
        for p in PROFILES
    ]
    print(format_table(
        ["implementation"] + [f"{c:,}" for c in UPDATE_COUNTS],
        rows,
        title="Fig 6(a): receive+learn time (s) vs number of updates",
    ))
    idx = {c: i for i, c in enumerate(UPDATE_COUNTS)}
    # ~40 ms floor at 100 updates, all implementations
    for profile in PROFILES:
        assert 0.02 < results[profile][idx[100]] < 0.08
    # under 10K updates everyone stays sub-second ("tens of milliseconds"
    # to ~100 ms), TENSOR included
    for profile in PROFILES:
        assert results[profile][idx[10_000]] < 1.0
    # ordering at 500K: FRR < BIRD <= GoBGP < TENSOR
    at_max = {p: results[p][idx[500_000]] for p in PROFILES}
    assert at_max["frr"] < at_max["bird"] <= at_max["gobgp"] < at_max["tensor"]
    # "at least 5 seconds for any open-sourced implementation" at 500K
    assert at_max["frr"] >= 4.5
    # TENSOR's overhead over FRR is bounded: <1 s at 50K updates
    overhead_50k = results["tensor"][idx[50_000]] - results["frr"][idx[50_000]]
    assert 0 < overhead_50k < 1.0
    # near-linear growth past 10K: 5x updates -> ~5x time (within 40%)
    for profile in PROFILES:
        ratio = results[profile][idx[500_000]] / results[profile][idx[100_000]]
        assert 3.0 < ratio < 7.0
