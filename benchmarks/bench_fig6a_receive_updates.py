"""Figure 6(a): time to receive and learn N routing updates.

Paper: ~40 ms at 100 updates for every implementation; flat below ~10K;
then near-linear growth.  FRRouting fastest, GoBGP ~ BIRD, TENSOR slowest
(its replication adds database writes, verify reads and delayed ACKs):
"at least 5 seconds for any open-sourced implementation" at 500K, and
TENSOR's overhead "less than one second to receive tens of thousands of
routing updates".
"""

from conftest import PROFILES, PROFILE_LABELS, DaemonLab, run_once
from repro.metrics import format_table
from repro.sim.calibration import BGP_SESSION_SETUP_COST
from repro.trace import Tracer

UPDATE_COUNTS = (100, 1_000, 10_000, 50_000, 100_000, 500_000)


def run_experiment():
    results = {}
    for profile in PROFILES:
        times = []
        for count in UPDATE_COUNTS:
            lab = DaemonLab(profile)
            # the paper's measurement includes session setup overheads; the
            # calibrated floor keeps the 100-update point at ~40 ms
            times.append(BGP_SESSION_SETUP_COST + lab.receive_time(count))
        results[profile] = times
    return results


def test_fig6a_receive_updates(benchmark):
    results = run_once(benchmark, run_experiment)
    print()
    rows = [
        [PROFILE_LABELS[p]] + [f"{t:.3f}" for t in results[p]]
        for p in PROFILES
    ]
    print(format_table(
        ["implementation"] + [f"{c:,}" for c in UPDATE_COUNTS],
        rows,
        title="Fig 6(a): receive+learn time (s) vs number of updates",
    ))
    idx = {c: i for i, c in enumerate(UPDATE_COUNTS)}
    # ~40 ms floor at 100 updates, all implementations
    for profile in PROFILES:
        assert 0.02 < results[profile][idx[100]] < 0.08
    # under 10K updates everyone stays sub-second ("tens of milliseconds"
    # to ~100 ms), TENSOR included
    for profile in PROFILES:
        assert results[profile][idx[10_000]] < 1.0
    # ordering at 500K: FRR < BIRD <= GoBGP < TENSOR
    at_max = {p: results[p][idx[500_000]] for p in PROFILES}
    assert at_max["frr"] < at_max["bird"] <= at_max["gobgp"] < at_max["tensor"]
    # "at least 5 seconds for any open-sourced implementation" at 500K
    assert at_max["frr"] >= 4.5
    # TENSOR's overhead over FRR is bounded: <1 s at 50K updates
    overhead_50k = results["tensor"][idx[50_000]] - results["frr"][idx[50_000]]
    assert 0 < overhead_50k < 1.0
    # near-linear growth past 10K: 5x updates -> ~5x time (within 40%)
    for profile in PROFILES:
        ratio = results[profile][idx[500_000]] / results[profile][idx[100_000]]
        assert 3.0 < ratio < 7.0


def run_traced_receive(count=1_000):
    """One TENSOR receive run with the causal tracer attached; returns
    (trace store, wall-clock receive time)."""
    lab = DaemonLab("tensor")
    tracer = Tracer(lab.engine)  # installed after convergence
    elapsed = lab.receive_time(count)
    lab.engine.advance(2.0)  # drain in-flight replication + held ACKs
    return tracer.store, elapsed


def test_fig6a_tensor_phase_budget(benchmark):
    """Fig. 6(a) shows TENSOR's receive-path total; the tracer shows
    where it goes.  Phase-level budget: replication (the only phase
    TENSOR adds over a plain speaker) must account for the bulk of the
    per-update latency, the delayed-ACK equality must hold for every
    update, and no phase may exceed the sub-second overhead the paper
    claims for tens of thousands of updates."""
    store, elapsed = run_once(benchmark, run_traced_receive)
    summary = store.phase_summary()
    print()
    print(format_table(
        ["phase", "spans", "mean ms", "max ms"],
        [[p, s["count"], f"{s['mean'] * 1e3:.3f}", f"{s['max'] * 1e3:.3f}"]
         for p, s in summary.items()],
        title=f"Fig 6(a) companion: TENSOR per-phase receive latency"
              f" (1,000 updates in {elapsed:.3f}s)",
    ))
    # the lab's single peer means no re-propagation; the other four
    # phases must cover every traced update
    updates = len(store.update_ids(msg="UpdateMessage"))
    assert updates > 0
    for phase in ("receive", "replicate", "ack_release", "apply"):
        assert summary[phase]["count"] >= updates
    assert store.delayed_ack_violations() == []
    # budget: replication dominates, yet every phase stays sub-second
    assert summary["replicate"]["mean"] > summary["apply"]["mean"]
    for phase in ("receive", "replicate", "ack_release", "apply"):
        assert summary[phase]["max"] < 1.0
