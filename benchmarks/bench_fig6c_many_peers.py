"""Figure 6(c): sending 100 updates each to 50-700 peering ASes.

Paper: "we observe similar performance for TENSOR, FRRouting, and BIRD,
whereas GoBGP costs at least 5x more time than the other implementations
... because the update packing is not implemented in GoBGP.  Moreover,
TENSOR outperforms BIRD when the number of peering ASes is greater than
600."
"""

import random

from conftest import PROFILES, PROFILE_LABELS, run_once
from repro.bgp import PeerConfig, SpeakerConfig
from repro.bgp.speaker import BgpSpeaker
from repro.core.replication import ReplicationPipeline
from repro.core.tensor_process import TensorBgpSpeaker
from repro.kvstore import KvClient, KvServer
from repro.metrics import format_table
from repro.sim import DeterministicRandom, Engine, Network
from repro.tcpsim import TcpStack
from repro.workloads.updates import RouteGenerator

PEER_COUNTS = (50, 100, 200, 300, 400, 500, 600, 700)
UPDATES_PER_PEER = 100


def fanout_time(profile, peer_count):
    engine = Engine()
    network = Network(engine, DeterministicRandom(11))
    network.enable_fabric(latency=5e-5)
    gw_host = network.add_host("gw", "10.0.0.1")
    gw_stack = TcpStack(engine, gw_host)
    if profile == "tensor":
        db_host = network.add_host("db", "10.254.0.1")
        KvServer(engine, db_host)
        fast = KvClient(engine, gw_host, "10.254.0.1")
        bulk = KvClient(engine, gw_host, "10.254.0.1")
        gw = TensorBgpSpeaker(
            engine, gw_stack,
            SpeakerConfig("gw", 65001, "10.0.0.1", profile="tensor"),
            ReplicationPipeline("bench6c", fast, bulk), "bench6c",
        )
    else:
        gw = BgpSpeaker(
            engine, gw_stack, SpeakerConfig("gw", 65001, "10.0.0.1", profile=profile)
        )
    gw.add_vrf("v1")
    remotes = []
    for i in range(peer_count):
        addr = f"192.0.{i // 250}.{i % 250 + 1}"
        host = network.add_host(f"r{i}", addr)
        stack = TcpStack(engine, host)
        remote = BgpSpeaker(
            engine, stack, SpeakerConfig(f"r{i}", 64512 + i, addr, profile="frr")
        )
        remote.add_vrf("v1")
        remote.add_peer(PeerConfig("10.0.0.1", 65001, vrf_name="v1", mode="active"))
        gw.add_peer(PeerConfig(addr, 64512 + i, vrf_name="v1", mode="passive"))
        remotes.append(remote)
    gw.start()
    for remote in remotes:
        remote.start()
    engine.advance(10.0)
    established = gw.established_sessions()
    assert len(established) == peer_count

    gen = RouteGenerator(random.Random(5), 65001, next_hop="10.0.0.1")
    routes = gen.uniform_routes(UPDATES_PER_PEER)
    target = peer_count * UPDATES_PER_PEER
    done_at = [None]
    original = gw._transmit

    def tracking_transmit(session, message, wire):
        original(session, message, wire)
        if gw.total_updates_sent >= target and done_at[0] is None:
            done_at[0] = engine.now

    gw._transmit = tracking_transmit
    start = engine.now
    gw.advertise_routes_to_sessions(routes, established)
    while done_at[0] is None:
        engine.advance(0.1)
        if engine.now - start > 600:
            raise TimeoutError("fan-out did not finish")
    return done_at[0] - start


def run_experiment():
    return {
        profile: [fanout_time(profile, n) for n in PEER_COUNTS]
        for profile in PROFILES
    }


def test_fig6c_many_peers(benchmark):
    results = run_once(benchmark, run_experiment)
    print()
    rows = [
        [PROFILE_LABELS[p]] + [f"{t:.3f}" for t in results[p]]
        for p in PROFILES
    ]
    print(format_table(
        ["implementation"] + [str(n) for n in PEER_COUNTS],
        rows,
        title=f"Fig 6(c): time (s) to send {UPDATES_PER_PEER} updates to"
              " each of N peers",
    ))
    idx = {n: i for i, n in enumerate(PEER_COUNTS)}
    # GoBGP >= 5x the other implementations at every point
    for n in PEER_COUNTS:
        others = max(results[p][idx[n]] for p in ("frr", "bird", "tensor"))
        assert results["gobgp"][idx[n]] >= 4.0 * others, (n, results)
        assert results["gobgp"][idx[n]] >= 5.0 * results["frr"][idx[n]]
    # BIRD beats TENSOR at small scale; TENSOR wins past ~600 peers
    assert results["bird"][idx[50]] < results["tensor"][idx[50]]
    assert results["tensor"][idx[700]] < results["bird"][idx[700]]
    # FRR fastest throughout
    for n in PEER_COUNTS:
        assert results["frr"][idx[n]] == min(results[p][idx[n]] for p in PROFILES)
