"""Figure 6(b): time to generate and send N routing updates to one peer.

Paper: "the pattern is similar to that of receiving ... the good news is
that TENSOR achieves approximately the same performance as the other
three implementations" — outgoing replication is a pipelined write-only
path, so the delayed-acknowledgment penalty does not apply.
"""

from conftest import PROFILES, PROFILE_LABELS, DaemonLab, run_once
from repro.metrics import format_table
from repro.sim.calibration import BGP_SESSION_SETUP_COST

UPDATE_COUNTS = (100, 1_000, 5_000, 10_000, 100_000, 500_000)


def run_experiment():
    results = {}
    for profile in PROFILES:
        times = []
        for count in UPDATE_COUNTS:
            lab = DaemonLab(profile)
            times.append(BGP_SESSION_SETUP_COST + lab.send_time(count))
        results[profile] = times
    return results


def test_fig6b_send_updates(benchmark):
    results = run_once(benchmark, run_experiment)
    print()
    rows = [
        [PROFILE_LABELS[p]] + [f"{t:.3f}" for t in results[p]]
        for p in PROFILES
    ]
    print(format_table(
        ["implementation"] + [f"{c:,}" for c in UPDATE_COUNTS],
        rows,
        title="Fig 6(b): generate+send time (s) vs number of updates",
    ))
    idx = {c: i for i, c in enumerate(UPDATE_COUNTS)}
    # low flat region below 5K
    for profile in PROFILES:
        assert results[profile][idx[1_000]] < 0.2
    # TENSOR ~ the others: within 35% of FRR at 500K (paper: "approximately
    # the same performance"; sending is cheaper than receiving)
    tensor_at_max = results["tensor"][idx[500_000]]
    frr_at_max = results["frr"][idx[500_000]]
    assert tensor_at_max / frr_at_max < 1.35
    # sending is cheaper than receiving for every implementation
    # (send cost per update < receive cost per update by calibration)
    from repro.sim.calibration import RECEIVE_COST_PER_UPDATE, SEND_COST_PER_UPDATE
    for profile in PROFILES:
        assert SEND_COST_PER_UPDATE[profile] < RECEIVE_COST_PER_UPDATE[profile] * 1.2
    # near-linear growth at scale
    for profile in PROFILES:
        ratio = results[profile][idx[500_000]] / results[profile][idx[100_000]]
        assert 3.0 < ratio < 7.0
