"""Figure 7(a): CDF of per-link average throughput to peering ASes.

Paper: "The average and median numbers of the average throughput are
over 37 Gbps and 64 Mbps, respectively.  Over 30% of the links to
peering ASes carry over 1 Gb of data per second."  The synthetic model
(documented in repro.workloads.traffic) matches those three statistics.
"""

from conftest import run_once
from repro.metrics import format_table
from repro.sim import DeterministicRandom
from repro.sim.calibration import FLEET_PEERING_ASES
from repro.workloads.traffic import TrafficModel, percentile


def run_experiment(links=FLEET_PEERING_ASES, draws=10):
    model = TrafficModel(DeterministicRandom(77).stream("fig7a"))
    samples = model.sample_links(links * draws)  # widen for stable tails
    deciles = [(f, percentile(samples, f)) for f in
               (0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99)]
    mean_bps = sum(samples) / len(samples)
    over_1g = sum(1 for s in samples if s > 1e9) / len(samples)
    return {
        "deciles": deciles,
        "mean": mean_bps,
        "median": percentile(samples, 0.5),
        "over_1g": over_1g,
        "theoretical_mean": model.theoretical_mean(),
    }


def test_fig7a_traffic_cdf(benchmark):
    stats = run_once(benchmark, run_experiment)
    print()
    print(format_table(
        ["CDF fraction", "throughput"],
        [[f"{f:.2f}", _human(v)] for f, v in stats["deciles"]],
        title="Fig 7(a): per-link average throughput CDF",
    ))
    print(f"mean = {_human(stats['mean'])} (theoretical {_human(stats['theoretical_mean'])}),"
          f" median = {_human(stats['median'])},"
          f" P[>1 Gbps] = {stats['over_1g']:.2f}")
    # the three distributional facts of §4.4
    assert stats["theoretical_mean"] > 30e9           # "over 37 Gbps" scale
    assert 30e6 < stats["median"] < 130e6             # "~64 Mbps"
    assert stats["over_1g"] > 0.28                    # "over 30%"
    # CDF is monotone with a heavy tail
    values = [v for _f, v in stats["deciles"]]
    assert values == sorted(values)
    assert values[-1] / values[0] > 1000


def _human(bps):
    for unit, scale in (("Tbps", 1e12), ("Gbps", 1e9), ("Mbps", 1e6), ("Kbps", 1e3)):
        if bps >= scale:
            return f"{bps / scale:.1f} {unit}"
    return f"{bps:.0f} bps"
