"""Table 1: failure recovery comparison, TENSOR vs non-NSR baselines.

For each failure class the benchmark injects the real failure into a
full TENSOR deployment and measures the four recovery phases on the
virtual clock, plus the remote-visible link downtime (which must be
zero).  The bracketed baseline numbers reproduce the manual recovery
process of FRRouting/GoBGP/BIRD (Table 1's second numbers).

Paper rows (TENSOR, seconds):
    application  0.01 / 0.10 / 1.09 / 1.06 / 2.26
    container    0.31 / 0.10 / 1.19 / 1.01 / 2.61
    host machine 3.30 / 0.20 / 4.50 / 1.05 / 9.05
    host network 3.30 / 0.21 / 4.45 / 1.21 / 9.17
"""

import random

from conftest import run_once
from repro.baselines import baseline_recovery_row
from repro.core.system import PeerNeighborSpec, TensorSystem
from repro.failures import FailureInjector
from repro.metrics import format_table, mean
from repro.workloads.topology import DowntimeObserver, build_remote_peer
from repro.workloads.updates import RouteGenerator

ROUTES = 300
PAIRS_FOR_MACHINE_SCENARIOS = 10

PAPER_ROWS = {
    "application": (0.01, 0.10, 1.09, 1.06, 2.26),
    "container": (0.31, 0.10, 1.19, 1.01, 2.61),
    "host_machine": (3.30, 0.20, 4.50, 1.05, 9.05),
    "host_network": (3.30, 0.21, 4.45, 1.21, 9.17),
}


def build_system(seed, pair_count):
    system = TensorSystem(seed=seed)
    m1 = system.add_machine("gw-1", "10.1.0.1")
    m2 = system.add_machine("gw-2", "10.2.0.1")
    observers = []
    for i in range(pair_count):
        pair = system.create_pair(
            f"pair{i}", m1, m2,
            service_addr=f"10.10.{i}.1",
            local_as=65001, router_id=f"10.10.{i}.1",
            neighbors=[PeerNeighborSpec(f"192.0.2.{i + 1}", 64512 + i,
                                        vrf_name="v0", mode="passive")],
            # ~150 config entries per container: the cold-boot time this
            # implies (~2.8 s) reproduces the paper's mass-migration phase
            config_entries=150,
        )
        remote = build_remote_peer(system, f"remote{i}", f"192.0.2.{i + 1}",
                                   64512 + i, link_machines=[m1, m2])
        session = remote.peer_with(f"10.10.{i}.1", 65001, vrf_name="v0",
                                   mode="active")
        pair.start()
        remote.start()
        observers.append((pair, remote, session))
    system.engine.advance(10.0)
    gen = RouteGenerator(random.Random(seed), 64512, next_hop="192.0.2.1")
    for _pair, remote, session in observers:
        remote.speaker.originate_many("v0", gen.routes(ROUTES))
        remote.speaker.readvertise(session)
    system.engine.advance(5.0)
    watchers = []
    for _pair, remote, session in observers:
        watcher = DowntimeObserver(system.engine, session,
                                   remote.speaker.vrfs["v0"],
                                   expect_routes=ROUTES)
        watcher.start()
        watchers.append(watcher)
    return system, observers, watchers


def run_scenario(kind):
    pair_count = PAIRS_FOR_MACHINE_SCENARIOS if kind.startswith("host") else 1
    system, observers, watchers = build_system(hash(kind) % 1000, pair_count)
    injector = FailureInjector(system)
    pair0 = observers[0][0]
    if kind == "application":
        injector.application_failure(pair0)
    elif kind == "container":
        injector.container_failure(pair0)
    elif kind == "host_machine":
        injector.host_machine_failure(system.machines["gw-1"])
    elif kind == "host_network":
        injector.host_network_failure(system.machines["gw-1"])
    system.engine.advance(45.0)
    injector.stamp_records()
    records = system.controller.completed_records()
    assert records, f"{kind}: no completed recovery"
    phases = {
        "detection": mean(r.detection_time for r in records),
        "initiate": mean(r.initiation_time for r in records),
        "migration": mean(r.migration_time for r in records),
        "recovery": mean(r.recovery_time for r in records),
        "total": mean(r.total_time for r in records),
    }
    downtime = 0.0
    sessions_ok = True
    for watcher in watchers:
        watcher.stop()
        downtime += watcher.total_downtime
    for _pair, _remote, session in observers:
        sessions_ok = sessions_ok and session.established
    return phases, downtime, sessions_ok, len(records)


def run_experiment():
    return {kind: run_scenario(kind) for kind in PAPER_ROWS}


def test_table1_failure_recovery(benchmark):
    results = run_once(benchmark, run_experiment)
    print()
    rows = []
    for kind, (phases, downtime, _ok, n) in results.items():
        base = baseline_recovery_row(kind if kind != "container" else "container")
        def bracket(column):
            value = base[column]
            return f"(~{value:.0f})" if value is not None else "(N/A)"
        rows.append([
            kind,
            f"{phases['detection']:.2f} {bracket('detection')}",
            f"{phases['initiate']:.2f} {bracket('initiate')}",
            f"{phases['migration']:.2f} {bracket('migration')}",
            f"{phases['recovery']:.2f} {bracket('recovery')}",
            f"{phases['total']:.2f} {bracket('total')}",
            f"{downtime:.2f}",
        ])
    print(format_table(
        ["failure", "detect", "initiate", "migrate/reboot", "TCP+BGP recover",
         "total", "link downtime"],
        rows,
        title="Table 1: TENSOR recovery phases (s), baselines bracketed",
    ))
    for kind, (phases, downtime, sessions_ok, _n) in results.items():
        paper = PAPER_ROWS[kind]
        assert downtime == 0.0, (kind, downtime)
        assert sessions_ok, kind
        # totals within 25% of the paper's row
        assert abs(phases["total"] - paper[4]) / paper[4] < 0.25, (kind, phases)
        # detection: sub-100ms for application, ~3.3 s for machine-level
        if kind == "application":
            assert phases["detection"] < 0.1
        if kind.startswith("host"):
            assert 3.0 < phases["detection"] < 4.0
    # TENSOR total is 2x-25x faster than the baseline link downtime
    for kind, (phases, _d, _ok, _n) in results.items():
        base_total = baseline_recovery_row(kind)["total"]
        if base_total is not None:
            speedup = base_total / phases["total"]
            assert speedup > 2.0, (kind, speedup)
