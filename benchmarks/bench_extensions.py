"""Extension benchmarks: eBPF vs Netfilter, and remote replication.

Both are §5 discussion items the paper leaves open:

- "an alternative is to rely on eBPF which has demonstrated better
  performance over Netfilter ... We leave further implementation and
  comparison as future work" — here, implemented and compared;
- "Remote replication for disaster recovery ... the delay for backing up
  data at another city ... is most likely to exceed the milliseconds-
  level threshold.  An alternative is to back up data in an asynchronous
  manner."
"""

import random

from conftest import run_once
from repro.core.system import PeerNeighborSpec, TensorSystem
from repro.metrics import format_table
from repro.workloads.topology import build_remote_peer
from repro.workloads.updates import RouteGenerator

ROUTES = 20_000


def _transfer_fully_acked(**kwargs):
    """Seconds for a 20K-update table transfer to be fully acknowledged."""
    system = TensorSystem(seed=900, **kwargs)
    m1 = system.add_machine("gw-1", "10.1.0.1")
    m2 = system.add_machine("gw-2", "10.2.0.1")
    pair = system.create_pair(
        "pair0", m1, m2, service_addr="10.10.0.1", local_as=65001,
        router_id="10.10.0.1",
        neighbors=[PeerNeighborSpec("192.0.2.1", 64512, vrf_name="v0",
                                    mode="passive")],
    )
    remote = build_remote_peer(system, "remote0", "192.0.2.1", 64512,
                               link_machines=[m1, m2])
    session = remote.peer_with("10.10.0.1", 65001, vrf_name="v0", mode="active")
    pair.start()
    remote.start()
    system.engine.advance(10.0)
    gen = RouteGenerator(random.Random(4), 64512, next_hop="192.0.2.1")
    remote.speaker.originate_many("v0", gen.routes(ROUTES))
    start = system.engine.now
    remote.speaker.readvertise(session)
    while (
        remote.speaker.total_updates_sent < ROUTES
        or session.conn.bytes_in_flight > 0
        or session.conn.bytes_unsent > 0
    ):
        system.engine.advance(0.05)
        if system.engine.now - start > 300:
            raise TimeoutError("transfer never fully acked")
    acked = system.engine.now - start
    applied = (pair.speaker.last_apply_time or start) - start
    return acked, applied


def run_experiment():
    return {
        "netfilter": _transfer_fully_acked(hook_technology="netfilter"),
        "ebpf": _transfer_fully_acked(hook_technology="ebpf"),
        "remote-sync-5ms": _transfer_fully_acked(
            remote_db={"latency": 0.005, "mode": "sync"}),
        "remote-async-5ms": _transfer_fully_acked(
            remote_db={"latency": 0.005, "mode": "async"}),
    }


def test_extensions(benchmark):
    results = run_once(benchmark, run_experiment)
    print()
    print(format_table(
        ["configuration", "transfer fully ACKed (s)", "table applied (s)"],
        [[name, f"{acked:.3f}", f"{applied:.3f}"]
         for name, (acked, applied) in results.items()],
        title=f"Extensions: {ROUTES:,}-update transfer under interception/"
              "replication variants",
    ))
    nf_acked, _ = results["netfilter"]
    ebpf_acked, _ = results["ebpf"]
    sync_acked, _ = results["remote-sync-5ms"]
    async_acked, _ = results["remote-async-5ms"]
    assert ebpf_acked <= nf_acked  # eBPF's cheaper interception path
    assert sync_acked > nf_acked * 1.5  # WAN sync gates ACK release hard
    assert async_acked < nf_acked * 1.2  # async hides the WAN entirely
