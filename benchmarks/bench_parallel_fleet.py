#!/usr/bin/env python
"""Parallel fleet benchmark (``make bench-parallel``).

Runs the 8-site / 112-container fleet workload under the conservative
parallel runtime at workers = 1, 2 and 4, verifies that every
configuration produces bit-identical shard results, and writes
``BENCH_parallel.json`` at the repository root for the regression gate.

Speedup is reported two ways:

- ``measured``: observed wall-clock ratio.  Only meaningful on a host
  with at least 4 usable cores — on fewer cores the OS serializes the
  worker processes and multiprocess runs can only be *slower*.
- ``projected``: the critical-path wall from the *measured* per-window,
  per-shard compute times (per window, the slowest worker's summed shard
  busy time; windows add up).  This is what the same partition achieves
  on sufficient cores, minus IPC; it is computed from real measurements,
  not a model.

``check_bench_regression.py`` gates on the measured ratio when
``os.cpu_count() >= 4`` and on the projection otherwise;
``cpu_count`` is recorded in the JSON so a baseline moved between hosts
stays interpretable.

The adaptive-lookahead window protocol (DESIGN.md §11) is gated here
too: ``window_stats.quiet_window_reduction`` is the factor by which the
adaptive runtime shrinks the barrier count over the virtual span it
covered with wide windows, versus the fixed-lookahead protocol that
would have diced that same span into ``span / L`` barriers.  The bench
fails if the reduction drops below 10x.  ``time_split`` breaks each
run's wall into compute / barrier-wait / dispatch / serialization
(with ``encode_s`` / ``decode_s`` / ``ring_copy_s`` sub-splits from the
shared-memory transport), and ``transport`` counts cross-shard frames,
batches and encoded bytes plus ring wrap/overflow counters.

The barrier transport is exercised both ways at workers=4: the default
shared-memory ring transport with the compact frame codec, and the
pickle-over-pipe reference.  Both must stay bit-identical to the
sequential run, and ``bytes_reduction_4w`` (pipe bytes / shm bytes)
must stay >= 3x.  A fourth workload row runs the 1024-container fleet
(16 sites x 32 pairs) sequentially for the scale ratchet.

Usage:
    PYTHONPATH=src python benchmarks/bench_parallel_fleet.py [--quick]
"""

import argparse
import json
import math
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.sim.parallel.runtime import ParallelRunner  # noqa: E402
from repro.workloads.fleet import (  # noqa: E402
    FLEET_1K_DURATION,
    fleet_1k_specs,
    fleet_site_specs,
)

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"

SITES = 8
PAIRS = 7          # 8 sites x 7 pairs x 2 containers = 112 containers
ROUTES = 40
DURATION = 25.0
WORKER_COUNTS = (1, 2, 4)

#: floor on window_stats.quiet_window_reduction enforced below
QUIET_REDUCTION_FLOOR = 10.0
#: floor on pipe-bytes / shm-bytes at workers=4 (the compact-codec win)
BYTES_REDUCTION_FLOOR = 3.0


def _specs(quick=False):
    if quick:
        return fleet_site_specs(4, pairs=2, routes=20, border_routes=10,
                                churn_ticks=2)
    return fleet_site_specs(SITES, pairs=PAIRS, routes=ROUTES,
                            border_routes=20, churn_ticks=3)


def _window_stats(result):
    """Adaptive-window effectiveness, from the reference run.

    ``fixed_equiv`` is the barrier count a fixed-lookahead runtime needs
    for the whole duration; ``quiet_fixed_equiv`` is its share for the
    virtual span the adaptive runtime covered with wide windows, and
    ``quiet_window_reduction`` divides that by the wide-window count —
    the factor the adaptive protocol saves during quiet phases.
    """
    wide_count, wide_span = result.wide_windows()
    lookahead = result.lookahead or DURATION
    quiet_fixed_equiv = math.ceil(wide_span / lookahead)
    reduction = quiet_fixed_equiv / wide_count if wide_count else 0.0
    return {
        "windows": result.windows,
        "fixed_equiv": math.ceil(DURATION / lookahead),
        "wide_windows": wide_count,
        "wide_span_s": round(wide_span, 3),
        "quiet_fixed_equiv": quiet_fixed_equiv,
        "quiet_window_reduction": round(reduction, 1),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small 4-site variant for iterating on the bench")
    args = parser.parse_args(argv)

    configs = [(w, "shm") for w in WORKER_COUNTS] + [(4, "pipe")]
    runs = {}
    reference = None
    for workers, transport in configs:
        result = ParallelRunner(
            _specs(args.quick), workers=workers, transport=transport,
            projection_workers=WORKER_COUNTS,
        ).run(DURATION)
        runs[(workers, transport)] = result
        if reference is None:
            reference = result
        containers = sum(
            r["containers"] for r in result.shard_results.values()
        )
        timing = result.timing
        print(
            f"workers={workers} ({result.transport['kind']}):"
            f" wall={result.wall:6.2f}s"
            f"  windows={result.windows}  events={result.executed}"
            f"  containers={containers}"
        )
        print(
            f"  split: compute={timing['compute_s']:.2f}s"
            f"  barrier_wait={timing['barrier_wait_s']:.2f}s"
            f"  dispatch={timing['barrier_send_s']:.2f}s"
            f"  serialize={timing['serialize_s']:.2f}s"
            f" (enc={timing['encode_s']:.2f}s dec={timing['decode_s']:.2f}s"
            f" copy={timing['ring_copy_s']:.2f}s)"
            f"  | transport: {result.transport['frames']} frames"
            f" / {result.transport['batches']} batches"
            f" / {result.transport['bytes']} bytes"
        )

    determinism_ok = all(
        run.shard_results == reference.shard_results
        and run.window_edges == reference.window_edges
        for run in runs.values()
    )
    print(f"determinism: {'ok' if determinism_ok else 'FAILED'}"
          f" (identical shard results and window sequence across worker"
          f" counts and transports)")

    shm_bytes = runs[(4, "shm")].transport["bytes"]
    pipe_bytes = runs[(4, "pipe")].transport["bytes"]
    bytes_reduction = pipe_bytes / shm_bytes if shm_bytes else 0.0
    print(f"barrier bytes @4 workers: shm={shm_bytes}"
          f" pipe={pipe_bytes}  reduction={bytes_reduction:.2f}x")

    window_stats = _window_stats(reference)
    print(
        f"windows: {window_stats['windows']} adaptive"
        f" vs {window_stats['fixed_equiv']} fixed-equivalent"
        f"  (quiet-phase reduction"
        f" {window_stats['quiet_window_reduction']:.1f}x over"
        f" {window_stats['wide_span_s']:.1f}s of wide windows)"
    )

    # critical-path projection from the sequential run's measured busy
    # times: same partition, perfect cores, no IPC
    projected = {
        w: reference.projected_wall(w) for w in WORKER_COUNTS
    }
    measured_speedup = runs[(1, "shm")].wall / runs[(4, "shm")].wall
    projected_speedup = projected[1] / projected[4]
    cpu_count = os.cpu_count() or 1
    print(f"measured  speedup @4 workers: {measured_speedup:.2f}x"
          f" (host has {cpu_count} cpu core(s))")
    print(f"projected speedup @4 workers: {projected_speedup:.2f}x"
          f" (critical path of measured per-shard compute)")

    # the scale row: 1024 containers, sequential, for the ops ratchet
    fleet1k = None
    if not args.quick:
        result = ParallelRunner(
            fleet_1k_specs(), workers=1, projection_workers=WORKER_COUNTS,
        ).run(FLEET_1K_DURATION)
        containers = sum(
            r["containers"] for r in result.shard_results.values()
        )
        fleet1k = {
            "sites": 16,
            "containers": containers,
            "duration": FLEET_1K_DURATION,
            "windows": result.windows,
            "events": result.executed,
            "wall_s": round(result.wall, 3),
            "projected_speedup_4w": round(
                result.projected_wall(1) / result.projected_wall(4), 2
            ),
        }
        print(
            f"fleet-1k: {containers} containers, {result.executed} events,"
            f" wall={result.wall:.2f}s,"
            f" projected @4 workers {fleet1k['projected_speedup_4w']:.2f}x"
        )

    def _row_key(workers, transport):
        suffix = "" if transport == "shm" else f"_{transport}"
        return f"workers_{workers}{suffix}"

    total_events = reference.executed
    results = {
        "fleet_events_seq": {
            "ops_per_sec": round(total_events / runs[(1, "shm")].wall, 1),
        },
    }
    if fleet1k is not None:
        results["fleet1k_events_seq"] = {
            "ops_per_sec": round(fleet1k["events"] / fleet1k["wall_s"], 1),
        }
    payload = {
        "workload": {
            "sites": SITES if not args.quick else 4,
            "pairs_per_site": PAIRS if not args.quick else 2,
            "containers": sum(
                r["containers"] for r in reference.shard_results.values()
            ),
            "duration": DURATION,
            "windows": reference.windows,
            "lookahead": reference.lookahead,
            "events": total_events,
        },
        "cpu_count": cpu_count,
        "results": results,
        "wall": {_row_key(w, t): round(runs[(w, t)].wall, 3)
                 for w, t in configs},
        "busy": {f"workers_{w}": round(sum(runs[(w, "shm")].busy.values()), 3)
                 for w in WORKER_COUNTS},
        "projected_wall": {f"workers_{w}": round(projected[w], 3)
                           for w in WORKER_COUNTS},
        "window_stats": window_stats,
        "time_split": {
            _row_key(w, t): {
                key: round(value, 4)
                for key, value in runs[(w, t)].timing.items()
            }
            for w, t in configs
        },
        "transport": {
            _row_key(w, t): dict(runs[(w, t)].transport) for w, t in configs
        },
        "measured_speedup_4w": round(measured_speedup, 2),
        "projected_speedup_4w": round(projected_speedup, 2),
        "bytes_reduction_4w": round(bytes_reduction, 2),
        "determinism_ok": determinism_ok,
    }
    if fleet1k is not None:
        payload["fleet1k"] = fleet1k
    if not args.quick:
        OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {OUT_PATH.name}")

    if not determinism_ok:
        return 1
    if window_stats["quiet_window_reduction"] < QUIET_REDUCTION_FLOOR:
        print(
            f"quiet-window reduction FAILED:"
            f" {window_stats['quiet_window_reduction']:.1f}x"
            f" < {QUIET_REDUCTION_FLOOR:.0f}x"
        )
        return 1
    if bytes_reduction < BYTES_REDUCTION_FLOOR:
        print(f"bytes reduction FAILED: {bytes_reduction:.2f}x"
              f" < {BYTES_REDUCTION_FLOOR:.0f}x")
        return 1
    floor = measured_speedup if cpu_count >= 4 else projected_speedup
    if floor < 2.0:
        print(f"speedup floor FAILED: {floor:.2f}x < 2.0x")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
