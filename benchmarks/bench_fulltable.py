#!/usr/bin/env python
"""Internet-scale full-table benchmark (``make bench-fulltable``).

Builds the synthetic DFZ-style table (workloads/fulltable.py) at two
sizes and holds DESIGN.md §14's scaling claims to numbers:

- ``table_load``: trie-backed Loc-RIB build throughput at the large size;
- ``reselect_small`` / ``reselect_large``: incremental churn throughput
  at both sizes — **sub-linear** means the per-operation cost barely
  moves when the table grows 10x (a linear structure would slow ~10x);
- ``compact_incremental``: after a full snapshot, churn a small working
  set and re-compact — only the dirty chunks may rewrite;
- aggregation effectiveness: collapsed snapshot entries must shrink the
  aggregatable workload's replicated records by >= 20%;
- ``pair_replay``: a table slice end-to-end through a real NSR pair
  (remote AS -> gateway -> replication pipeline -> KV snapshot) on the
  virtual clock.

Writes ``BENCH_fulltable.json`` at the repo root for the regression
gate (``check_bench_regression.py --suite fulltable``).  ``--smoke``
runs reduced sizes and asserts the invariants only, for ``make verify``.

Usage:
    PYTHONPATH=src python benchmarks/bench_fulltable.py [--smoke]
"""

import argparse
import gc
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.replication import ReplicationPipeline  # noqa: E402
from repro.workloads.fulltable import (  # noqa: E402
    FullTableWorkload,
    replay_through_pair,
)

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_fulltable.json"

SEED = 11
CHURN_OPS = 3_000
CHURN_REPEATS = 3

#: Working set for the *incremental* compaction stage: small, so the
#: rewritten-chunk count is bounded by the touched prefixes, not the
#: table (the sub-linearity claim).  Each 3-op churn group touches at
#: most two distinct prefixes.
INCR_OPS = 96
INCR_TOUCH_BOUND = 2 * (INCR_OPS // 3 + 1)

#: Sub-linear floor: growing the table 10x may cost at most 2.5x in
#: per-op churn throughput (a linear scan would cost ~10x).
RESELECT_RATIO_FLOOR = 0.4

#: §14 acceptance: aggregation must shrink replicated snapshot entries
#: by at least this much on the aggregatable workload.
AGGREGATION_FLOOR = 0.20

#: An incremental compaction after touching a small working set may
#: rewrite at most this fraction of the snapshot's chunks (secondary
#: guard; the primary bound is INCR_TOUCH_BOUND chunks outright).
INCREMENTAL_CHUNK_CEILING = 0.25


class MemoryKvClient:
    """Synchronous in-memory stand-in for KvClient.

    The full-size compaction stages measure encode/collapse cost, not
    simulated network transport; a 1M-entry snapshot through the
    simulated TCP KV protocol would measure the transport instead.  The
    ``pair_replay`` stage keeps the real KV path honest.
    """

    def __init__(self):
        self.store = {}

    def mset(self, items, on_done=None, on_error=None):
        self.store.update(items)
        if on_done is not None:
            on_done()

    def delete(self, keys, on_done=None, on_error=None):
        removed = 0
        for key in keys:
            removed += self.store.pop(key, None) is not None
        if on_done is not None:
            on_done(removed)

    def get(self, key, on_done=None, on_error=None):
        if on_done is not None:
            on_done(self.store.get(key))


def _timed(fn):
    # Collect up front and keep the collector out of the timed region:
    # with 1M live route objects a generational pass landing inside a
    # ~0.1 s churn window inflates the measurement several-fold.
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
    finally:
        if was_enabled:
            gc.enable()
    return result, elapsed


def measure_table(size):
    """Load + churn + snapshot metrics for one table size."""
    workload = FullTableWorkload(seed=SEED, size=size)
    rib, load_s = _timed(workload.build)
    routes = len(rib)

    # Best-of-N: the churn window is short (~0.1 s at full size), so a
    # scheduler hiccup in one repeat must not fail the sub-linearity
    # floor.  Throughput noise is one-sided — the fastest repeat is the
    # least-perturbed one.
    churn_s = None
    for repeat in range(CHURN_REPEATS):
        ops, elapsed = _timed(
            lambda: workload.churn(rib, CHURN_OPS, seed=SEED + 100 + repeat))
        churn_s = elapsed if churn_s is None else min(churn_s, elapsed)

    store = MemoryKvClient()
    pipeline = ReplicationPipeline("bench", store, store,
                                   aggregate_snapshots=True)
    _, full_compact_s = _timed(lambda: pipeline.compact("v", rib))
    full_chunks = pipeline.snapshot_chunks_written
    raw = pipeline.snapshot_entries_raw
    written = pipeline.snapshot_entries_written

    # Touch a small working set, then re-compact: incremental cost.
    workload.churn(rib, INCR_OPS, seed=SEED + 1)
    _, incr_compact_s = _timed(lambda: pipeline.compact("v", rib))
    incr_chunks = pipeline.snapshot_chunks_written - full_chunks

    return {
        "size": size,
        "routes": routes,
        "load_s": load_s,
        "load_ops_per_sec": routes / load_s,
        "churn_ops": ops,
        "churn_ops_per_sec": ops / churn_s,
        "full_compact_s": full_compact_s,
        "full_chunks": full_chunks,
        "incremental_compact_s": incr_compact_s,
        "incremental_chunks": incr_chunks,
        "snapshot_entries_raw": raw,
        "snapshot_entries_written": written,
        "aggregation_reduction": 1.0 - written / raw if raw else 0.0,
    }


def check_invariants(small, large, pair_stats):
    """The §14 scaling assertions; raises AssertionError on violation."""
    ratio = large["churn_ops_per_sec"] / small["churn_ops_per_sec"]
    assert ratio >= RESELECT_RATIO_FLOOR, (
        f"incremental reselect is not sub-linear: {ratio:.2f}x throughput "
        f"at {large['size']:,} vs {small['size']:,} prefixes "
        f"(floor {RESELECT_RATIO_FLOOR})")
    assert large["aggregation_reduction"] >= AGGREGATION_FLOOR, (
        f"aggregation reduced snapshot entries by only "
        f"{large['aggregation_reduction']:.0%} (floor {AGGREGATION_FLOOR:.0%})")
    for stats in (small, large):
        assert stats["incremental_chunks"] <= INCR_TOUCH_BOUND, (
            f"incremental compaction rewrote {stats['incremental_chunks']} "
            f"chunks for a working set of <= {INCR_TOUCH_BOUND} prefixes "
            f"at {stats['size']:,}")
    chunk_fraction = large["incremental_chunks"] / large["full_chunks"]
    assert chunk_fraction <= INCREMENTAL_CHUNK_CEILING, (
        f"incremental compaction rewrote {chunk_fraction:.0%} of chunks "
        f"(ceiling {INCREMENTAL_CHUNK_CEILING:.0%})")
    # incremental compaction must be much cheaper than the full snapshot
    assert large["incremental_compact_s"] < large["full_compact_s"] / 2, (
        f"incremental compaction ({large['incremental_compact_s']:.2f}s) "
        f"is not clearly cheaper than full ({large['full_compact_s']:.2f}s)")
    assert pair_stats["session_established"], "pair session did not survive"
    assert pair_stats["snapshot_chunks_written"] > 0, "pair never snapshotted"
    assert pair_stats["snapshot_entries_written"] <= \
        pair_stats["snapshot_entries_raw"]
    return ratio, chunk_fraction


def _print_table(label, stats):
    print(f"{label}: {stats['routes']:,} routes  "
          f"load {stats['load_ops_per_sec']:,.0f} ops/s  "
          f"churn {stats['churn_ops_per_sec']:,.0f} ops/s  "
          f"full-compact {stats['full_compact_s']:.2f}s "
          f"({stats['full_chunks']} chunks)  "
          f"incr-compact {stats['incremental_compact_s']:.3f}s "
          f"({stats['incremental_chunks']} chunks)  "
          f"agg -{stats['aggregation_reduction']:.0%}")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced sizes, invariants only, no JSON")
    args = parser.parse_args()

    if args.smoke:
        small_size, large_size, pair_size = 20_000, 200_000, 400
    else:
        small_size, large_size, pair_size = 100_000, 1_000_000, 2_000

    small = measure_table(small_size)
    _print_table("small", small)
    large = measure_table(large_size)
    _print_table("large", large)

    pair_stats, pair_wall = _timed(
        lambda: replay_through_pair(size=pair_size,
                                    churn_ops=max(100, pair_size // 8),
                                    seed=SEED))
    pair_stats.pop("digest")
    print(f"pair-replay: {pair_stats['routes_loaded']} routes through the "
          f"NSR pair, {pair_stats['snapshot_chunks_written']} snapshot "
          f"chunk(s), wall {pair_wall:.1f}s")

    ratio, chunk_fraction = check_invariants(small, large, pair_stats)
    print(f"sub-linear reselect: {ratio:.2f}x throughput at "
          f"{large_size // small_size}x table size  ok")
    print(f"aggregation: -{large['aggregation_reduction']:.0%} snapshot "
          f"entries  ok")
    print(f"incremental compaction: {chunk_fraction:.1%} of chunks "
          f"rewritten  ok")

    if args.smoke:
        print("fulltable smoke: ok")
        return 0

    payload = {
        "workload": {
            "seed": SEED,
            "small_size": small_size,
            "large_size": large_size,
            "churn_ops": CHURN_OPS,
            "pair_size": pair_size,
        },
        "small": {k: round(v, 4) if isinstance(v, float) else v
                  for k, v in small.items()},
        "large": {k: round(v, 4) if isinstance(v, float) else v
                  for k, v in large.items()},
        "pair_replay": {k: round(v, 4) if isinstance(v, float) else v
                        for k, v in pair_stats.items()},
        "reselect_ratio": round(ratio, 4),
        "aggregation_reduction": round(large["aggregation_reduction"], 4),
        "results": {
            "table_load": {
                "ops_per_sec": round(large["load_ops_per_sec"], 1)},
            "reselect_small": {
                "ops_per_sec": round(small["churn_ops_per_sec"], 1)},
            "reselect_large": {
                "ops_per_sec": round(large["churn_ops_per_sec"], 1)},
            # compactions per second: slower incremental compaction of
            # the large table gates as a regression
            "compact_incremental": {
                "ops_per_sec": round(
                    1.0 / large["incremental_compact_s"], 4)},
        },
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUT_PATH.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
