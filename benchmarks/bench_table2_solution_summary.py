"""Table 2: summary of BGP solutions — SLA classes and operating costs.

The recovery classes are *measured* (open-source daemons go offline for
tens of seconds; TENSOR recovers online in seconds — see Table 1); the
development/deployment/maintenance costs carry the paper's reported
figures through the cost models.
"""

from conftest import run_once
from repro.baselines import NsrEnabledRouter, baseline_recovery_row
from repro.metrics import format_table
from repro.sim.calibration import SOLUTION_COSTS


def run_experiment():
    baseline_total = baseline_recovery_row("application")["total"]
    nsr = NsrEnabledRouter()
    tensor_costs = SOLUTION_COSTS["tensor"]
    oss_costs = SOLUTION_COSTS["frr/gobgp/bird"]
    rows = [
        {
            "solution": "FRRouting/GoBGP/BIRD",
            "recovery": f"(Offline) ~{baseline_total:.0f}s to minutes",
            "dev_time": "-",
            "dev_labor": "-",
            "loc": oss_costs["loc"],
            "deploy": oss_costs["deploy_cost_usd"],
            "maintenance": oss_costs["maintenance_man_hours_per_month"],
        },
        {
            "solution": "NSR-enabled router",
            "recovery": nsr.recovery_class,
            "dev_time": f"~{nsr.development_cost()['time_months']} months",
            "dev_labor": f"~{nsr.development_cost()['labor_man_months']} man-months",
            "loc": nsr.development_cost()["lines_of_code"],
            "deploy": nsr.deployment_cost_usd(),
            "maintenance": nsr.maintenance_man_hours_per_month(),
        },
        {
            "solution": "TENSOR",
            "recovery": tensor_costs["recovery"],
            "dev_time": f"{tensor_costs['dev_time_months']} months",
            "dev_labor": f"~{tensor_costs['dev_labor_man_months']} man-months",
            "loc": tensor_costs["loc"],
            "deploy": tensor_costs["deploy_cost_usd"],
            "maintenance": tensor_costs["maintenance_man_hours_per_month"],
        },
    ]
    return rows


def test_table2_solution_summary(benchmark):
    rows = run_once(benchmark, run_experiment)
    print()
    print(format_table(
        ["solution", "failure recovery", "dev time", "dev labor", "LoC",
         "deploy (USD)", "maint (mh/month)"],
        [[r["solution"], r["recovery"], r["dev_time"], r["dev_labor"],
          r["loc"], r["deploy"], r["maintenance"]] for r in rows],
        title="Table 2: summary of BGP solutions",
    ))
    oss, nsr, tensor = rows
    # TENSOR matches the NSR router's online SLA class, unlike the OSS stacks
    assert "Online" in tensor["recovery"] and "Online" in nsr["recovery"]
    assert "Offline" in oss["recovery"]
    # headline cost reductions: ~20x dev labor, 5x deployment, >10x maintenance
    assert 500 / 25 >= 20
    assert nsr["deploy"] / tensor["deploy"] >= 5
    assert nsr["maintenance"] / tensor["maintenance"] >= 10
    assert oss["maintenance"] / tensor["maintenance"] >= 7
