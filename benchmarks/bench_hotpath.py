"""Hot-path micro-benchmarks: codec, reselect, coalescer, dispatch.

Unlike the Fig. 5/6 reproductions these measure *wall-clock* throughput
of the four code paths the hot-path overhaul targets:

- ``codec``: ``PathAttributes.to_wire()`` with the memoized wire cache
  hit vs the raw encoder (the interning speedup must be >= 2x);
- ``reselect``: incremental ``LocRib.offer`` over a populated table;
- ``coalescer``: sets pushed through a ``WriteCoalescer`` + simulated
  KV store to drain;
- ``dispatch``: engine events fired, exercising the same-instant slots.

Results land in ``BENCH_hotpath.json`` at the repo root; the committed
baseline is what ``benchmarks/check_bench_regression.py`` (the
``make bench-gate`` target) compares against.
"""

import json
from pathlib import Path

from conftest import run_once
from repro.bgp import AsPath, LocRib, Origin, PathAttributes, Prefix
from repro.bgp.rib import Route
from repro.core.replication import WriteCoalescer
from repro.kvstore import KvClient, KvServer
from repro.sim import DeterministicRandom, Engine, Network

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"

#: test name -> measured ops/sec, collected across the file's tests and
#: written out (plus the interning-speedup assertion) by the final test.
RESULTS = {}


def _sample_attributes(first_as=65001):
    return PathAttributes(
        origin=Origin.IGP,
        as_path=AsPath.sequence(first_as, 64800, 64700),
        next_hop="10.0.0.1",
        med=50,
        local_pref=200,
    )


def _record(name, benchmark, ops_per_round):
    RESULTS[name] = ops_per_round / benchmark.stats.stats.mean


def test_codec_to_wire_uncached(benchmark):
    attrs = _sample_attributes()
    ops = 2000

    def run():
        encode = attrs._encode
        for _ in range(ops):
            encode()

    benchmark(run)
    _record("codec_to_wire_uncached", benchmark, ops)


def test_codec_to_wire_interned(benchmark):
    attrs = _sample_attributes()
    attrs.to_wire()  # prime the memo, as the fan-out path does
    ops = 2000

    def run():
        to_wire = attrs.to_wire
        for _ in range(ops):
            to_wire()

    benchmark(run)
    _record("codec_to_wire_interned", benchmark, ops)


def test_rib_incremental_reselect(benchmark):
    prefixes = [Prefix(i << 12, 20) for i in range(200)]
    peers = [f"peer{i}" for i in range(8)]
    rib = LocRib()
    offers = []
    for index, prefix in enumerate(prefixes):
        for peer_index, peer in enumerate(peers):
            route = Route(prefix, _sample_attributes(64500 + peer_index), peer)
            rib.offer(route)
            offers.append(route)
    ops = len(offers)

    def run():
        offer = rib.offer
        for route in offers:
            offer(route)

    benchmark(run)
    _record("rib_incremental_reselect", benchmark, ops)


def test_coalescer_flush(benchmark):
    ops = 2000

    def run():
        engine = Engine()
        network = Network(engine, DeterministicRandom(11))
        network.enable_fabric(latency=5e-5)
        client_host = network.add_host("c", "1.1.1.1")
        db_host = network.add_host("s", "1.1.1.2")
        KvServer(engine, db_host)
        coalescer = WriteCoalescer(KvClient(engine, client_host, "1.1.1.2"))
        for i in range(ops):
            coalescer.set(f"k{i:06d}", i)
        engine.run_until_idle()
        assert coalescer.records_written == ops

    benchmark.pedantic(run, rounds=3, iterations=1)
    _record("coalescer_flush", benchmark, ops)


def test_engine_dispatch(benchmark):
    instants = 200
    per_instant = 50
    ops = instants * per_instant

    def noop():
        pass

    def run():
        engine = Engine()
        for i in range(instants):
            delay = i * 0.001
            for _ in range(per_instant):
                engine.schedule(delay, noop)
        fired = engine.run_until_idle()
        assert fired == ops

    benchmark.pedantic(run, rounds=3, iterations=1)
    _record("engine_dispatch", benchmark, ops)


def test_write_results_and_interning_speedup(benchmark):
    expected = {
        "codec_to_wire_uncached",
        "codec_to_wire_interned",
        "rib_incremental_reselect",
        "coalescer_flush",
        "engine_dispatch",
    }

    def finalize():
        assert expected <= set(RESULTS), f"missing: {expected - set(RESULTS)}"
        speedup = (
            RESULTS["codec_to_wire_interned"] / RESULTS["codec_to_wire_uncached"]
        )
        payload = {
            "results": {
                name: {"ops_per_sec": round(RESULTS[name], 1)}
                for name in sorted(RESULTS)
            },
            "codec_interning_speedup": round(speedup, 2),
        }
        OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        return speedup

    speedup = run_once(benchmark, finalize)
    print(f"\ncodec interning speedup: {speedup:.1f}x (wrote {OUT_PATH.name})")
    assert speedup >= 2.0  # the acceptance floor for the wire-cache hit
