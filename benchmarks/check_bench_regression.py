#!/usr/bin/env python
"""Benchmark regression gate (``make bench-gate``).

Runs every registered benchmark suite to regenerate its ``BENCH_*.json``
at the repo root, then compares each ``results.*.ops_per_sec`` figure
against the committed baseline: any metric more than the suite's
threshold slower fails with a non-zero exit.  Faster-than-baseline
results are reported but never fail — commit the regenerated files to
ratchet the baselines.  Suites may also register a validator for
non-throughput invariants (the parallel suite checks determinism and
the speedup floor).

Usage:
    python benchmarks/check_bench_regression.py [--suite NAME]
        [--baseline PATH] [--skip-run]

``--skip-run`` compares already-generated JSON instead of re-running
the benchmarks (useful when iterating on the gate itself).
``--baseline`` overrides the committed baseline (single suite only).
"""

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# Fuzzer/chaos repro scripts are working-tree artifacts (gitignored),
# not benchmark inputs: the gate must never collect or gate on them,
# wherever a campaign's --out dropped them.
ARTIFACT_GLOBS = ("fuzz_repro_*.py", "chaos_repro_*.py", "panel_repro_*.py")


def ignored_artifacts():
    found = []
    for directory in (REPO_ROOT, REPO_ROOT / "benchmarks"):
        for pattern in ARTIFACT_GLOBS:
            found.extend(sorted(directory.glob(pattern)))
    return found


def _validate_parallel(fresh, baseline):
    """Parallel-suite invariants beyond raw throughput.

    Determinism must hold outright.  The >= 2x speedup floor applies to
    the *measured* wall ratio on hosts with at least 4 cores; on smaller
    hosts the OS serializes the workers, so the floor applies to the
    critical-path projection computed from measured per-shard compute
    (see bench_parallel_fleet.py).  ``cpu_count`` in the JSON records
    which regime produced a committed baseline — a multi-core host must
    not quietly gate its measured numbers against a baseline that was
    generated (and ratcheted) on a smaller machine, so that mismatch is
    an explicit failure with a re-baseline instruction, not a silent
    apples-to-oranges comparison.
    """
    failures = []
    if not fresh.get("determinism_ok", False):
        failures.append("determinism_ok is false: workers=1 vs workers=N "
                        "shard results diverged")
    cores = os.cpu_count() or 1
    baseline_cores = (baseline or {}).get("cpu_count")
    if cores >= 4 and baseline_cores is not None and baseline_cores < 4:
        failures.append(
            f"baseline BENCH_parallel.json was generated on a "
            f"{baseline_cores}-core host but this host has {cores} cores: "
            f"measured speedups are not comparable — re-run "
            f"`make bench-parallel` on this host and commit the "
            f"regenerated BENCH_parallel.json to re-baseline"
        )
    if cores >= 4:
        speedup = fresh.get("measured_speedup_4w", 0.0)
        label = "measured"
    else:
        speedup = fresh.get("projected_speedup_4w", 0.0)
        label = f"projected (host has {cores} core(s))"
    if speedup < 2.0:
        failures.append(
            f"parallel speedup floor: {speedup:.2f}x {label} < 2.0x"
        )
    else:
        print(f"  speedup floor: {speedup:.2f}x {label}  ok")
    quiet = fresh.get("window_stats", {}).get("quiet_window_reduction")
    if quiet is None:
        failures.append("window_stats.quiet_window_reduction missing from "
                        "BENCH_parallel.json (re-run make bench-parallel)")
    elif quiet < 10.0:
        failures.append(
            f"adaptive windows: quiet-phase reduction {quiet:.1f}x < 10x "
            f"vs the fixed-lookahead protocol"
        )
    else:
        print(f"  quiet-window reduction: {quiet:.1f}x  ok")
    reduction = fresh.get("bytes_reduction_4w")
    if reduction is None:
        failures.append("bytes_reduction_4w missing from "
                        "BENCH_parallel.json (re-run make bench-parallel)")
    elif reduction < 3.0:
        failures.append(
            f"barrier bytes: shm codec only {reduction:.2f}x smaller than "
            f"the pickle-over-pipe reference (< 3x floor)"
        )
    else:
        print(f"  barrier bytes reduction: {reduction:.2f}x  ok")
    # serialization and dispatch must stay a sliver of the workers=4
    # wall: the shm transport's whole point is that barrier traffic is
    # cheap.  Absolute floors keep the ratio meaningful on fast hosts
    # where both sides of it are noise-sized.
    wall = fresh.get("wall", {}).get("workers_4", 0.0)
    split = fresh.get("time_split", {}).get("workers_4", {})
    serialize = split.get("serialize_s")
    dispatch = split.get("barrier_send_s")
    if serialize is None or dispatch is None:
        failures.append("time_split.workers_4 serialize_s/barrier_send_s "
                        "missing from BENCH_parallel.json")
    else:
        serialize_cap = max(0.10 * wall, 0.05)
        dispatch_cap = max(0.05 * wall, 0.02)
        if serialize > serialize_cap:
            failures.append(
                f"serialize_s {serialize:.3f}s exceeds "
                f"{serialize_cap:.3f}s (10% of workers=4 wall)"
            )
        if dispatch > dispatch_cap:
            failures.append(
                f"barrier_send_s {dispatch:.3f}s exceeds "
                f"{dispatch_cap:.3f}s (5% of workers=4 wall)"
            )
        if serialize <= serialize_cap and dispatch <= dispatch_cap:
            print(f"  barrier overhead: serialize={serialize:.3f}s "
                  f"dispatch={dispatch:.3f}s within caps  ok")
    return failures


def _validate_failover(fresh, baseline):
    """Failover-suite invariants beyond the throughput ratchet.

    The drain budget is absolute: whatever the baseline says, a recovery
    that leaves ACKs held past the chaos liveness oracle's 6 s streak
    limit is broken, not merely slow.
    """
    failures = []
    budget = fresh.get("workload", {}).get("drain_budget_s", 6.0)
    drain = fresh.get("ack_drain_s")
    if drain is None:
        failures.append("ack_drain_s missing from BENCH_failover.json")
    elif drain >= budget:
        failures.append(
            f"ack drain {drain:.2f}s exceeds the {budget:.0f}s budget"
        )
    else:
        print(f"  ack drain: {drain:.2f}s < {budget:.0f}s budget  ok")
    return failures


def _validate_fulltable(fresh, baseline):
    """Full-table invariants beyond the throughput ratchet (§14).

    Absolute floors, independent of the baseline: incremental reselect
    must stay sub-linear in table size, snapshot aggregation must keep
    earning its >= 20% reduction on the aggregatable workload, and an
    incremental compaction may only rewrite chunks proportional to the
    touched working set.
    """
    failures = []
    ratio = fresh.get("reselect_ratio")
    if ratio is None:
        failures.append("reselect_ratio missing from BENCH_fulltable.json")
    elif ratio < 0.4:
        failures.append(
            f"sub-linear reselect floor: {ratio:.2f}x throughput at 10x "
            f"table size < 0.4x")
    else:
        print(f"  sub-linear reselect: {ratio:.2f}x at 10x size  ok")
    reduction = fresh.get("aggregation_reduction", 0.0)
    if reduction < 0.20:
        failures.append(
            f"snapshot aggregation reduced entries by only "
            f"{reduction:.0%} (< 20% floor)")
    else:
        print(f"  snapshot aggregation: -{reduction:.0%} entries  ok")
    large = fresh.get("large", {})
    full_chunks = large.get("full_chunks", 0)
    incr_chunks = large.get("incremental_chunks", 0)
    if not full_chunks:
        failures.append("large.full_chunks missing from "
                        "BENCH_fulltable.json")
    elif incr_chunks > full_chunks * 0.25:
        failures.append(
            f"incremental compaction rewrote {incr_chunks}/{full_chunks} "
            f"chunks (> 25%): not proportional to the working set")
    else:
        print(f"  incremental compaction: {incr_chunks}/{full_chunks} "
              f"chunks  ok")
    return failures


SUITES = {
    "failover": {
        "json": "BENCH_failover.json",
        "run": [sys.executable,
                str(REPO_ROOT / "benchmarks" / "bench_failover.py")],
        # virtual-clock measurement: deterministic, so only a real
        # behavior change (slower detection/drain) can move it
        "threshold": 0.10,
        "validate": _validate_failover,
    },
    "hotpath": {
        "json": "BENCH_hotpath.json",
        "run": [sys.executable, "-m", "pytest",
                str(REPO_ROOT / "benchmarks" / "bench_hotpath.py"),
                "-q", "--benchmark-disable-gc"]
               + [f"--ignore-glob={g}" for g in ARTIFACT_GLOBS],
        "threshold": 0.20,
        "validate": None,
    },
    "parallel": {
        "json": "BENCH_parallel.json",
        "run": [sys.executable,
                str(REPO_ROOT / "benchmarks" / "bench_parallel_fleet.py")],
        "threshold": 0.30,  # wall-clock of a 13s run is noisier than µ-benches
        "validate": _validate_parallel,
    },
    "fulltable": {
        "json": "BENCH_fulltable.json",
        "run": [sys.executable,
                str(REPO_ROOT / "benchmarks" / "bench_fulltable.py")],
        # multi-second wall-clock stages; host noise dominates more than
        # in the µ-benches
        "threshold": 0.30,
        "validate": _validate_fulltable,
    },
}


def run_suite(suite):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(REPO_ROOT / "src"), env.get("PYTHONPATH")) if p
    )
    completed = subprocess.run(suite["run"], cwd=REPO_ROOT, env=env)
    if completed.returncode != 0:
        sys.exit("bench-gate: benchmark run failed")


def compare(baseline, fresh, threshold):
    failures = []
    for name, entry in sorted(baseline["results"].items()):
        base_ops = entry["ops_per_sec"]
        fresh_entry = fresh["results"].get(name)
        if fresh_entry is None:
            failures.append(f"{name}: missing from fresh results")
            continue
        fresh_ops = fresh_entry["ops_per_sec"]
        ratio = fresh_ops / base_ops if base_ops else float("inf")
        status = "ok"
        if ratio < 1.0 - threshold:
            status = "REGRESSION"
            failures.append(
                f"{name}: {fresh_ops:,.0f} ops/s vs baseline "
                f"{base_ops:,.0f} ({ratio:.0%})"
            )
        print(f"  {name:28s} {fresh_ops:>14,.0f} ops/s  {ratio:>6.0%}  {status}")
    return failures


def committed_baseline(json_name):
    # The working-tree file is about to be overwritten by the fresh
    # run, so the committed copy is the baseline of record.
    show = subprocess.run(
        ["git", "show", f"HEAD:{json_name}"],
        cwd=REPO_ROOT, capture_output=True, text=True,
    )
    if show.returncode != 0:
        return None
    return json.loads(show.stdout)


def check_suite(name, suite, skip_run, baseline_override):
    results_path = REPO_ROOT / suite["json"]
    if baseline_override is not None:
        baseline = json.loads(baseline_override.read_text())
    else:
        baseline = committed_baseline(suite["json"])
    if not skip_run:
        run_suite(suite)
    fresh = json.loads(results_path.read_text())

    if baseline is None:
        # A suite gating for the first time has no committed baseline
        # yet: validate its invariants against the fresh run and ask
        # for the JSON to be committed.  Established suites always have
        # a committed baseline, so this never weakens them.
        print(f"bench-gate[{name}]: BOOTSTRAP — no committed "
              f"{suite['json']}; commit it to start the ratchet")
        baseline = fresh

    print(f"bench-gate[{name}]: threshold {suite['threshold']:.0%} against "
          f"{baseline_override or 'committed baseline'}")
    failures = compare(baseline, fresh, suite["threshold"])
    if suite["validate"] is not None:
        failures.extend(suite["validate"](fresh, baseline))
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--suite", choices=sorted(SUITES) + ["all"],
                        default="all", help="which suite(s) to gate")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="baseline JSON override (single suite only)")
    parser.add_argument("--skip-run", action="store_true",
                        help="compare existing JSON without re-running")
    args = parser.parse_args()

    names = sorted(SUITES) if args.suite == "all" else [args.suite]
    if args.baseline is not None and len(names) != 1:
        sys.exit("bench-gate: --baseline requires --suite NAME")

    artifacts = ignored_artifacts()
    if artifacts:
        print(f"bench-gate: ignoring {len(artifacts)} fuzzer repro "
              f"artifact(s): "
              + ", ".join(p.name for p in artifacts))

    failures = []
    for name in names:
        failures.extend(
            f"[{name}] {line}"
            for line in check_suite(name, SUITES[name], args.skip_run,
                                    args.baseline)
        )
    if failures:
        print("bench-gate: FAILED")
        for line in failures:
            print(f"  - {line}")
        sys.exit(1)
    print("bench-gate: ok")


if __name__ == "__main__":
    main()
