#!/usr/bin/env python
"""Hot-path benchmark regression gate (``make bench-gate``).

Runs ``benchmarks/bench_hotpath.py`` to produce a fresh
``BENCH_hotpath.json``, then compares every ops/sec figure against the
committed baseline: any metric more than ``THRESHOLD`` (20%) slower
fails with a non-zero exit.  Faster-than-baseline results are reported
but never fail — commit the regenerated file to ratchet the baseline.

Usage:
    python benchmarks/check_bench_regression.py [--baseline PATH] [--skip-run]

``--skip-run`` compares an already-generated BENCH_hotpath.json instead
of re-running the benchmarks (useful when iterating on the gate itself).
"""

import argparse
import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_PATH = REPO_ROOT / "BENCH_hotpath.json"
THRESHOLD = 0.20  # fail when fresh ops/sec < (1 - THRESHOLD) * baseline


def run_benchmarks():
    command = [
        sys.executable, "-m", "pytest",
        str(REPO_ROOT / "benchmarks" / "bench_hotpath.py"),
        "-q", "--benchmark-disable-gc",
    ]
    completed = subprocess.run(command, cwd=REPO_ROOT)
    if completed.returncode != 0:
        sys.exit("bench-gate: benchmark run failed")


def compare(baseline, fresh):
    failures = []
    for name, entry in sorted(baseline["results"].items()):
        base_ops = entry["ops_per_sec"]
        fresh_entry = fresh["results"].get(name)
        if fresh_entry is None:
            failures.append(f"{name}: missing from fresh results")
            continue
        fresh_ops = fresh_entry["ops_per_sec"]
        ratio = fresh_ops / base_ops if base_ops else float("inf")
        status = "ok"
        if ratio < 1.0 - THRESHOLD:
            status = "REGRESSION"
            failures.append(
                f"{name}: {fresh_ops:,.0f} ops/s vs baseline "
                f"{base_ops:,.0f} ({ratio:.0%})"
            )
        print(f"  {name:28s} {fresh_ops:>14,.0f} ops/s  {ratio:>6.0%}  {status}")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path, default=None,
                        help="baseline JSON (default: committed BENCH_hotpath.json)")
    parser.add_argument("--skip-run", action="store_true",
                        help="compare the existing BENCH_hotpath.json without re-running")
    args = parser.parse_args()

    if args.baseline is not None:
        baseline = json.loads(args.baseline.read_text())
    else:
        # The working-tree file is about to be overwritten by the fresh
        # run, so the committed copy is the baseline of record.
        show = subprocess.run(
            ["git", "show", f"HEAD:{RESULTS_PATH.name}"],
            cwd=REPO_ROOT, capture_output=True, text=True,
        )
        if show.returncode != 0:
            sys.exit("bench-gate: no committed BENCH_hotpath.json baseline "
                     "(pass --baseline PATH)")
        baseline = json.loads(show.stdout)

    if not args.skip_run:
        run_benchmarks()
    fresh = json.loads(RESULTS_PATH.read_text())

    print(f"bench-gate: threshold {THRESHOLD:.0%} against "
          f"{args.baseline or 'committed baseline'}")
    failures = compare(baseline, fresh)
    if failures:
        print("bench-gate: FAILED")
        for line in failures:
            print(f"  - {line}")
        sys.exit(1)
    print("bench-gate: ok")


if __name__ == "__main__":
    main()
