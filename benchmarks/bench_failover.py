#!/usr/bin/env python
"""Database failover drain benchmark (``make kv-failover``).

Kills the KV primary permanently in the middle of an UPDATE burst and
measures, on the virtual clock, how long the system takes to get back to
a clean NSR state with no operator involvement:

- ``detect_promote``: primary kill -> the controller's monitor confirms
  the death and promotes the replica (the ``database-failover`` event);
- ``ack_drain``: primary kill -> the *last* held TCP ACK is released
  (clients repointed, parked batches re-issued, verify reads re-read).

§4.1: "when either the database or the BGP container fails, TENSOR can
be recovered by simply rebooting the failed service and re-synchronizing
all the data" — this benchmark holds the automatic half of that promise
to a number: the drain must complete well inside the chaos liveness
oracle's 6 s held-ACK streak limit.

Writes ``BENCH_failover.json`` at the repo root for the regression gate
(metrics are inverted to ops/s: recoveries per second, so *slower*
recovery gates as a regression).  ``--smoke`` runs one reduced scenario
and only asserts the invariants, for ``make verify``.

Usage:
    PYTHONPATH=src python benchmarks/bench_failover.py [--smoke]
"""

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.system import PeerNeighborSpec, TensorSystem  # noqa: E402
from repro.failures import FailureInjector  # noqa: E402
from repro.sim import DeterministicRandom  # noqa: E402
from repro.workloads.topology import build_remote_peer  # noqa: E402
from repro.workloads.updates import RouteGenerator  # noqa: E402

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_failover.json"

SEEDS = (21, 22, 23)
ROUTES = 200
BURST = 150
#: The chaos liveness oracle's held-ACK streak limit (oracles.py).
DRAIN_BUDGET = 6.0


def build_system(seed, routes):
    system = TensorSystem(seed=seed)
    m1 = system.add_machine("gw-1", "10.1.0.1")
    m2 = system.add_machine("gw-2", "10.2.0.1")
    pair = system.create_pair(
        "pair0", m1, m2,
        service_addr="10.10.0.1", local_as=65001, router_id="10.10.0.1",
        neighbors=[PeerNeighborSpec("192.0.2.1", 64512, vrf_name="v0",
                                    mode="passive")],
    )
    remote = build_remote_peer(system, "remote0", "192.0.2.1", 64512,
                               link_machines=[m1, m2])
    session = remote.peer_with("10.10.0.1", 65001, vrf_name="v0",
                               mode="active")
    pair.start()
    remote.start()
    system.engine.advance(10.0)
    gen = RouteGenerator(DeterministicRandom(seed).fork("workload"), 64512,
                         next_hop="192.0.2.1")
    remote.speaker.originate_many("v0", gen.routes(routes))
    remote.speaker.readvertise(session)
    system.engine.advance(5.0)
    return system, pair, remote, session


def run_failover_once(seed, routes=ROUTES, burst=BURST):
    system, pair, remote, session = build_system(seed, routes)
    engine = system.engine

    gen = RouteGenerator(DeterministicRandom(seed).fork("burst"), 64512,
                         next_hop="192.0.2.1")
    remote.speaker.originate_many("v0", gen.routes(burst, base="55.0.0.0"))
    remote.speaker.readvertise(session)
    engine.advance(0.05)  # the burst is in flight when the primary dies

    injector = FailureInjector(system)
    injector.database_failover()
    killed_at = engine.now

    # sample the hold queue on the virtual clock: the drain instant is
    # the last time any ACK was still held after the kill
    last_held = [killed_at]

    def poll():
        speaker = pair.speaker
        if speaker is not None and speaker.tcp_queue.held_count() > 0:
            last_held[0] = engine.now
        if engine.now < killed_at + 20.0:
            engine.schedule(0.02, poll)

    poll()
    engine.advance(25.0)

    failover_times = [
        when for when, kind, _detail in system.controller.events
        if kind == "database-failover"
    ]
    assert len(failover_times) == 1, "expected exactly one failover"
    assert system.db_cluster.failovers == 1
    assert system.db_cluster.epoch == 2
    assert session.established, "session dropped during failover"
    assert pair.speaker.tcp_queue.held_count() == 0, "ACKs still held"

    detect_promote = failover_times[0] - killed_at
    ack_drain = last_held[0] - killed_at
    assert ack_drain < DRAIN_BUDGET, (
        f"drain {ack_drain:.2f}s exceeds the {DRAIN_BUDGET:.0f}s budget"
    )
    return detect_promote, ack_drain


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="one reduced scenario, asserts only (no JSON)")
    args = parser.parse_args(argv)

    if args.smoke:
        detect, drain = run_failover_once(SEEDS[0], routes=80, burst=50)
        print(f"kv-failover smoke: detect+promote={detect:.2f}s"
              f"  ack-drain={drain:.2f}s  (budget {DRAIN_BUDGET:.0f}s)  ok")
        return 0

    detects, drains = [], []
    for seed in SEEDS:
        detect, drain = run_failover_once(seed)
        detects.append(detect)
        drains.append(drain)
        print(f"seed {seed}: detect+promote={detect:.2f}s"
              f"  ack-drain={drain:.2f}s")

    mean_detect = sum(detects) / len(detects)
    mean_drain = sum(drains) / len(drains)
    print(f"mean: detect+promote={mean_detect:.2f}s"
          f"  ack-drain={mean_drain:.2f}s over {len(SEEDS)} seeds")

    payload = {
        "workload": {
            "seeds": list(SEEDS),
            "routes": ROUTES,
            "burst": BURST,
            "drain_budget_s": DRAIN_BUDGET,
        },
        "detect_promote_s": round(mean_detect, 4),
        "ack_drain_s": round(mean_drain, 4),
        # inverted so the gate's "lower ops/s = regression" convention
        # catches a *slower* recovery
        "results": {
            "failover_detect": {"ops_per_sec": round(1.0 / mean_detect, 4)},
            "failover_drain": {"ops_per_sec": round(1.0 / mean_drain, 4)},
        },
    }
    OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUT_PATH.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
