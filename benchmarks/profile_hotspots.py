#!/usr/bin/env python
"""Hotspot profiler (``make profile``).

Profiles the two workloads that dominate wall-clock in this repository
and prints the top-25 cumulative-time functions for each:

1. the Fig. 6(a) receive path — a TENSOR gateway receiving and applying
   a 20K-update burst (codec, RIB reselect, replication pipeline);
2. the parallel fleet workload at workers=1 — the windowed runner over
   a 4-site fleet (engine dispatch, BFD/supervision cadence, boundary
   export/merge).

Deterministic workloads, so two profiles of the same tree are directly
comparable; use this to aim optimization work before touching code.

``--parallel`` (``make profile-parallel``) restricts the run to the
parallel fleet workload and prints the coordinator's timing split
(compute vs barrier-wait vs dispatch vs serialization, with the
serialization side broken out into frame encode, decode, and
shared-memory ring-copy time) alongside the profile — the same split
``make bench-parallel`` records under ``time_split`` in
BENCH_parallel.json — so window-protocol overhead can be attributed
before reading a single profiler row.  Because the transport split is
all zeros at workers=1, ``--parallel`` follows the profiled run with an
unprofiled workers=2 shared-memory run and prints its split too.

Usage:
    PYTHONPATH=src python benchmarks/profile_hotspots.py [--top N]
        [--parallel]
"""

import argparse
import cProfile
import pstats
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
sys.path.insert(0, str(HERE.parent / "src"))
sys.path.insert(0, str(HERE))

TOP_DEFAULT = 25


def profile_receive_path():
    from conftest import DaemonLab

    lab = DaemonLab("tensor")
    lab.receive_time(20_000)


def profile_parallel_fleet(workers=1):
    from repro.sim.parallel.runtime import ParallelRunner
    from repro.workloads.fleet import fleet_site_specs

    specs = fleet_site_specs(4, pairs=2, routes=20, border_routes=10,
                             churn_ticks=2)
    result = ParallelRunner(specs, workers=workers).run(25.0)
    return result


WORKLOADS = (
    ("fig6a receive path (TENSOR, 20K updates)", profile_receive_path),
    ("parallel fleet (4 sites, workers=1)", profile_parallel_fleet),
)


def _print_timing_split(result):
    timing = result.timing
    wall = timing.get("wall_s") or 1.0
    transport = result.transport
    print(f"\ncoordinator timing split"
          f" ({transport['kind']}, {result.windows} windows,"
          f" wall {wall:.2f}s):")
    for key in ("compute_s", "barrier_wait_s", "barrier_send_s",
                "serialize_s", "rebalance_s"):
        value = timing.get(key, 0.0)
        print(f"  {key:16s} {value:8.3f}s  ({value / wall:5.1%} of wall)")
    # frame codec encode/decode (these two sum to serialize_s) plus the
    # raw memcpy into / out of the shared-memory rings
    for key in ("encode_s", "decode_s", "ring_copy_s"):
        value = timing.get(key, 0.0)
        print(f"    {key:14s} {value:8.3f}s  ({value / wall:5.1%} of wall)")
    print(f"  transport        {transport['frames']} frames"
          f" / {transport['batches']} batches / {transport['bytes']} bytes"
          f" / {transport.get('ring_wraps', 0)} ring wraps"
          f" / {transport.get('overflow_batches', 0)} overflow batches")


def run_profile(title, workload, top):
    print(f"\n=== {title}: top {top} by cumulative time ===")
    profiler = cProfile.Profile()
    profiler.enable()
    result = workload()
    profiler.disable()
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats("cumulative").print_stats(top)
    return result


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--top", type=int, default=TOP_DEFAULT,
                        help=f"rows per workload (default {TOP_DEFAULT})")
    parser.add_argument("--parallel", action="store_true",
                        help="profile only the parallel fleet workload and"
                             " print the coordinator timing split")
    args = parser.parse_args(argv)
    if args.parallel:
        result = run_profile("parallel fleet (4 sites, workers=1)",
                             profile_parallel_fleet, args.top)
        _print_timing_split(result)
        # the transport split only has content with real worker
        # processes; run workers=2 outside the profiler (child-process
        # time is invisible to cProfile anyway)
        _print_timing_split(profile_parallel_fleet(workers=2))
        return 0
    for title, workload in WORKLOADS:
        run_profile(title, workload, args.top)
    return 0


if __name__ == "__main__":
    sys.exit(main())
