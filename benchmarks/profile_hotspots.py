#!/usr/bin/env python
"""Hotspot profiler (``make profile``).

Profiles the two workloads that dominate wall-clock in this repository
and prints the top-25 cumulative-time functions for each:

1. the Fig. 6(a) receive path — a TENSOR gateway receiving and applying
   a 20K-update burst (codec, RIB reselect, replication pipeline);
2. the parallel fleet workload at workers=1 — the windowed runner over
   a 4-site fleet (engine dispatch, BFD/supervision cadence, boundary
   export/merge).

Deterministic workloads, so two profiles of the same tree are directly
comparable; use this to aim optimization work before touching code.

Usage:
    PYTHONPATH=src python benchmarks/profile_hotspots.py [--top N]
"""

import argparse
import cProfile
import pstats
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
sys.path.insert(0, str(HERE.parent / "src"))
sys.path.insert(0, str(HERE))

TOP_DEFAULT = 25


def profile_receive_path():
    from conftest import DaemonLab

    lab = DaemonLab("tensor")
    lab.receive_time(20_000)


def profile_parallel_fleet():
    from repro.sim.parallel.runtime import ParallelRunner
    from repro.workloads.fleet import fleet_site_specs

    specs = fleet_site_specs(4, pairs=2, routes=20, border_routes=10,
                             churn_ticks=2)
    ParallelRunner(specs, workers=1).run(25.0)


WORKLOADS = (
    ("fig6a receive path (TENSOR, 20K updates)", profile_receive_path),
    ("parallel fleet (4 sites, workers=1)", profile_parallel_fleet),
)


def run_profile(title, workload, top):
    print(f"\n=== {title}: top {top} by cumulative time ===")
    profiler = cProfile.Profile()
    profiler.enable()
    workload()
    profiler.disable()
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats("cumulative").print_stats(top)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--top", type=int, default=TOP_DEFAULT,
                        help=f"rows per workload (default {TOP_DEFAULT})")
    args = parser.parse_args(argv)
    for title, workload in WORKLOADS:
        run_profile(title, workload, args.top)
    return 0


if __name__ == "__main__":
    sys.exit(main())
