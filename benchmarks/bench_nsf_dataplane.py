"""Data-plane impact: packets lost during a failure, TENSOR vs baseline.

§2.1 motivates NSR in data-plane terms: "a one-minute one-link downtime
will impact 277 GBs of live traffic".  This benchmark offers constant-
rate traffic through a FIB derived from the gateway's Loc-RIB and counts
losses across a container failure:

- with TENSOR, the FIB never loses its routes (the Loc-RIB is recovered
  and the DSR forwarding plane holds programmed state meanwhile) —
  zero loss;
- for a non-NSR baseline, the peer withdraws the routes for the whole
  manual-recovery window — downtime x rate is lost.
"""

import random

from conftest import run_once
from repro.baselines import baseline_recovery_row
from repro.core.system import PeerNeighborSpec, TensorSystem
from repro.failures import FailureInjector
from repro.forwarding import DataPlane, Fib, FibSyncer, TrafficFlow
from repro.metrics import format_table
from repro.workloads.topology import build_remote_peer
from repro.workloads.updates import RouteGenerator

ROUTES = 500
RATE_PPS = 50_000
PACKET_BYTES = 1000


def tensor_loss():
    system = TensorSystem(seed=800)
    m1 = system.add_machine("gw-1", "10.1.0.1")
    m2 = system.add_machine("gw-2", "10.2.0.1")
    pair = system.create_pair(
        "pair0", m1, m2, service_addr="10.10.0.1", local_as=65001,
        router_id="10.10.0.1",
        neighbors=[PeerNeighborSpec("192.0.2.1", 64512, vrf_name="v0",
                                    mode="passive")],
    )
    remote = build_remote_peer(system, "remote0", "192.0.2.1", 64512,
                               link_machines=[m1, m2])
    session = remote.peer_with("10.10.0.1", 65001, vrf_name="v0", mode="active")
    pair.start()
    remote.start()
    system.engine.advance(10.0)
    gen = RouteGenerator(random.Random(8), 64512, next_hop="192.0.2.1")
    remote.speaker.originate_many("v0", gen.routes(ROUTES))
    remote.speaker.readvertise(session)
    system.engine.advance(5.0)
    fib = Fib("gw")
    syncer = FibSyncer(
        system.engine, fib,
        lambda: pair.speaker.vrfs["v0"].loc_rib if pair.speaker.running else None,
    )
    syncer.start()
    system.engine.advance(1.0)
    dataplane = DataPlane(system.engine, system.network, fib)
    flow = TrafficFlow(system.engine, dataplane, "10.0.0.1",
                       rate_pps=RATE_PPS, packet_bytes=PACKET_BYTES)
    flow.start()
    system.engine.advance(1.0)
    FailureInjector(system).container_failure(pair)
    system.engine.advance(30.0)
    flow.stop()
    return flow


def baseline_loss_bytes():
    """Downtime x rate for the manual-recovery window (application row)."""
    downtime = baseline_recovery_row("application")["total"]
    return downtime, downtime * RATE_PPS * PACKET_BYTES


def run_experiment():
    flow = tensor_loss()
    base_downtime, base_lost = baseline_loss_bytes()
    return {
        "tensor_offered": flow.offered_packets,
        "tensor_lost_bytes": flow.lost_bytes,
        "tensor_loss_time": flow.total_loss_time(),
        "baseline_downtime": base_downtime,
        "baseline_lost_bytes": base_lost,
    }


def test_nsf_dataplane(benchmark):
    results = run_once(benchmark, run_experiment)
    print()
    print(format_table(
        ["system", "loss window (s)", "data lost (MB)"],
        [
            ["TENSOR (container failure, NSR)",
             f"{results['tensor_loss_time']:.2f}",
             f"{results['tensor_lost_bytes'] / 1e6:.1f}"],
            ["baseline (application failure, manual recovery)",
             f"{results['baseline_downtime']:.0f}",
             f"{results['baseline_lost_bytes'] / 1e6:.1f}"],
        ],
        title=f"Data-plane impact at {RATE_PPS * PACKET_BYTES * 8 / 1e6:.0f}"
              " Mbps of offered traffic",
    ))
    assert results["tensor_lost_bytes"] == 0
    assert results["tensor_loss_time"] == 0.0
    assert results["baseline_lost_bytes"] > 1e9  # tens of seconds x rate
    assert results["tensor_offered"] > 30 * RATE_PPS * 0.9