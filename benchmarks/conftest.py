"""Shared infrastructure for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure from the paper's
evaluation (§4) and prints the same rows/series the paper reports, so
`pytest benchmarks/ --benchmark-only` doubles as the reproduction
harness.  Absolute numbers come from the calibrated simulation; the
*shapes* (who wins, by what factor, where crossovers fall) come from the
implemented mechanisms.
"""

import random
import sys

import pytest

sys.path.insert(0, __file__.rsplit("/", 2)[0] + "/tests")

from repro.bgp import PeerConfig, SpeakerConfig
from repro.bgp.speaker import BgpSpeaker
from repro.core.replication import ReplicationPipeline
from repro.core.tensor_process import TensorBgpSpeaker
from repro.kvstore import KvClient, KvServer
from repro.sim import DeterministicRandom, Engine, Network
from repro.tcpsim import TcpStack
from repro.workloads.updates import RouteGenerator


def run_once(benchmark, fn):
    """Run a deterministic simulation experiment once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


class DaemonLab:
    """A two-router lab: one gateway (any profile incl. TENSOR), one peer.

    Used by the Fig. 6(a)/(b) benchmarks: the gateway runs the
    implementation under test; the peer always runs the FRR profile, as in
    the paper ("the other installs FRRouting to represent the peering AS").
    """

    def __init__(self, profile, seed=7):
        self.engine = Engine()
        self.network = Network(self.engine, DeterministicRandom(seed))
        self.network.enable_fabric(latency=5e-5)
        self.gw_host = self.network.add_host("gw", "10.0.0.1")
        self.peer_host = self.network.add_host("peer", "10.0.0.2")
        self.network.connect(self.gw_host, self.peer_host,
                             latency=100e-6, bandwidth=100e9)
        self.gw_stack = TcpStack(self.engine, self.gw_host)
        self.peer_stack = TcpStack(self.engine, self.peer_host)
        self.profile = profile
        if profile == "tensor":
            db_host = self.network.add_host("db", "10.0.0.3")
            self.db = KvServer(self.engine, db_host)
            fast = KvClient(self.engine, self.gw_host, "10.0.0.3")
            bulk = KvClient(self.engine, self.gw_host, "10.0.0.3")
            pipeline = ReplicationPipeline("bench", fast, bulk)
            self.gw = TensorBgpSpeaker(
                self.engine, self.gw_stack,
                SpeakerConfig("gw", 65001, "10.0.0.1", profile="tensor"),
                pipeline, "bench",
            )
        else:
            self.db = None
            self.gw = BgpSpeaker(
                self.engine, self.gw_stack,
                SpeakerConfig("gw", 65001, "10.0.0.1", profile=profile),
            )
        self.peer = BgpSpeaker(
            self.engine, self.peer_stack,
            SpeakerConfig("peer", 64512, "10.0.0.2", profile="frr"),
        )
        self.gw.add_vrf("v1")
        self.peer.add_vrf("v1")
        self.gw.add_peer(PeerConfig("10.0.0.2", 64512, vrf_name="v1", mode="passive"))
        self.peer_session = self.peer.add_peer(
            PeerConfig("10.0.0.1", 65001, vrf_name="v1", mode="active")
        )
        self.gw.start()
        self.peer.start()
        self.engine.advance(5.0)
        assert self.peer_session.established

    def receive_time(self, count):
        """Seconds for the gateway to receive+apply ``count`` updates."""
        gen = RouteGenerator(random.Random(1), 64512, next_hop="10.0.0.2")
        self.peer.originate_many("v1", gen.routes(count))
        start = self.engine.now
        self.peer.readvertise(self.peer_session)
        self._run_until(lambda: self.gw.total_updates_received >= count)
        return self.gw.last_apply_time - start

    def send_time(self, count):
        """Seconds to generate+send ``count`` updates to the peer."""
        gen = RouteGenerator(random.Random(2), 65001, next_hop="10.0.0.1")
        self.gw.originate_many("v1", gen.routes(count))
        gw_session = next(iter(self.gw.sessions.values()))
        start = self.engine.now
        sent_done = [None]

        original = self.gw._transmit

        def tracking_transmit(session, message, wire):
            original(session, message, wire)
            if self.gw.total_updates_sent >= count and sent_done[0] is None:
                sent_done[0] = self.engine.now

        self.gw._transmit = tracking_transmit
        self.gw.readvertise(gw_session)
        self._run_until(lambda: sent_done[0] is not None)
        return sent_done[0] - start

    def _run_until(self, predicate, step=0.05, limit=600.0):
        deadline = self.engine.now + limit
        while not predicate():
            if self.engine.now > deadline:
                raise TimeoutError("benchmark did not converge")
            self.engine.advance(step)


PROFILES = ("tensor", "frr", "gobgp", "bird")
PROFILE_LABELS = {
    "tensor": "TENSOR",
    "frr": "FRRouting",
    "gobgp": "GoBGP",
    "bird": "BIRD",
}
