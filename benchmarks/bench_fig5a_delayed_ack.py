"""Figure 5(a): TCP maximum throughput vs acknowledgment delay.

Paper: "the maximum delays with no impact on the TCP throughput are
20 ms, 10 ms, 5 ms, 2 ms, and 2 ms for TCP connections with packet sizes
of 100B, 200B, 500B, 1000B, and 2000B".  Beyond the threshold, throughput
is capped by window/(RTT+delay).

The experiment replays the paper's iperf setup: two machines on a
100 Gbps link; the gateway-side machine delays every pure ACK through a
Netfilter OUTPUT -> NFQUEUE hook.
"""

from conftest import run_once
from repro.metrics import format_table, summarize
from repro.netfilter import Rule, Verdict
from repro.sim import DeterministicRandom, Engine, Network
from repro.tcpsim import TcpStack, max_throughput
from repro.tcpsim.throughput_model import average_segment_bytes, delay_threshold
from repro.trace import PHASES
from repro.trace.demo import build_traced_system

PACKET_SIZES = (100, 200, 500, 1000, 2000)
ACK_DELAYS = (0.0, 0.001, 0.002, 0.005, 0.010, 0.020, 0.050, 0.100)
RTT = 0.00035  # measured handshake RTT on the simulated link


def measure_throughput(write_size, ack_delay, duration=None, warmup=0.15):
    """One iperf run: steady-state goodput in bits/second.

    The window must span many effective RTTs or the window-quantized
    delivery pattern aliases the measurement at large delays.
    """
    if duration is None:
        duration = max(0.25, 25 * (RTT + ack_delay))
    engine = Engine()
    network = Network(engine, DeterministicRandom(7))
    sender = network.add_host("sender", "10.0.0.1")
    receiver = network.add_host("receiver", "10.0.0.2")
    network.connect(sender, receiver, latency=100e-6, bandwidth=100e9)
    snd_stack, rcv_stack = TcpStack(engine, sender), TcpStack(engine, receiver)

    def is_pure_ack(packet):
        seg = packet.payload
        return seg.has_ack and not seg.payload and not seg.syn and not seg.fin and not seg.rst

    rcv_stack.output_chain.append(Rule(is_pure_ack, Verdict.QUEUE, queue_num=0))
    rcv_stack.nfqueue.bind(0, lambda qp: engine.schedule(ack_delay, qp.accept))

    received = [0]

    def on_accept(conn):
        conn.on_data = lambda _c, data: received.__setitem__(0, received[0] + len(data))

    rcv_stack.listen(5001, on_accept)
    conn_holder = [None]

    def pump(conn):
        while conn.bytes_unsent < 4 * 131072:
            conn.send(b"x" * write_size)

    def on_established(conn):
        conn.mss_limit = int(average_segment_bytes(write_size))
        conn_holder[0] = conn
        pump(conn)

    snd_stack.connect("10.0.0.2", 5001, on_established=on_established)

    def refill():
        if conn_holder[0] is not None:
            pump(conn_holder[0])
        engine.schedule(0.005, refill)

    engine.schedule(0.005, refill)
    engine.run(until=warmup)
    base = received[0]
    engine.run(until=warmup + duration)
    return (received[0] - base) * 8.0 / duration


def run_experiment():
    rows = []
    for size in PACKET_SIZES:
        measured = [measure_throughput(size, delay) for delay in ACK_DELAYS]
        modeled = [max_throughput(size, delay, RTT) for delay in ACK_DELAYS]
        threshold = delay_threshold(size, RTT)
        rows.append((size, threshold, measured, modeled))
    return rows


def test_fig5a_delayed_ack(benchmark):
    rows = run_once(benchmark, run_experiment)
    table = []
    for size, threshold, measured, _modeled in rows:
        table.append(
            [f"{size}B", f"{threshold * 1000:.1f} ms"]
            + [f"{bps / 1e6:.1f}" for bps in measured]
        )
    print()
    print(format_table(
        ["size", "threshold"] + [f"{d * 1000:g}ms" for d in ACK_DELAYS],
        table,
        title="Fig 5(a): max TCP throughput (Mbps) vs ACK delay"
              " (paper thresholds: 20/10/5/2/2 ms)",
    ))
    # shape assertions: thresholds decrease with packet size and match paper
    thresholds_ms = [round(t * 1000) for _s, t, _m, _mo in rows]
    assert thresholds_ms == [20, 10, 4, 2, 2] or thresholds_ms == [20, 10, 5, 2, 2]
    for size, threshold, measured, modeled in rows:
        base = measured[0]
        for delay, bps in zip(ACK_DELAYS, measured):
            if delay <= threshold * 0.9:
                assert bps > 0.9 * base  # no impact below the threshold
        assert measured[-1] < 0.5 * base  # heavy impact at 100 ms
        # simulation tracks the analytic model
        for sim_bps, model_bps in zip(measured, modeled):
            assert abs(sim_bps - model_bps) / model_bps < 0.25


def run_phase_breakdown():
    """Drive real UPDATE traffic through a traced TENSOR gateway and
    return the causal tracer's per-phase latency statistics."""
    system, _pair, _remotes = build_traced_system(seed=7, routes=40)
    return system.trace_store


def test_fig5a_phase_breakdown(benchmark):
    """Where the ACK delay actually goes, phase by phase.

    Fig. 5(a) bounds how long the gateway may hold an ACK before TCP
    throughput suffers; the causal tracer shows what fills that budget
    on the NSR hot path.  The §3.1.1 equality this asserts: every held
    ACK is released exactly when its replication write became durable
    (hold end == durable instant, within the verify-read round trip),
    never before.
    """
    store = run_once(benchmark, run_phase_breakdown)
    summary = store.phase_summary()
    table = [
        [phase, stats["count"], f"{stats['mean'] * 1e3:.3f}",
         f"{stats['median'] * 1e3:.3f}", f"{stats['max'] * 1e3:.3f}"]
        for phase, stats in summary.items()
    ]
    print()
    print(format_table(
        ["phase", "spans", "mean ms", "median ms", "max ms"],
        table,
        title="Fig 5(a) companion: traced per-phase hot-path latency",
    ))

    # every phase appears, for every traced message (updates plus the
    # keepalives that share the replicate-then-ACK hot path)
    assert set(summary) == set(PHASES)
    assert len(store.update_ids(msg="UpdateMessage")) == 80
    traced_messages = len(store.update_ids())
    assert traced_messages >= 80
    for phase in ("receive", "replicate", "ack_release", "apply"):
        assert summary[phase]["count"] == traced_messages

    # the §3.1.1 budget equality, span for span
    assert store.delayed_ack_violations() == []
    replicate_end = {
        span.trace_id: span.end
        for span in store.spans(name="replicate", ended=True)
    }
    release_end = {
        span.trace_id: span.end
        for span in store.spans(name="ack_release", ended=True)
    }
    holds = [
        span for span in store.spans(name="nfq.hold", ended=True)
        if "released_by" in span.attrs
    ]
    assert holds, "no ACKs were ever held: the delayed-ACK path is dead"
    for span in holds:
        durable_at = replicate_end[span.attrs["released_by"]]
        released_at = release_end[span.attrs["released_by"]]
        assert span.end >= durable_at  # never early...
        # ...and never later than the verify-read confirmation that
        # freed it (the release cascade runs in the same instant)
        assert abs(span.end - released_at) < 1e-6

    # phase budgets: the per-update ACK hold work (durability check +
    # verify read) stays well inside the paper's 20 ms budget for 100B
    # segments
    hold_durations = [s.end - s.begin for s in holds]
    assert summarize(hold_durations)["median"] < 0.020
    assert summary["ack_release"]["median"] < 0.010
    assert summary["receive"]["max"] < 0.010
    assert summary["apply"]["max"] < 0.010
