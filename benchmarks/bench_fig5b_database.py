"""Figure 5(b): database read/write total time vs number of records.

Paper: single read < 500 us; single write ~1 ms (~2.5x the read); batch
amortization: ~70 reads in <1 ms-scale, 10K reads ~200 ms, 10 writes
<2 ms, 10K writes ~500 ms.  Records are 90 B keys + 4 KB values (one
maximal BGP message).
"""

from conftest import run_once
from repro.kvstore import KvClient, KvServer
from repro.metrics import format_table
from repro.sim import DeterministicRandom, Engine, Network
from repro.sim.calibration import KV_KEY_BYTES, KV_VALUE_BYTES_MAX

RECORD_COUNTS = (1, 10, 70, 100, 1000, 10_000)


def run_experiment():
    engine = Engine()
    network = Network(engine, DeterministicRandom(3))
    network.enable_fabric(latency=5e-5)
    gateway = network.add_host("gw", "10.0.0.1")
    db_host = network.add_host("db", "10.0.0.2")
    KvServer(engine, db_host)
    client = KvClient(engine, gateway, "10.0.0.2")
    value = b"v" * KV_VALUE_BYTES_MAX
    results = []
    for count in RECORD_COUNTS:
        items = [(f"{'k' * (KV_KEY_BYTES - 6)}{i:06d}", value) for i in range(count)]
        timing = {}
        start = engine.now
        client.mset(items, on_done=lambda: timing.__setitem__("write", engine.now - start))
        engine.run_until_idle()
        start = engine.now
        client.mget([key for key, _v in items],
                    on_done=lambda _vals: timing.__setitem__("read", engine.now - start))
        engine.run_until_idle()
        results.append((count, timing["read"], timing["write"]))
    return results


def test_fig5b_database(benchmark):
    results = run_once(benchmark, run_experiment)
    print()
    print(format_table(
        ["records", "read total (ms)", "write total (ms)", "write/read"],
        [[n, r * 1000, w * 1000, w / r] for n, r, w in results],
        title="Fig 5(b): database operation time vs record count",
    ))
    by_count = {n: (r, w) for n, r, w in results}
    read_1, write_1 = by_count[1]
    assert read_1 < 500e-6                      # "less than 500 us"
    assert 0.8e-3 < write_1 < 1.3e-3            # "roughly 1 ms"
    read_10k, write_10k = by_count[10_000]
    assert 0.15 < read_10k < 0.25               # "200 ms for up to 10K records"
    assert 0.4 < write_10k < 0.6                # "~500 ms for 10K"
    _r10, w10 = by_count[10]
    assert w10 < 2e-3                           # "less than 2 ms for 10 records"
    # write ~2.5x read at scale
    assert 2.0 < write_10k / read_10k < 3.0
    # batch amortization: per-record cost collapses
    assert read_10k / 10_000 < read_1 / 5
