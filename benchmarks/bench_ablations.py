"""Ablations: the design choices §3 argues for, measured.

1. **Delayed ACK off** (§3.1.1): releasing ACKs before replication
   commits loses routes across a crash; holding them loses nothing.
2. **BFD relay off** (§3.3.2): without the agent's duplicate BFD
   transmitters the remote peer sees the link flap during migration.
3. **Split vs monolithic BGP** (§3.2.1/§4.2): receiving 10K updates from
   each of 50 ASes takes ~5s+ in one process but sub-second per split
   container ("thanks to the containerized approach which naturally
   enables parallelism").
4. **Containerized boot** (§3.2.1): configuration loading drops from
   ~20 minutes (monolithic, ~100K configs) to ~20 seconds per container.
"""

import random

from conftest import run_once
from repro.bgp import PeerConfig, SpeakerConfig
from repro.bgp.speaker import BgpSpeaker
from repro.containers import HostMachine
from repro.core.replication import ReplicationPipeline
from repro.core.system import PeerNeighborSpec, TensorSystem
from repro.core.tensor_process import TensorBgpSpeaker
from repro.failures import FailureInjector
from repro.kvstore import KvClient, KvServer
from repro.metrics import format_table
from repro.sim import DeterministicRandom, Engine, Network
from repro.tcpsim import TcpStack
from repro.workloads.topology import build_remote_peer
from repro.workloads.updates import RouteGenerator


# -- ablation 1: delayed ACK ---------------------------------------------------


def _crash_with_lagging_db(hold_acks):
    system = TensorSystem(seed=500, hold_acks=hold_acks)
    m1 = system.add_machine("gw-1", "10.1.0.1")
    m2 = system.add_machine("gw-2", "10.2.0.1")
    pair = system.create_pair(
        "pair0", m1, m2, service_addr="10.10.0.1", local_as=65001,
        router_id="10.10.0.1",
        neighbors=[PeerNeighborSpec("192.0.2.1", 64512, vrf_name="v0",
                                    mode="passive")],
    )
    remote = build_remote_peer(system, "remote0", "192.0.2.1", 64512,
                               link_machines=[m1, m2])
    session = remote.peer_with("10.10.0.1", 65001, vrf_name="v0", mode="active")
    pair.start()
    remote.start()
    system.engine.advance(10.0)
    gen = RouteGenerator(random.Random(13), 64512, next_hop="192.0.2.1")
    remote.speaker.originate_many("v0", gen.routes(800))
    system.db.fail()  # replication lags behind acknowledgment
    remote.speaker.readvertise(session)
    system.engine.advance(2.0)
    injector = FailureInjector(system)
    injector.container_failure(pair)
    system.db.recover()
    system.engine.advance(90.0)
    return len(pair.speaker.vrfs["v0"].loc_rib)


def ablation_delayed_ack():
    with_holding = _crash_with_lagging_db(hold_acks=True)
    without_holding = _crash_with_lagging_db(hold_acks=False)
    return with_holding, without_holding


# -- ablation 2: BFD relay -------------------------------------------------------


def _migration_bfd_flaps(relay_enabled):
    system = TensorSystem(seed=501)
    m1 = system.add_machine("gw-1", "10.1.0.1")
    m2 = system.add_machine("gw-2", "10.2.0.1")
    pair = system.create_pair(
        "pair0", m1, m2, service_addr="10.10.0.1", local_as=65001,
        router_id="10.10.0.1",
        neighbors=[PeerNeighborSpec("192.0.2.1", 64512, vrf_name="v0",
                                    mode="passive")],
    )
    remote = build_remote_peer(system, "remote0", "192.0.2.1", 64512,
                               link_machines=[m1, m2])
    remote.peer_with("10.10.0.1", 65001, vrf_name="v0", mode="active")
    pair.start()
    remote.start()
    if not relay_enabled:
        pair._register_relay = lambda: None
        system.agent.stop_relay("pair0")
    system.engine.advance(10.0)
    if not relay_enabled:
        system.agent.stop_relay("pair0")
    remote_bfd = list(remote.bfd.sessions.values())[0]
    flaps_before = len(remote_bfd.state_changes)
    injector = FailureInjector(system)
    injector.container_failure(pair)
    system.engine.advance(30.0)
    from repro.bfd.packet import BfdState

    downs = [
        t for t, _old, new in remote_bfd.state_changes[flaps_before:]
        if new is BfdState.DOWN
    ]
    return len(downs)


def ablation_bfd_relay():
    return _migration_bfd_flaps(True), _migration_bfd_flaps(False)


# -- ablation 3: split vs monolithic receive parallelism -------------------------


def _monolithic_receive(as_count, updates_each):
    engine = Engine()
    network = Network(engine, DeterministicRandom(17))
    network.enable_fabric(latency=5e-5)
    gw_host = network.add_host("gw", "10.0.0.1")
    db_host = network.add_host("db", "10.254.0.1")
    KvServer(engine, db_host)
    fast = KvClient(engine, gw_host, "10.254.0.1")
    bulk = KvClient(engine, gw_host, "10.254.0.1")
    gw = TensorBgpSpeaker(
        engine, TcpStack(engine, gw_host),
        SpeakerConfig("gw", 65001, "10.0.0.1", profile="tensor"),
        ReplicationPipeline("mono", fast, bulk), "mono",
    )
    remotes = []
    for i in range(as_count):
        addr = f"192.0.{i // 250}.{i % 250 + 1}"
        host = network.add_host(f"r{i}", addr)
        remote = BgpSpeaker(
            engine, TcpStack(engine, host),
            SpeakerConfig(f"r{i}", 64512 + i, addr, profile="frr"),
        )
        vrf = f"v{i}"
        remote.add_vrf(vrf)
        gw.add_vrf(vrf)
        gw.add_peer(PeerConfig(addr, 64512 + i, vrf_name=vrf, mode="passive"))
        session = remote.add_peer(
            PeerConfig("10.0.0.1", 65001, vrf_name=vrf, mode="active")
        )
        remotes.append((remote, session, vrf))
    gw.start()
    for remote, _s, _v in remotes:
        remote.start()
    engine.advance(10.0)
    gen = RouteGenerator(random.Random(19), 64512, next_hop="192.0.2.1")
    routes = gen.routes(updates_each)
    start = engine.now
    for remote, session, vrf in remotes:
        remote.originate_many(vrf, routes)
        remote.readvertise(session)
    target = as_count * updates_each
    while gw.total_updates_received < target:
        engine.advance(0.25)
        if engine.now - start > 1200:
            raise TimeoutError("monolithic receive did not converge")
    return gw.last_apply_time - start


def _split_receive(as_count, updates_each):
    """Each AS gets its own TENSOR process (its own CPU): the makespan is
    the slowest single container, not the sum."""
    engine = Engine()
    network = Network(engine, DeterministicRandom(18))
    network.enable_fabric(latency=5e-5)
    db_host = network.add_host("db", "10.254.0.1")
    KvServer(engine, db_host)
    gen = RouteGenerator(random.Random(19), 64512, next_hop="192.0.2.1")
    routes = gen.routes(updates_each)
    containers = []
    for i in range(as_count):
        gw_addr = f"10.0.{i // 250}.{i % 250 + 1}"
        gw_host = network.add_host(f"gw{i}", gw_addr)
        fast = KvClient(engine, gw_host, "10.254.0.1")
        bulk = KvClient(engine, gw_host, "10.254.0.1")
        gw = TensorBgpSpeaker(
            engine, TcpStack(engine, gw_host),
            SpeakerConfig(f"gw{i}", 65001, gw_addr, profile="tensor"),
            ReplicationPipeline(f"split{i}", fast, bulk), f"split{i}",
        )
        gw.add_vrf("v0")
        r_addr = f"192.1.{i // 250}.{i % 250 + 1}"
        r_host = network.add_host(f"r{i}", r_addr)
        remote = BgpSpeaker(
            engine, TcpStack(engine, r_host),
            SpeakerConfig(f"r{i}", 64512 + i, r_addr, profile="frr"),
        )
        remote.add_vrf("v0")
        gw.add_peer(PeerConfig(r_addr, 64512 + i, vrf_name="v0", mode="passive"))
        session = remote.add_peer(
            PeerConfig(gw_addr, 65001, vrf_name="v0", mode="active")
        )
        gw.start()
        remote.start()
        containers.append((gw, remote, session))
    engine.advance(10.0)
    start = engine.now
    for _gw, remote, session in containers:
        remote.originate_many("v0", routes)
        remote.readvertise(session)
    while any(gw.total_updates_received < updates_each for gw, _r, _s in containers):
        engine.advance(0.25)
        if engine.now - start > 1200:
            raise TimeoutError("split receive did not converge")
    return max(gw.last_apply_time for gw, _r, _s in containers) - start


def ablation_split(as_count=50, updates_each=10_000):
    return (
        _monolithic_receive(as_count, updates_each),
        _split_receive(as_count, updates_each),
    )


# -- ablation 4: boot time --------------------------------------------------------


def ablation_boot_time():
    engine = Engine()
    network = Network(engine, DeterministicRandom(1))
    machine = HostMachine(engine, network, "m", "10.1.0.1")
    monolith = machine.create_container("monolith", config_entries=100_000)
    containers = [
        machine.create_container(f"c{i}", config_entries=1000) for i in range(100)
    ]
    parallel_boot = max(c.boot_time() for c in containers)
    return monolith.boot_time(), parallel_boot


# ------------------------------------------------------------------------------


def run_experiment():
    return {
        "delayed_ack": ablation_delayed_ack(),
        "bfd_relay": ablation_bfd_relay(),
        "split": ablation_split(),
        "boot": ablation_boot_time(),
    }


def test_ablations(benchmark):
    results = run_once(benchmark, run_experiment)
    held, unheld = results["delayed_ack"]
    relay_flaps, norelay_flaps = results["bfd_relay"]
    mono, split = results["split"]
    mono_boot, container_boot = results["boot"]
    print()
    print(format_table(
        ["ablation", "with mechanism", "without"],
        [
            ["delayed ACK (routes recovered / 800)", held, unheld],
            ["BFD relay (remote flaps during migration)", relay_flaps, norelay_flaps],
            ["BGP split (50 AS x 10K updates, seconds)", f"{split:.2f}", f"{mono:.2f}"],
            ["boot time (seconds)", f"{container_boot:.0f}", f"{mono_boot:.0f}"],
        ],
        title="Ablations: §3 design choices",
    ))
    assert held == 800 and unheld < 800          # §3.1.1 inconsistency
    assert relay_flaps == 0 and norelay_flaps >= 1  # §3.3.2 relay
    assert split < 1.0 and mono > 5.0            # §4.2 parallelism argument
    assert mono_boot > 1100 and container_boot < 25  # ~20 min -> ~20 s
