"""Figure 7(b): TENSOR adoption and impacted traffic over two years.

Paper: "Before June 2020 ... roughly 34 TB of data is impacted every
month.  We started the initial deployment of TENSOR in June 2020 with
100 ASes ... we migrated all the enterprise BGP business to TENSOR by
the end of 2021.  For the past two years, TENSOR had a link downtime of
zero despite that we have tripled the update frequency."
"""

from conftest import run_once
from repro.metrics import format_table
from repro.sim import DeterministicRandom
from repro.sim.calibration import FLEET_PEERING_ASES
from repro.workloads.operations import (
    DEPLOY_START_MONTH,
    FULL_MIGRATION_MONTH,
    OperationalModel,
    default_adoption_curve,
)

MONTH_LABELS_START = ("Jan-2020", )


def run_experiment():
    model = OperationalModel(
        DeterministicRandom(2020).stream("fig7b"), links=FLEET_PEERING_ASES
    )
    adoption = default_adoption_curve(FLEET_PEERING_ASES)
    impacted = model.monthly_impacted_bytes(adoption)
    return adoption, impacted


def _month_name(index):
    year = 2020 + index // 12
    month = index % 12 + 1
    return f"{year}-{month:02d}"


def test_fig7b_operational(benchmark):
    adoption, impacted = run_once(benchmark, run_experiment)
    print()
    print(format_table(
        ["month", "ASes on TENSOR", "impacted data (TB)"],
        [[_month_name(i), adoption[i], impacted[i] / 1e12]
         for i in range(len(adoption))],
        title="Fig 7(b): adoption and monthly impacted traffic",
    ))
    # pre-deployment: tens of TB impacted every month
    pre = impacted[:DEPLOY_START_MONTH]
    assert all(5e12 < v < 150e12 for v in pre), [v / 1e12 for v in pre]
    # adoption starts at 100 ASes and holds for verification
    assert adoption[DEPLOY_START_MONTH] == 100
    assert adoption[DEPLOY_START_MONTH + 3] == 100
    # full migration by end of 2021 (month index 23)
    assert adoption[FULL_MIGRATION_MONTH] == FLEET_PEERING_ASES
    # zero impact after full migration despite tripled update frequency
    assert all(v == 0 for v in impacted[FULL_MIGRATION_MONTH:])
    # impact declines as adoption ramps
    ramp = impacted[DEPLOY_START_MONTH + 4 : FULL_MIGRATION_MONTH]
    assert ramp[-1] < ramp[0]
