"""Figure 6(d): memory usage and CPU utilization vs container count.

Paper: "the memory usage and CPU utilization rate increase linearly as
the number of containers on one host machine increases.  Supporting 100
containers only costs 25 GB of memory and 5.6% of the CPU."
"""

from conftest import run_once
from repro.containers import HostMachine
from repro.metrics import format_table
from repro.sim import DeterministicRandom, Engine, Network

CONTAINER_COUNTS = (1, 10, 25, 50, 75, 100)
CONFIG_ENTRIES = 1000  # ~1K configurations per container (paper's scale)


def run_experiment():
    engine = Engine()
    network = Network(engine, DeterministicRandom(1))
    machine = HostMachine(engine, network, "gw-1", "10.1.0.1")
    points = []
    booted = 0
    for target in CONTAINER_COUNTS:
        while booted < target:
            container = machine.create_container(f"c{booted}", CONFIG_ENTRIES)
            container.start()
            booted += 1
        engine.run_until_idle()
        points.append(
            (target, machine.memory_used(), machine.cpu_used_fraction())
        )
    return points


def test_fig6d_scalability(benchmark):
    points = run_once(benchmark, run_experiment)
    print()
    print(format_table(
        ["containers", "memory (GB)", "CPU (%)"],
        [[n, mem / 2**30, cpu * 100] for n, mem, cpu in points],
        title="Fig 6(d): per-host resource usage vs container count",
    ))
    by_count = {n: (mem, cpu) for n, mem, cpu in points}
    mem_100, cpu_100 = by_count[100]
    # "100 containers only costs 25 GB of memory and 5.6% of the CPU"
    assert 20 * 2**30 < mem_100 < 30 * 2**30
    assert 0.05 < cpu_100 < 0.065
    # linearity: usage at N is N x usage at 1 (exactly, in the model)
    mem_1, cpu_1 = by_count[1]
    for n, mem, cpu in points:
        assert abs(mem - n * mem_1) / (n * mem_1) < 0.01
        assert abs(cpu - n * cpu_1) / (n * cpu_1) < 0.01
