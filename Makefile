PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-hotpath bench-gate

test:
	$(PYTHON) -m pytest tests -x -q

bench:
	$(PYTHON) -m pytest benchmarks --benchmark-only

bench-hotpath:
	$(PYTHON) -m pytest benchmarks/bench_hotpath.py -q

# Fails (non-zero) when any hot-path metric in a fresh run is >20%
# slower than the committed BENCH_hotpath.json baseline.
bench-gate:
	$(PYTHON) benchmarks/check_bench_regression.py
