PYTHON ?= python
export PYTHONPATH := src

# Seed sweep width for `make chaos` (seeds 0..SEEDS-1).
SEEDS ?= 25

.PHONY: test bench bench-hotpath bench-gate chaos chaos-corpus chaos-ablation trace-demo verify

test:
	$(PYTHON) -m pytest tests -x -q

bench:
	$(PYTHON) -m pytest benchmarks --benchmark-only

bench-hotpath:
	$(PYTHON) -m pytest benchmarks/bench_hotpath.py -q

# Fails (non-zero) when any hot-path metric in a fresh run is >20%
# slower than the committed BENCH_hotpath.json baseline.
bench-gate:
	$(PYTHON) benchmarks/check_bench_regression.py

# Randomized multi-failure NSR testing (DESIGN.md §9).  On a violation
# the engine shrinks the schedule and writes chaos_repro_<seed>.py.
chaos:
	$(PYTHON) -m repro.failures.chaos --seeds $(SEEDS)

# The fixed seed corpus tier-1 also runs (fast regression net).
chaos-corpus:
	$(PYTHON) -m repro.failures.chaos --corpus

# Sanity-check the engine's teeth: disabling delayed ACKs must trip
# the ack_durability oracle and produce a replayable shrunk repro.
chaos-ablation:
	$(PYTHON) -m repro.failures.chaos --ablation

# Causal-tracing walkthrough (DESIGN.md §10): phase latency summary,
# one update's critical path, and the delayed-ACK invariant check.
trace-demo:
	$(PYTHON) -m repro.trace.demo

# The full gate: tier-1 tests, hot-path perf regression, chaos corpus.
verify: test bench-gate chaos-corpus
