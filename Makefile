PYTHON ?= python
export PYTHONPATH := src

# Seed sweep width for `make chaos` (seeds 0..SEEDS-1).
SEEDS ?= 25

# Campaign shape for `make fuzz` (spec seeds derive from FUZZ_SEED).
FUZZ_SEED ?= 0
FUZZ_ITERATIONS ?= 10

.PHONY: test bench bench-hotpath bench-parallel bench-failover bench-fulltable bench-gate fulltable-smoke profile profile-parallel parallel-smoke kv-failover chaos chaos-corpus chaos-ablation controller-chaos fuzz fuzz-corpus fuzz-smoke trace-demo verify

test:
	$(PYTHON) -m pytest tests -x -q

bench:
	$(PYTHON) -m pytest benchmarks --benchmark-only

bench-hotpath:
	$(PYTHON) -m pytest benchmarks/bench_hotpath.py -q

# The 112-container fleet under the conservative parallel runtime at
# workers=1/2/4; writes BENCH_parallel.json (determinism + speedup).
bench-parallel:
	$(PYTHON) benchmarks/bench_parallel_fleet.py

# Kill the KV primary mid-burst at several seeds; measures detection+
# promotion and kill->last-held-ACK drain, writes BENCH_failover.json.
bench-failover:
	$(PYTHON) benchmarks/bench_failover.py

# Internet-scale table (DESIGN.md §14): 100k vs 1M prefixes through the
# radix-trie Loc-RIB, churn reselect, aggregated snapshot compaction,
# and a slice through a real NSR pair; writes BENCH_fulltable.json.
bench-fulltable:
	$(PYTHON) benchmarks/bench_fulltable.py

# Reduced sizes, invariants only (sub-linear reselect, >=20% snapshot
# aggregation, bounded incremental compaction), for `make verify`.
fulltable-smoke:
	$(PYTHON) benchmarks/bench_fulltable.py --smoke

# One reduced automatic-failover scenario, asserts only: the monitor
# must promote on its own and every held ACK must drain in budget.
kv-failover:
	$(PYTHON) benchmarks/bench_failover.py --smoke

# Fails (non-zero) when any metric in a fresh run regresses past its
# suite threshold against the committed BENCH_*.json baselines, or when
# the parallel suite's determinism/speedup invariants break.
bench-gate:
	$(PYTHON) benchmarks/check_bench_regression.py

# cProfile hotspot listing (top-25 cumulative) over the Fig. 6(a)
# receive path and the parallel fleet workload.
profile:
	$(PYTHON) benchmarks/profile_hotspots.py

# Parallel fleet only, plus the coordinator's compute / barrier-wait /
# dispatch / serialization split (the time_split in BENCH_parallel.json).
profile-parallel:
	$(PYTHON) benchmarks/profile_hotspots.py --parallel

# Two-site fleet, workers=1 vs workers=2: results must be bit-identical.
parallel-smoke:
	$(PYTHON) -m repro.sim.parallel.smoke

# Randomized multi-failure NSR testing (DESIGN.md §9).  On a violation
# the engine shrinks the schedule and writes chaos_repro_<seed>.py.
chaos:
	$(PYTHON) -m repro.failures.chaos --seeds $(SEEDS)

# The fixed seed corpus tier-1 also runs (fast regression net).
chaos-corpus:
	$(PYTHON) -m repro.failures.chaos --corpus

# Sanity-check the engine's teeth: disabling delayed ACKs must trip
# the ack_durability oracle and produce a replayable shrunk repro.
chaos-ablation:
	$(PYTHON) -m repro.failures.chaos --ablation

# Controller-plane chaos (DESIGN.md §15): a 3-replica panel under
# replica crashes, controller<->machine partitions and lying monitors;
# the wrong_failover oracle asserts no fence/promote hit a healthy node.
controller-chaos:
	$(PYTHON) -m repro.failures.chaos --controller-corpus

# Coverage-guided config/topology fuzzing (DESIGN.md §13): mutate
# config + topology + failure schedule together; novel coverage keys
# keep specs in the corpus, violations shrink across schedule *and*
# config dimensions into replayable fuzz_repro_<seed>.py scripts.
fuzz:
	$(PYTHON) -m repro.fuzz --seed $(FUZZ_SEED) --iterations $(FUZZ_ITERATIONS)

# Regenerate the checked-in regression manifest: the chaos-corpus
# coverage baseline (seeds 0-12) plus the campaign entries that reach
# coverage the fixed corpus never produces (tier-1 replays a sample).
fuzz-corpus:
	$(PYTHON) -m repro.fuzz --seed 0 --iterations 12 \
		--write-manifest tests/fuzz_corpus/manifest.json

# Bounded fuzz gate for `make verify`: three fixed seeds with capped
# horizons, finishes in well under 30 s.
fuzz-smoke:
	$(PYTHON) -m repro.fuzz --smoke

# Causal-tracing walkthrough (DESIGN.md §10): phase latency summary,
# one update's critical path, and the delayed-ACK invariant check.
trace-demo:
	$(PYTHON) -m repro.trace.demo

# The full gate: tier-1 tests, perf regression (hot path, parallel,
# failover drain), chaos corpus, controller-plane chaos, the parallel
# determinism smoke, the database failover smoke, the bounded fuzz
# smoke, and the full-table scaling smoke.
verify: test bench-gate chaos-corpus controller-chaos parallel-smoke kv-failover fuzz-smoke fulltable-smoke
