"""Failure injection and chaos testing.

The E1-E5 scenarios of Figure 3 / Table 1, the chaos schedule engine
that composes them into randomized overlapping runs, and the NSR
invariant oracles that judge every run (DESIGN.md §9).
"""

from repro.failures.chaos import (
    ChaosSchedule,
    generate_schedule,
    run_schedule,
    shrink_schedule,
    write_repro_script,
)
from repro.failures.injector import FailureInjector
from repro.failures.oracles import OracleSuite, Violation
from repro.failures.scenarios import SCENARIOS, Scenario, scenarios_by_severity

__all__ = [
    "ChaosSchedule",
    "FailureInjector",
    "OracleSuite",
    "SCENARIOS",
    "Scenario",
    "Violation",
    "generate_schedule",
    "run_schedule",
    "scenarios_by_severity",
    "shrink_schedule",
    "write_repro_script",
]
