"""Failure injection: the E1-E5 scenarios of Figure 3 and Table 1."""

from repro.failures.injector import FailureInjector
from repro.failures.scenarios import SCENARIOS, Scenario

__all__ = ["FailureInjector", "Scenario", "SCENARIOS"]
