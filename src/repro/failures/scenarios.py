"""The Table 1 scenario library.

Each scenario couples a failure class with its fleet frequency (Table 1)
and the injector method that produces it.
"""


class Scenario:
    """One failure scenario."""

    def __init__(self, name, frequency, inject, target_kind):
        self.name = name
        self.frequency = frequency
        self.inject = inject  # fn(injector, pair_or_machine) -> Injection
        self.target_kind = target_kind  # "pair" | "machine"

    def __repr__(self):
        return f"<Scenario {self.name} ({self.frequency:.0%})>"


SCENARIOS = [
    Scenario(
        "application",
        0.03,
        lambda injector, pair: injector.application_failure(pair),
        "pair",
    ),
    Scenario(
        "container",
        0.13,
        lambda injector, pair: injector.container_failure(pair),
        "pair",
    ),
    Scenario(
        "host_machine",
        0.19,
        lambda injector, machine: injector.host_machine_failure(machine),
        "machine",
    ),
    Scenario(
        "host_network",
        0.65,
        lambda injector, machine: injector.host_network_failure(machine),
        "machine",
    ),
]


def scenario(name):
    for entry in SCENARIOS:
        if entry.name == name:
            return entry
    raise KeyError(name)
