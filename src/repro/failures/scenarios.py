"""The failure scenario library.

Each scenario couples a failure class with its fleet frequency (Table 1
where the paper reports one), the injector method that produces it, and
a severity class the chaos engine uses when composing schedules:

- ``hard`` scenarios destroy state and trigger a migration; the chaos
  generator spaces them apart so each recovery can complete;
- ``soft`` scenarios (jitter, database blips, agent death) must be
  survived in place with no migration and no NSR impact, so the
  generator overlaps them freely — including inside recovery windows.
"""


class Scenario:
    """One failure scenario."""

    def __init__(self, name, frequency, inject, target_kind, severity="hard"):
        self.name = name
        self.frequency = frequency
        self.inject = inject  # fn(injector, target) -> Injection
        self.target_kind = target_kind  # "pair" | "machine" | "system"
        self.severity = severity  # "hard" | "soft"

    def __repr__(self):
        return f"<Scenario {self.name} ({self.frequency:.0%}, {self.severity})>"


SCENARIOS = [
    # -- Table 1 -----------------------------------------------------------
    Scenario(
        "application",
        0.03,
        lambda injector, pair: injector.application_failure(pair),
        "pair",
    ),
    Scenario(
        "container",
        0.13,
        lambda injector, pair: injector.container_failure(pair),
        "pair",
    ),
    Scenario(
        "host_machine",
        0.19,
        lambda injector, machine: injector.host_machine_failure(machine),
        "machine",
    ),
    Scenario(
        "host_network",
        0.65,
        lambda injector, machine: injector.host_network_failure(machine),
        "machine",
    ),
    # -- beyond Table 1 ----------------------------------------------------
    Scenario(
        "container_network",
        0.0,
        lambda injector, pair: injector.container_network_failure(pair),
        "pair",
    ),
    Scenario(
        "transient_network",
        0.0,
        lambda injector, machine: injector.transient_host_network_failure(
            machine, 1.0
        ),
        "machine",
        severity="soft",
    ),
    Scenario(
        "database_blip",
        0.0,
        lambda injector, _target: injector.transient_database_failure(0.8),
        "system",
        severity="soft",
    ),
    Scenario(
        "agent",
        0.0,
        lambda injector, _target: injector.agent_failure(),
        "system",
        severity="soft",
    ),
]


def scenario(name):
    for entry in SCENARIOS:
        if entry.name == name:
            return entry
    raise KeyError(name)


def scenarios_by_severity(severity):
    return [entry for entry in SCENARIOS if entry.severity == severity]
