"""The failure injector.

Drives the ground-truth failure levers on a
:class:`~repro.core.system.TensorSystem` and records injection times so
benchmarks can compute detection latency (detected_at - injected_at).
"""

#: Which injection kinds can produce a controller record of each
#: ``MigrationRecord.failure_kind``.  Database blips and agent death
#: never produce records and must never be mistaken for the ground truth
#: of one; transient network jitter only produces a (machine) record
#: when it outlives the confirmation timer.
RECORD_KIND_COMPAT = {
    "application": ("application",),
    "container": ("container",),
    "container_network": ("container_network",),
    "machine": ("host_machine", "host_network", "transient_network"),
}


class Injection:
    """One injected failure (ground truth)."""

    def __init__(self, kind, target, injected_at):
        self.kind = kind
        self.target = target
        self.injected_at = injected_at

    def __repr__(self):
        return f"<Injection {self.kind} {self.target} @{self.injected_at:.3f}>"


class FailureInjector:
    """Injects the paper's failure classes into a running system."""

    def __init__(self, system):
        self.system = system
        self.engine = system.engine
        self.injections = []

    def _record(self, kind, target):
        injection = Injection(kind, target, self.engine.now)
        self.injections.append(injection)
        return injection

    def stamp_records(self):
        """Fill ground-truth ``failed_at`` into the controller's records.

        Call after the simulation settles so Table 1 detection latencies
        are measured from the true failure instant.  Matching is by
        failure-kind compatibility (:data:`RECORD_KIND_COMPAT`), and each
        injection is claimed by at most one record: under overlapping
        chaos schedules a container record must not be stamped with the
        time of an unrelated transient-network blip that happened to land
        closer to the detection, and two records from repeated injections
        on the same target each get their own injection rather than both
        getting the latest one (the double-count this used to produce).
        """
        claimed = set()
        for record in sorted(
            self.records_pending_stamp(), key=lambda r: r.detected_at
        ):
            compatible = RECORD_KIND_COMPAT.get(record.failure_kind, ())
            candidates = [
                injection
                for injection in self.injections
                if injection.kind in compatible
                and injection.injected_at <= record.detected_at
            ]
            if not candidates:
                continue
            unclaimed = [c for c in candidates if id(c) not in claimed]
            # Earliest unclaimed compatible injection: the record's ground
            # truth is when the failure it recovered from began.  When
            # every compatible injection is already claimed (a re-detected
            # failure), fall back to the latest one rather than nothing.
            chosen = unclaimed[0] if unclaimed else candidates[-1]
            claimed.add(id(chosen))
            record.failed_at = chosen.injected_at

    def records_pending_stamp(self):
        return [
            record
            for record in self.system.controller.records
            if record.failed_at is None and record.detected_at is not None
        ]

    # -- the four Table 1 scenarios -----------------------------------------

    def application_failure(self, pair):
        """E1 (3% frequency): the BGP process dies."""
        injection = self._record("application", pair.name)
        pair.inject_application_failure()
        return injection

    def container_failure(self, pair):
        """E2 (13%): the container dies."""
        injection = self._record("container", pair.name)
        pair.inject_container_failure()
        return injection

    def host_machine_failure(self, machine):
        """E3 (19%): the host machine dies."""
        injection = self._record("host_machine", machine.name)
        machine.fail()
        return injection

    def host_network_failure(self, machine):
        """E5 (65%): the host machine's NIC dies; machine keeps running."""
        injection = self._record("host_network", machine.name)
        machine.fail_network()
        return injection

    # -- additional scenarios -------------------------------------------------

    def container_network_failure(self, pair):
        """E4: the container's virtual network dies; processes live on."""
        injection = self._record("container_network", pair.name)
        pair.inject_container_network_failure()
        return injection

    def transient_host_network_failure(self, machine, duration):
        """Network jitter: NIC down for ``duration`` then back (§3.3.3:
        must NOT trigger migration when shorter than the 3 s timer)."""
        injection = self._record("transient_network", machine.name)
        machine.fail_network()
        self.engine.schedule(duration, machine.recover_network)
        return injection

    def database_failure(self):
        """The KV store dies (multi-point scenarios are out of scope for
        NSR, but the ablations exercise the fail-safe: ACKs stay held)."""
        injection = self._record("database", "db")
        self.system.db.fail()
        return injection

    def transient_database_failure(self, duration):
        """Database blip: the KV store is unavailable for ``duration``.

        While it is down, held ACKs stay held (the fail-safe direction)
        and write batches retry; a blip shorter than the retry budget
        (``WRITE_RETRIES`` x the client RPC timeout) commits everything
        once the store returns, so NSR state is never lost.

        The blip is deliberately shorter than the failover monitor's
        confirmation window, so it recovers in place.  The server object
        is captured now: were the recovery scheduled against
        ``system.db`` (a property), a failover landing mid-blip would
        aim it at the *promoted* primary instead of the blipped one.
        """
        injection = self._record("database", "db")
        server = self.system.db
        server.fail()
        self.engine.schedule(duration, server.recover)
        return injection

    def database_failover(self):
        """Permanently kill the KV primary (§4.1 single-point database
        failure).  No scheduled recovery and no test-side promotion: the
        controller's monitor must detect the death, promote the replica
        under the next epoch and repoint every client — ``permanent=True``
        keeps an overlapping blip's recovery from resurrecting it."""
        injection = self._record("database_failover", "db")
        self.system.db_cluster.fail_primary(permanent=True)
        return injection

    def agent_failure(self):
        """Agent death — must not affect normal operation (§3.3.2)."""
        injection = self._record("agent", "agent")
        self.system.agent.fail()
        return injection

    # -- controller-plane scenarios (DESIGN.md §15) ---------------------------

    def backup_container_failure(self, pair):
        """Kill the *standby* container: the pair loses its insurance.

        The controller must notice (backup-degraded) and re-provision a
        standby — before the panel refactor this death was silently
        dropped and the next primary failure migrated onto a corpse.
        """
        injection = self._record("backup_container", pair.name)
        pair.standby_container.fail()
        return injection

    def controller_replica_crash(self, index, reboot_after=None):
        """Crash one controller-panel replica; optionally reboot it."""
        injection = self._record("controller_replica", f"replica{index}")
        panel = self.system.controller
        panel.crash_replica(index)
        if reboot_after is not None:
            self.engine.schedule(reboot_after, panel.reboot_replica, index)
        return injection

    def controller_partition(self, index, machine_name, duration=None):
        """Partition one panel replica from one machine (both the real
        gRPC path and the modeled direct feeds)."""
        injection = self._record(
            "controller_partition", f"replica{index}:{machine_name}"
        )
        panel = self.system.controller
        replica_host = panel.replicas[index].host
        machine_host = self.system.machines[machine_name].host
        self.system.network.partition(replica_host, machine_host)
        panel.set_partitioned(index, machine_name, True)
        if duration is not None:
            self.engine.schedule(
                duration, self._heal_controller_partition, index, machine_name
            )
        return injection

    def _heal_controller_partition(self, index, machine_name):
        panel = self.system.controller
        replica_host = panel.replicas[index].host
        machine_host = self.system.machines[machine_name].host
        self.system.network.heal_partition(replica_host, machine_host)
        panel.set_partitioned(index, machine_name, False)

    def lying_monitor(self, index, mode="accuse_container", duration=None):
        """Byzantine replica: fabricates verdicts against healthy targets
        (and suppresses its honest pipeline) until ``duration`` expires."""
        injection = self._record("lying_monitor", f"replica{index}:{mode}")
        panel = self.system.controller
        panel.set_corruption(index, mode)
        if duration is not None:
            self.engine.schedule(duration, panel.set_corruption, index, None)
        return injection
