"""Continuous NSR invariant oracles (DESIGN.md §9).

The existing tests assert TENSOR's claims at hand-picked settle points;
the oracle suite checks them *while the simulation runs* so a violation
is caught at the instant it happens, under any schedule the chaos engine
composes.  The suite is pure observation: it never mutates the system,
so running it cannot change what a seed reproduces.

Oracles (names are stable; repro scripts and docs reference them):

- ``ack_durability`` — no pure TCP ACK leaves the gateway's service
  address acknowledging bytes the database does not yet cover (session
  watermark, stored incoming messages, or the replicated partial tail).
  This is the §3.1.1 invariant; disabling delayed ACKs trips it.
- ``session_continuity`` — once established, a remote session is at
  every step either ESTABLISHED or held by graceful restart.
- ``zero_downtime`` — the cumulative time the continuity predicate is
  false must stay zero (the paper's link-downtime metric).
- ``ack_release_liveness`` — held ACKs must drain: a non-empty hold
  queue persisting beyond the replication+retry budget is a deadlock.
- ``lock_liveness`` — per-connection database locks must drain the same
  way (a stuck lock starves the keepalive thread's writes).
- ``exactly_once_apply`` — the active speaker never applies the same
  stream position twice (``duplicate_applies`` stays zero).
- ``fencing`` — only machines that suffered a machine-level injection
  may be fenced, and fencing must never block recovery silently.
- ``wrong_failover`` — no accepted failure verdict (and no database
  promotion) may target a node that suffered no matching injected
  failure: the controller must never fence, migrate or promote against
  a healthy target, even when a controller replica crashes, partitions
  or lies (DESIGN.md §15).
- ``convergence`` — at settle points, the gateway's per-VRF Loc-RIB
  equals the union of the live originated sets the workload model
  tracks, and (shared-VRF topologies) every remote sees every other
  remote's live set.
- ``bfd_continuity`` — at settle points every remote BFD session is UP
  (skipped when the schedule kills the agent: the relay dies with it).
- ``storage_bound`` — message records stay within the §3.1.2 64 KB
  per-connection bound at settle points.
- ``phase_latency`` — (traced runs only, DESIGN.md §10) re-derives the
  delayed-ACK invariant from the causal trace at settle points: every
  ``ack_release`` span begins at or after its update's ``replicate``
  span ends, and every held ACK's ``nfq.hold`` span outlives the
  replication write that released it.
"""

from repro.bfd.packet import BfdState

#: Held ACKs / locks may legitimately persist for a database blip plus
#: the write-retry budget (client timeout x WRITE_RETRIES); anything
#: longer is a liveness failure.
LIVENESS_STREAK_LIMIT = 6.0

#: Per-connection storage bound (§3.1.2).
STORAGE_BOUND_BYTES = 65536

#: How long after a transient blip *ends* its lingering consequences may
#: still legitimately surface as failure verdicts: the detector's
#: recovery sweep can classify a container whose probes lag the heal
#: (PR 8), and those probes take heartbeats+timeouts to re-converge.
WRONG_FAILOVER_GRACE = 8.0


class Violation:
    """One oracle violation, timestamped with the virtual instant."""

    def __init__(self, time, oracle, detail):
        self.time = time
        self.oracle = oracle
        self.detail = detail

    def __repr__(self):
        return f"<Violation {self.oracle} @{self.time:.3f}: {self.detail}>"


class OracleSuite:
    """Observes one pair + its remotes; call :meth:`check` every step.

    The workload model (which prefixes each remote currently originates)
    is fed by the driver via :meth:`note_originate` / :meth:`note_withdraw`
    — the oracle RIB is *derived from intent*, never read back from the
    system under test.
    """

    def __init__(self, system, pair, remotes, settle_grace=4.0,
                 check_bfd=True, stop_on_violation=True):
        self.system = system
        self.pair = pair
        self.remotes = list(remotes)  # [(RemotePeerAs, remote session)]
        self.settle_grace = settle_grace
        self.check_bfd = check_bfd
        self.stop_on_violation = stop_on_violation
        self.violations = []
        # Coverage signal (DESIGN.md §13): which oracles actually judged
        # meaningful state this run — not merely "had nothing to observe".
        # An oracle that trips is always exercised; an exercised-but-green
        # oracle is a different behaviour than one that never engaged.
        self.exercised = set()
        self.allowed_fences = set()
        #: ground-truth injections (wrong_failover's justification base)
        self._injected_truth = []
        self._wf_cursor = 0  # controller events judged so far
        self.downtime = 0.0
        # workload model: per remote, {prefix_str: True} of live originations
        self.live = [dict() for _ in self.remotes]
        self.vrfs = [session.config.vrf_name for _r, session in self.remotes]
        self._armed_at = None
        self._last_activity = 0.0
        self._last_busy = 0.0
        self._seen_established = [False] * len(self.remotes)
        self._down_since = [None] * len(self.remotes)
        self._held_since = None
        self._locked_since = None
        self._watched_pipeline = None
        self._last_settle_check = -1e9
        self._tap_installed = False
        # Trace-driven oracle (DESIGN.md §10): present only when the
        # system runs under a Tracer.
        self.trace_store = getattr(system, "trace_store", None)
        self._reported_phase_violations = 0

    # ------------------------------------------------------------------
    # driver-facing model updates
    # ------------------------------------------------------------------

    def arm(self):
        """Start judging.  Call once the fixture has converged; installs
        the wire tap for the ACK oracle."""
        self._armed_at = self.system.engine.now
        self._last_activity = self._armed_at
        if not self._tap_installed:
            self.system.network.tap(self._on_packet)
            self._tap_installed = True

    def note_originate(self, remote_index, prefixes):
        live = self.live[remote_index]
        for prefix in prefixes:
            live[str(prefix)] = True
        self.note_activity()

    def note_withdraw(self, remote_index, prefixes):
        live = self.live[remote_index]
        for prefix in prefixes:
            live.pop(str(prefix), None)
        self.note_activity()

    def note_activity(self):
        self._last_activity = self.system.engine.now

    def note_injection(self, kind, target_name=None, duration=0.0,
                       container_name=None, pair_name=None):
        """The driver reports each injection as it fires, so the fencing
        oracle knows which fences are legitimate and the wrong_failover
        oracle knows which verdicts have a real failure behind them."""
        self.note_activity()
        self._injected_truth.append({
            "kind": kind,
            "target": target_name,
            "duration": duration or 0.0,
            "container": container_name,
            "pair": pair_name,
            "at": self.system.engine.now,
        })
        if kind in ("host_machine", "host_network"):
            self.allowed_fences.add(target_name)
        if kind == "transient_network" and duration >= 3.0:
            # outlives the confirmation timer: a migration (and fence)
            # is the correct response
            self.allowed_fences.add(target_name)
        if kind == "agent":
            self.check_bfd = False  # the BFD relay dies with the agent

    def _transport_quiet(self):
        """True when no BGP data is still in flight anywhere.

        Convergence is only judged at quiescence, and "no recent workload
        event" is not quiescence: an UPDATE can sit in a speaker's MRAI
        buffer, and a TCP segment sent into a crashed gateway is
        retransmitted with exponential backoff — legitimately arriving
        tens of seconds after the workload event that produced it.
        """
        speakers = [remote.speaker for remote, _session in self.remotes]
        gateway = self.pair.speaker
        if gateway is not None:
            speakers.append(gateway)
        for speaker in speakers:
            for pending in speaker._pending_adverts.values():
                if pending:
                    return False
            for session in speaker.sessions.values():
                conn = getattr(session, "conn", None)
                if conn is not None and conn.snd_una < conn.snd_nxt:
                    return False
        return True

    # ------------------------------------------------------------------
    # the wire tap (ack_durability)
    # ------------------------------------------------------------------

    def _on_packet(self, packet, delivered):
        if self._armed_at is None or packet.protocol != "tcp":
            return
        if packet.src != self.pair.service_addr:
            return
        seg = packet.payload
        if seg.payload or seg.syn or seg.rst or seg.fin or not seg.has_ack:
            return
        store = self.system.db.store
        meta = None
        for _key, value in store.scan(f"tensor:{self.pair.name}:sess:"):
            if (
                value["local_port"] == packet.sport
                and value["remote_addr"] == packet.dst
                and value["remote_port"] == packet.dport
            ):
                meta = value
                break
        if meta is None:
            return  # pre-session ACKs (handshake) carry no BGP data
        self.exercised.add("ack_durability")
        conn_id = (
            f"{meta['vrf']}|{meta['local_addr']}:{meta['local_port']}"
            f"|{meta['remote_addr']}:{meta['remote_port']}"
        )
        base = meta["irs"] + 1
        covered = 0
        status = store.get(f"tensor:{self.pair.name}:tcp:{conn_id}")
        if status is not None:
            covered = status["in_pos"]
        for _key, value in store.scan(
            f"tensor:{self.pair.name}:msg:{conn_id}:i:"
        ):
            covered = max(covered, value["in_pos"])
        partial = store.get(f"tensor:{self.pair.name}:part:{conn_id}")
        if partial is not None:
            covered = max(covered, partial["upto"])
        if seg.ack > base + covered:
            self._violate(
                "ack_durability",
                f"ACK {seg.ack} escaped on {conn_id} but the database only"
                f" covers {base + covered} (irs+1={base}, covered={covered})",
            )

    # ------------------------------------------------------------------
    # the per-step check
    # ------------------------------------------------------------------

    def check(self, now):
        """Run every continuous oracle; settle-point oracles fire when the
        system has been quiet for ``settle_grace``.  Returns the list of
        all violations so far (the driver stops on the first)."""
        if self._armed_at is None:
            return self.violations
        self._check_continuity(now)
        self._check_liveness(now)
        self._check_exactly_once(now)
        self._check_fencing(now)
        self._check_wrong_failover(now)
        if (
            self.system.controller._recovering
            or self.system.db.failed
            or not self._transport_quiet()
        ):
            self._last_busy = now
        settled_since = max(self._last_activity, self._last_busy)
        if (
            now - settled_since >= self.settle_grace
            and now - self._last_settle_check >= 1.0
        ):
            self._last_settle_check = now
            self._check_convergence(now)
            self._check_bfd(now)
            self._check_storage(now)
            self._check_phase_latency(now)
        return self.violations

    def _check_continuity(self, now):
        for index, (_remote, session) in enumerate(self.remotes):
            up = session.established or session.gr_timer.armed
            if up:
                self._seen_established[index] = True
                self.exercised.add("session_continuity")
                if self._down_since[index] is not None:
                    self.downtime += now - self._down_since[index]
                    self._down_since[index] = None
                continue
            if not self._seen_established[index]:
                continue  # still in initial bring-up
            if self._down_since[index] is None:
                self._down_since[index] = now
            self._violate(
                "session_continuity",
                f"remote{index} session left ESTABLISHED (no GR hold)",
            )
            self._violate(
                "zero_downtime",
                f"link downtime began at {now:.3f} on remote{index}",
            )

    def _check_liveness(self, now):
        speaker = self.pair.speaker
        held = speaker.tcp_queue.held_count() if speaker is not None else 0
        if held:
            self.exercised.add("ack_release_liveness")
            if self._held_since is None:
                self._held_since = now
            elif now - self._held_since > LIVENESS_STREAK_LIMIT:
                self._violate(
                    "ack_release_liveness",
                    f"{held} ACK(s) held continuously for"
                    f" {now - self._held_since:.2f}s",
                )
        else:
            self._held_since = None
        pipeline = self.pair.pipeline
        if pipeline is not self._watched_pipeline:
            # Migration swapped in a fresh process: the dead process's
            # stuck locks are moot (its records are re-read from the
            # database), so the streak restarts with the new pipeline.
            self._watched_pipeline = pipeline
            self._locked_since = None
        if self.system.controller._recovering:
            self._locked_since = None
            return
        locked = len(pipeline.locks.held_keys()) if pipeline is not None else 0
        if locked:
            self.exercised.add("lock_liveness")
            if self._locked_since is None:
                self._locked_since = now
            elif now - self._locked_since > LIVENESS_STREAK_LIMIT:
                self._violate(
                    "lock_liveness",
                    f"{locked} connection lock(s) held continuously for"
                    f" {now - self._locked_since:.2f}s",
                )
        else:
            self._locked_since = None

    def _check_exactly_once(self, _now):
        speaker = self.pair.speaker
        duplicates = getattr(speaker, "duplicate_applies", 0)
        if duplicates:
            self._violate(
                "exactly_once_apply",
                f"active speaker applied {duplicates} duplicate position(s)",
            )

    def _check_fencing(self, _now):
        fenced = set(self.system.fencing.fenced_machines())
        if fenced:
            self.exercised.add("fencing")
        stale = fenced - self.allowed_fences
        if stale:
            self._violate(
                "fencing",
                f"machine(s) fenced without a machine-level failure: "
                f"{sorted(stale)}",
            )

    # justification bases per accepted-verdict class:
    _WF_MACHINE_TRUTHS = ("host_machine", "host_network", "transient_network")
    _WF_CONTAINER_TRUTHS = (
        "application", "container", "container_network", "backup_container",
        "host_machine", "host_network", "transient_network",
    )
    _WF_DB_TRUTHS = ("database", "database_failover")

    def _truths_in_window(self, kinds, t, target=None):
        """Injected truths of ``kinds`` whose consequences may still
        legitimately surface at time ``t`` (transients get a grace
        window past their heal; everything else persists)."""
        matches = []
        for truth in self._injected_truth:
            if truth["kind"] not in kinds or truth["at"] > t:
                continue
            if target is not None and truth["target"] != target:
                continue
            if truth["duration"]:
                if (truth["kind"] == "transient_network"
                        and truth["duration"] >= 3.0):
                    pass  # outlives the confirm timer: a real migration
                elif t > truth["at"] + truth["duration"] + WRONG_FAILOVER_GRACE:
                    continue
            matches.append(truth)
        return matches

    def _check_wrong_failover(self, _now):
        """No accepted verdict / promotion may target a healthy node.

        Judges the controller's event log incrementally: every accepted
        ``failure-report`` and every ``database-failover`` must have a
        matching injected ground truth.  A fabricated verdict that a
        lying, crashed or partitioned controller replica pushed past the
        quorum would show up here as an orphan.
        """
        events = self.system.controller.events
        pair_prefix = f"{self.pair.name}-"
        while self._wf_cursor < len(events):
            t, label, payload = events[self._wf_cursor]
            self._wf_cursor += 1
            if label == "failure-report":
                report = payload
                if report.kind == "machine_unreachable":
                    self.exercised.add("wrong_failover")
                    justified = self._truths_in_window(
                        self._WF_MACHINE_TRUTHS, t, target=report.target_name
                    )
                else:
                    # container-level verdicts: judge only this suite's
                    # pair (its containers share the pair-name prefix);
                    # other pairs' truths live in their own suites
                    if not report.target_name.startswith(pair_prefix):
                        continue
                    self.exercised.add("wrong_failover")
                    justified = self._truths_in_window(
                        self._WF_CONTAINER_TRUTHS, t
                    )
                if not justified:
                    self._violate(
                        "wrong_failover",
                        f"accepted {report.kind} verdict on"
                        f" {report.target_name} at {t:.3f} with no matching"
                        " injected failure",
                    )
            elif label == "database-failover":
                self.exercised.add("wrong_failover")
                if not self._truths_in_window(self._WF_DB_TRUTHS, t):
                    self._violate(
                        "wrong_failover",
                        f"database promotion at {t:.3f} with no injected"
                        " database failure",
                    )

    def _check_convergence(self, _now):
        if any(self.live):
            self.exercised.add("convergence")
        expected_by_vrf = {}
        for index, vrf_name in enumerate(self.vrfs):
            expected_by_vrf.setdefault(vrf_name, set()).update(self.live[index])
        for vrf_name, expected in expected_by_vrf.items():
            vrf = self.pair.speaker.vrfs.get(vrf_name)
            actual = set() if vrf is None else {
                str(prefix) for prefix in vrf.loc_rib.prefixes()
            }
            if actual != expected:
                missing = sorted(expected - actual)[:3]
                extra = sorted(actual - expected)[:3]
                self._violate(
                    "convergence",
                    f"gateway Loc-RIB[{vrf_name}] has {len(actual)} prefixes,"
                    f" oracle RIB has {len(expected)}"
                    f" (missing={missing} extra={extra})",
                )
        # Shared-VRF cross-peer visibility: each remote must hold every
        # other remote's live set (its own is held locally by construction).
        for index, (remote, session) in enumerate(self.remotes):
            vrf_name = self.vrfs[index]
            others = set()
            for other_index, other_vrf in enumerate(self.vrfs):
                if other_index != index and other_vrf == vrf_name:
                    others.update(self.live[other_index])
            if not others:
                continue
            remote_vrf = remote.speaker.vrfs.get(session.config.vrf_name)
            actual = set() if remote_vrf is None else {
                str(prefix) for prefix in remote_vrf.loc_rib.prefixes()
            }
            missing = others - actual
            if missing:
                self._violate(
                    "convergence",
                    f"remote{index} is missing {len(missing)} cross-peer"
                    f" prefix(es), e.g. {sorted(missing)[:3]}",
                )

    def _check_bfd(self, _now):
        if not self.check_bfd:
            return
        for index, (remote, _session) in enumerate(self.remotes):
            for bfd_session in remote.bfd.sessions.values():
                self.exercised.add("bfd_continuity")
                if bfd_session.state is not BfdState.UP:
                    self._violate(
                        "bfd_continuity",
                        f"remote{index} BFD settled {bfd_session.state.name},"
                        " not UP",
                    )

    def _check_storage(self, _now):
        speaker = self.pair.speaker
        if speaker is None or not hasattr(speaker, "storage_footprint"):
            return
        bound = STORAGE_BOUND_BYTES * max(1, len(self.remotes))
        self.exercised.add("storage_bound")
        footprint = speaker.storage_footprint(self.system.db.store)
        if footprint >= bound:
            self._violate(
                "storage_bound",
                f"{footprint} bytes of message records (bound {bound})",
            )

    def _check_phase_latency(self, _now):
        """Trace-driven §3.1.1 re-check: no ACK-release span may begin
        before its update's replication span closed, and no held ACK may
        escape the netfilter queue before the replication write that
        released it was durable.  Runs at settle points only (it scans
        the whole trace store)."""
        store = self.trace_store
        if store is None:
            return
        self.exercised.add("phase_latency")
        problems = store.delayed_ack_violations()
        for problem in problems[self._reported_phase_violations:]:
            self._violate("phase_latency", problem)
        self._reported_phase_violations = len(problems)

    # ------------------------------------------------------------------

    def _violate(self, oracle, detail):
        self.exercised.add(oracle)
        violation = Violation(self.system.engine.now, oracle, detail)
        self.violations.append(violation)
        if self.stop_on_violation:
            self.system.engine.stop()

    def verdict_bitmap(self):
        """Stable ``(oracle, tripped)`` pairs over every oracle that
        engaged this run — the oracle axis of the fuzzer's coverage key
        (DESIGN.md §13).  Pure function of the run's observations."""
        tripped = {violation.oracle for violation in self.violations}
        names = sorted(tripped | self.exercised)
        return tuple((name, name in tripped) for name in names)

    @property
    def first_violation(self):
        return self.violations[0] if self.violations else None

    def summary(self):
        if not self.violations:
            return "all oracles passed"
        head = self.violations[0]
        return (
            f"{len(self.violations)} violation(s); first: {head.oracle}"
            f" @{head.time:.3f} — {head.detail}"
        )
