"""Chaos schedule engine: randomized multi-failure NSR testing.

TENSOR's claim is that a failure at *any* instant — including failures
overlapping an in-flight recovery — loses no routing state and never
flaps the remote session.  This module searches that claim's input space
automatically:

1. :func:`generate_schedule` derives a :class:`ChaosSchedule` from a
   seed: 2–5 overlapping injections from the scenario registry at
   randomized instants, under a randomized advertise/withdraw workload
   across 1–3 neighbors.  Generation is a pure function of the seed.
2. :func:`run_schedule` builds a fresh :class:`TensorSystem`, replays
   the schedule, and checks the :class:`~repro.failures.oracles.OracleSuite`
   after every 50 ms engine slice.  Running is a pure function of
   ``(schedule, hold_acks)``, so every violation replays exactly.
3. On violation, :func:`shrink_schedule` minimizes the schedule (drop
   injections, drop/halve workload bursts, coarsen instants, trim the
   horizon) and :func:`write_repro_script` emits a self-contained
   ``chaos_repro_<seed>.py`` that re-runs the shrunk schedule.

Schedule composition rules keep every generated run *recoverable by
design* (violations then always indicate real bugs, not impossible
topologies): hard injections are spaced wider than a full recovery, at
most one machine-level failure fires per schedule (fencing removes the
machine until a manual reset), transient network blips stay under the
3 s confirmation timer, and database blips stay under the write-retry
budget.  Soft injections may land anywhere — including deliberately
inside the recovery window of a hard one.
"""

import argparse
import json
import sys

from repro.core.system import PeerNeighborSpec, TensorSystem
from repro.failures.injector import FailureInjector
from repro.failures.oracles import OracleSuite, Violation
from repro.sim.rand import DeterministicRandom
from repro.workloads.topology import build_remote_peer
from repro.workloads.updates import RouteGenerator

#: Hard injections are spaced at least this far apart so each recovery
#: (detection + migration + TCP repair + route resync) completes.
HARD_SPACING = (18.0, 25.0)

#: Settle tail appended after the last scheduled event.
SETTLE_TAIL = 30.0

#: The oracle-check granularity (virtual seconds).
CHECK_QUANTUM = 0.05

#: Seeds run by tier-1 (`make test`) as the fixed regression corpus.
CORPUS_SEEDS = (0, 1, 2, 3, 4, 5)

#: Seeds run with the causal tracer enabled (DESIGN.md §10).  These
#: exercise the phase-latency oracle: at every settle point the suite
#: checks that no delayed ACK escaped before its replication span
#: closed, straight from the trace store.
TRACED_CORPUS_SEEDS = (6, 7, 8, 9)

#: Seeds run with a permanent KV-primary kill spliced in (DESIGN.md
#: §12): the controller's failover monitor must promote the replica and
#: drain held ACKs with no test-side intervention.
DB_FAILOVER_CORPUS_SEEDS = (10, 11, 12)

#: Seeds run with controller-plane chaos spliced in (DESIGN.md §15):
#: the 3-replica controller panel takes replica crashes, controller<->
#: machine partitions and lying monitors while the data-plane schedule
#: runs, and the ``wrong_failover`` oracle asserts no fence/promote
#: ever targeted a healthy node.  The seeds are picked so the corpus
#: covers every controller-plane event kind and both lying modes.
CONTROLLER_CORPUS_SEEDS = (13, 14, 15, 16, 17, 43)


class ChaosSchedule:
    """One self-contained chaos run: topology knobs + timed events.

    All event times are relative to the oracle arming instant (the end
    of initial convergence).  ``injections`` entries::

        {"at": 12.5, "scenario": "container", "target": "active"|"standby"|None,
         "duration": 1.2 | None}

    ``workload`` entries::

        {"at": 3.0, "remote": 0, "action": "advertise"|"withdraw",
         "base": "10.0.0.0", "length": 24, "count": 120}
    """

    def __init__(self, seed, neighbors=1, shared_vrf=False, initial_routes=100,
                 injections=(), workload=(), duration=60.0,
                 controller_replicas=1):
        self.seed = seed
        self.neighbors = neighbors
        self.shared_vrf = shared_vrf
        self.initial_routes = initial_routes
        self.injections = [dict(event) for event in injections]
        self.workload = [dict(event) for event in workload]
        self.duration = duration
        self.controller_replicas = controller_replicas

    def to_dict(self):
        return {
            "seed": self.seed,
            "neighbors": self.neighbors,
            "shared_vrf": self.shared_vrf,
            "initial_routes": self.initial_routes,
            "injections": [dict(event) for event in self.injections],
            "workload": [dict(event) for event in self.workload],
            "duration": self.duration,
            "controller_replicas": self.controller_replicas,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            data["seed"],
            neighbors=data["neighbors"],
            shared_vrf=data["shared_vrf"],
            initial_routes=data["initial_routes"],
            injections=data["injections"],
            workload=data["workload"],
            duration=data["duration"],
            controller_replicas=data.get("controller_replicas", 1),
        )

    def copy(self):
        return ChaosSchedule.from_dict(self.to_dict())

    def __repr__(self):
        return (
            f"<ChaosSchedule seed={self.seed} neighbors={self.neighbors}"
            f" injections={len(self.injections)} bursts={len(self.workload)}"
            f" duration={self.duration:.1f}s>"
        )


# ----------------------------------------------------------------------
# generation
# ----------------------------------------------------------------------

def generate_schedule(seed, db_failover=False, controller_chaos=False):
    """Derive a schedule from ``seed`` (pure function, no simulation).

    ``db_failover`` splices one permanent KV-primary kill into the
    schedule, drawn from a *separate* named stream so the base schedule
    for the seed is unchanged — seed N with and without the flag differ
    only by the added injection.

    ``controller_chaos`` sizes the controller panel to 3 replicas and
    splices 1–2 controller-plane events (replica crash+reboot,
    controller<->machine partition, lying monitor, standby-container
    kill) from another separate stream.  Events are sequential and
    non-overlapping: each fault heals before the next fires, so a
    3-replica panel always retains an honest quorum — any wrong
    failover is then a real bug, not an impossible fault load.
    """
    r = DeterministicRandom(seed).stream("schedule")
    neighbors = r.choice((1, 2, 2, 3))
    shared_vrf = neighbors > 1 and r.random() < 0.6
    initial_routes = r.choice((0, 100, 250))

    # -- hard injections: spaced so each recovery completes ---------------
    count = r.randint(2, 5)
    hard_count = max(1, min(r.randint(1, 3), count))
    soft_count = count - hard_count
    include_machine = r.random() < 0.5
    hard_kinds = [
        r.choice(("application", "container", "container_network"))
        for _ in range(hard_count)
    ]
    if include_machine:
        # At most one machine-level failure, and always the final hard
        # one: fencing leaves only one usable machine afterwards.
        hard_kinds[-1] = r.choice(("host_machine", "host_network"))
    injections = []
    at = r.uniform(3.0, 10.0)
    for kind in hard_kinds:
        injections.append({
            "at": round(at, 3),
            "scenario": kind,
            "target": "active",
            "duration": None,
        })
        at += r.uniform(*HARD_SPACING)
    last_hard = injections[-1]["at"]

    # -- soft injections: overlap anything, including recovery windows ----
    agent_used = False
    for _ in range(soft_count):
        kind = r.choice(("transient_network", "database_blip", "agent"))
        if kind == "agent" and agent_used:
            kind = "database_blip"
        agent_used = agent_used or kind == "agent"
        # The agent is the detection witness: a hard failure with the
        # agent already dead is undetectable (machine confirmation needs
        # the agent's IP SLA signal), which is a double fault outside the
        # paper's fault model.  Agent death therefore only lands once the
        # last hard injection has fired AND its 3-second confirmation
        # window has safely passed.
        earliest = last_hard + 6.0 if kind == "agent" else 1.0
        event = {
            "at": round(r.uniform(earliest, last_hard + 12.0), 3),
            "scenario": kind,
            "target": None,
            "duration": None,
        }
        if kind == "transient_network":
            event["target"] = r.choice(("active", "standby"))
            event["duration"] = round(r.uniform(0.3, 2.0), 3)
        elif kind == "database_blip":
            event["duration"] = round(r.uniform(0.4, 1.2), 3)
        injections.append(event)
    if db_failover:
        dbr = DeterministicRandom(seed).stream("db-failover")
        injections.append({
            "at": round(dbr.uniform(2.0, last_hard + 6.0), 3),
            "scenario": "database_failover",
            "target": None,
            "duration": None,
        })
    controller_replicas = 1
    if controller_chaos:
        controller_replicas = 3
        cr = DeterministicRandom(seed).stream("controller-chaos")
        at = cr.uniform(2.0, 8.0)
        for _ in range(cr.randint(1, 2)):
            kind = cr.choice((
                "controller_replica_crash", "controller_partition",
                "lying_monitor", "backup_container",
            ))
            event = {
                "at": round(at, 3), "scenario": kind,
                "target": None, "duration": None,
            }
            hold = 0.0
            if kind == "controller_replica_crash":
                event["target"] = cr.randrange(controller_replicas)
                event["duration"] = round(cr.uniform(4.0, 9.0), 3)
                hold = event["duration"]
            elif kind == "controller_partition":
                event["target"] = cr.randrange(controller_replicas)
                event["machine"] = cr.choice(("gw-1", "gw-2"))
                event["duration"] = round(cr.uniform(4.0, 9.0), 3)
                hold = event["duration"]
            elif kind == "lying_monitor":
                event["target"] = cr.randrange(controller_replicas)
                event["mode"] = cr.choice(("accuse_machine", "accuse_container"))
                event["duration"] = round(cr.uniform(5.0, 10.0), 3)
                hold = event["duration"]
            else:  # backup_container: kill the standby, panel must refresh
                event["target"] = "standby"
            injections.append(event)
            at += hold + cr.uniform(3.0, 6.0)
    injections.sort(key=lambda event: event["at"])

    # -- workload bursts ---------------------------------------------------
    burst_times = sorted(
        round(r.uniform(1.0, last_hard + 8.0), 3)
        for _ in range(r.randint(2, 5))
    )
    workload = []
    advertised = [[] for _ in range(neighbors)]  # live blocks per remote
    for at in burst_times:
        remote = r.randrange(neighbors)
        if advertised[remote] and r.random() < 0.35:
            block = advertised[remote].pop(r.randrange(len(advertised[remote])))
            workload.append({"at": at, "remote": remote, "action": "withdraw",
                             **block})
        else:
            index = sum(1 for event in workload if event["remote"] == remote)
            block = {
                # disjoint /24 blocks per (remote, burst): remotes get
                # distinct first octets, bursts distinct second octets
                "base": f"{10 + remote}.{(index * 8) % 248}.0.0",
                "length": 24,
                "count": r.choice((50, 120, 200)),
            }
            advertised[remote].append(block)
            workload.append({"at": at, "remote": remote, "action": "advertise",
                             **block})

    horizon = max(
        [event["at"] for event in injections]
        + [event["at"] for event in workload]
    )
    return ChaosSchedule(
        seed,
        neighbors=neighbors,
        shared_vrf=shared_vrf,
        initial_routes=initial_routes,
        injections=injections,
        workload=workload,
        duration=round(horizon + SETTLE_TAIL, 3),
        controller_replicas=controller_replicas,
    )


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------

class ChaosResult:
    """Outcome of one schedule run.

    ``completed`` distinguishes a run that covered its whole horizon
    (or halted *on purpose* at a violation) from one whose engine
    stalled early: a partial run has no oracle verdict for the tail it
    never executed, so "no violations" must not read as a pass.
    """

    def __init__(self, schedule, suite, system, events_executed,
                 completed=True):
        self.schedule = schedule
        self.suite = suite
        self.system = system
        self.events_executed = events_executed
        self.completed = completed

    @property
    def partial(self):
        return not self.completed

    @property
    def violations(self):
        return self.suite.violations

    @property
    def first_violation(self):
        return self.suite.first_violation

    def summary(self):
        return self.suite.summary()


class _WorkloadDriver:
    """Fires advertise/withdraw bursts and keeps the oracle model true.

    The oracle RIB is *intent*: the driver records what each remote was
    asked to originate, never what the system under test ended up with.
    """

    def __init__(self, remotes, suite, rand):
        self.remotes = remotes
        self.suite = suite
        self.gens = [
            RouteGenerator(
                rand.fork(f"workload:{index}"),
                64512 + index,
                next_hop=f"192.0.2.{index + 1}",
            )
            for index in range(len(remotes))
        ]

    def fire(self, event):
        index = event["remote"]
        remote, session = self.remotes[index]
        vrf_name = session.config.vrf_name
        gen = self.gens[index]
        if event["action"] == "advertise":
            routes = gen.routes(
                event["count"], base=event["base"], length=event["length"]
            )
            for prefix, attributes in routes:
                remote.speaker.originate(vrf_name, prefix, attributes)
            self.suite.note_originate(index, [p for p, _a in routes])
        else:
            prefixes = gen.prefixes(
                event["count"], base=event["base"], length=event["length"]
            )
            live = self.suite.live[index]
            withdrawn = [p for p in prefixes if str(p) in live]
            for prefix in withdrawn:
                remote.speaker.withdraw_originated(vrf_name, prefix)
            self.suite.note_withdraw(index, withdrawn)


def _build_system(schedule, hold_acks, tracing=False, legacy_controller=False):
    """A converged TensorSystem matching the schedule's topology knobs."""
    system = TensorSystem(
        seed=schedule.seed, hold_acks=hold_acks, tracing=tracing,
        controller_replicas=schedule.controller_replicas,
        legacy_controller=legacy_controller,
    )
    engine = system.engine
    m1 = system.add_machine("gw-1", "10.1.0.1")
    m2 = system.add_machine("gw-2", "10.2.0.1")
    vrf_of = (
        (lambda i: "v0") if schedule.shared_vrf else (lambda i: f"v{i}")
    )
    specs = [
        PeerNeighborSpec(
            f"192.0.2.{i + 1}", 64512 + i, vrf_name=vrf_of(i), mode="passive"
        )
        for i in range(schedule.neighbors)
    ]
    pair = system.create_pair(
        "pair0", m1, m2, service_addr="10.10.0.1", local_as=65001,
        router_id="10.10.0.1", neighbors=specs,
    )
    remotes = []
    for i in range(schedule.neighbors):
        remote = build_remote_peer(
            system, f"remote{i}", f"192.0.2.{i + 1}", 64512 + i,
            link_machines=[m1, m2],
        )
        session = remote.peer_with(
            "10.10.0.1", 65001, vrf_name=vrf_of(i), mode="active"
        )
        remotes.append((remote, session))
    pair.start()
    for remote, _session in remotes:
        remote.start()
    engine.advance(10.0)
    return system, pair, remotes


class _PreparedRun:
    """A built, converged, armed chaos run that has not advanced yet.

    Splits :func:`run_schedule` into *prepare* (build the system, preload
    routes, arm the oracles, schedule every injection and workload burst)
    and *advance* (:meth:`step_to`), so a schedule can be driven either
    in one shot (:func:`run_schedule`) or window-by-window as a closed
    shard under the parallel runtime (:func:`build_chaos_shard`) — the
    two drivers execute the identical event sequence.
    """

    def __init__(self, schedule, hold_acks=True, stop_on_violation=True,
                 tracing=False, legacy_controller=False):
        self.schedule = schedule
        rand = DeterministicRandom(schedule.seed)
        self.system, self.pair, self.remotes = _build_system(
            schedule, hold_acks, tracing, legacy_controller=legacy_controller
        )
        engine = self.system.engine
        self.suite = OracleSuite(
            self.system, self.pair, self.remotes,
            stop_on_violation=stop_on_violation,
        )
        self.driver = _WorkloadDriver(self.remotes, self.suite, rand)

        if schedule.initial_routes:
            for index, (remote, session) in enumerate(self.remotes):
                gen = self.driver.gens[index]
                routes = gen.routes(
                    schedule.initial_routes, base=f"{10 + index}.248.0.0"
                )
                remote.speaker.originate_many(
                    session.config.vrf_name, routes
                )
                remote.speaker.readvertise(session)
                self.suite.live[index].update(
                    {str(p): True for p, _a in routes}
                )
            engine.advance(5.0)
        self.suite.arm()

        self.injector = FailureInjector(self.system)
        for event in schedule.injections:
            engine.schedule(
                event["at"], _fire_injection,
                self.injector, self.system, self.pair, self.suite, event,
            )
        for event in schedule.workload:
            engine.schedule(event["at"], self.driver.fire, event)

        self.deadline = engine.now + schedule.duration
        self.executed = 0
        # run() resets the engine's stop flag on entry, so a violation
        # halt must stick across windows here, not in the engine
        self.halted = False
        self._finished = False

    @property
    def engine(self):
        return self.system.engine

    def step_to(self, until):
        """Advance to ``min(until, deadline)`` under continuous oracles.

        Returns events executed.  Once an oracle stops the run (or the
        deadline passes) further steps are no-ops.
        """
        engine = self.system.engine
        target = min(until, self.deadline)
        if self.halted or target <= engine.now:
            return 0
        executed = engine.run_stepped(
            target, self.suite.check, quantum=CHECK_QUANTUM
        )
        self.executed += executed
        if self.suite.stop_on_violation and self.suite.first_violation is not None:
            self.halted = True
        return executed

    def finish(self):
        """Post-run bookkeeping; idempotent.  Returns the ChaosResult."""
        if not self._finished:
            self._finished = True
            _check_record_bookkeeping(self.injector, self.suite)
        completed = (
            self.halted
            or self.system.engine.now + 1e-9 >= self.deadline
        )
        return ChaosResult(
            self.schedule, self.suite, self.system, self.executed,
            completed=completed,
        )


def run_schedule(schedule, hold_acks=True, stop_on_violation=True,
                 tracing=False, legacy_controller=False):
    """Replay ``schedule`` under continuous oracles.

    Pure function of ``(schedule, hold_acks, tracing)``: two calls
    return identical violations at identical virtual instants.  With
    ``tracing`` the system runs under a :class:`repro.trace.Tracer`
    and the suite additionally enforces the phase-latency oracle.
    ``legacy_controller`` swaps the panel-of-1 for the plain controller
    (the differential determinism test pins the two bit-identical).
    """
    prepared = _PreparedRun(
        schedule, hold_acks=hold_acks,
        stop_on_violation=stop_on_violation, tracing=tracing,
        legacy_controller=legacy_controller,
    )
    prepared.step_to(prepared.deadline)
    return prepared.finish()


def _fire_injection(injector, system, pair, suite, event):
    """Resolve the target *at fire time* (roles swap across migrations)."""
    kind = event["scenario"]
    if kind == "controller_replica_crash":
        index = event["target"]
        suite.note_injection(kind, target_name=f"replica{index}",
                             duration=event["duration"] or 0.0)
        injector.controller_replica_crash(index,
                                          reboot_after=event["duration"])
        return
    if kind == "controller_partition":
        index = event["target"]
        suite.note_injection(
            kind, target_name=f"replica{index}:{event['machine']}",
            duration=event["duration"] or 0.0,
        )
        injector.controller_partition(index, event["machine"],
                                      duration=event["duration"])
        return
    if kind == "lying_monitor":
        index = event["target"]
        suite.note_injection(kind, target_name=f"replica{index}:{event['mode']}",
                             duration=event["duration"] or 0.0)
        injector.lying_monitor(index, mode=event["mode"],
                               duration=event["duration"])
        return
    machine = (
        pair.standby_machine if event["target"] == "standby"
        else pair.active_machine
    )
    container_name = (
        pair.backup_container_name if kind == "backup_container"
        else pair.primary_container_name
    )
    suite.note_injection(
        kind,
        target_name=machine.name,
        duration=event["duration"] or 0.0,
        container_name=container_name,
        pair_name=pair.name,
    )
    if kind == "application":
        injector.application_failure(pair)
    elif kind == "container":
        injector.container_failure(pair)
    elif kind == "container_network":
        injector.container_network_failure(pair)
    elif kind == "backup_container":
        injector.backup_container_failure(pair)
    elif kind == "host_machine":
        injector.host_machine_failure(machine)
    elif kind == "host_network":
        injector.host_network_failure(machine)
    elif kind == "transient_network":
        injector.transient_host_network_failure(machine, event["duration"])
    elif kind == "database_blip":
        injector.transient_database_failure(event["duration"])
    elif kind == "database_failover":
        injector.database_failover()
    elif kind == "agent":
        injector.agent_failure()
    else:
        raise ValueError(f"unknown chaos scenario {kind!r}")


def _check_record_bookkeeping(injector, suite):
    """Post-run: stamping must give every completed record a ground
    truth that is not in the future of its detection."""
    injector.stamp_records()
    for record in injector.system.controller.completed_records():
        if record.failed_at is None:
            suite.violations.append(Violation(
                injector.engine.now, "record_bookkeeping",
                f"completed record {record!r} has no ground-truth failed_at",
            ))
        elif record.failed_at > record.detected_at:
            suite.violations.append(Violation(
                injector.engine.now, "record_bookkeeping",
                f"record {record!r} stamped after its own detection",
            ))


# ----------------------------------------------------------------------
# chaos schedules as parallel-runtime shards
# ----------------------------------------------------------------------

class ChaosShardProgram:
    """One chaos seed as a *closed* shard (no cross-shard links).

    A closed shard free-runs to the horizon in a single window, so the
    execution is literally the single-process :func:`run_schedule` — the
    parallel runtime only distributes the seeds across workers.
    """

    def __init__(self, shard_id, params, boundary):
        schedule_data = params.get("schedule")
        schedule = (
            ChaosSchedule.from_dict(schedule_data)
            if schedule_data is not None
            else generate_schedule(
                params["seed"], db_failover=params.get("db_failover", False),
                controller_chaos=params.get("controller_chaos", False),
            )
        )
        self.prepared = _PreparedRun(
            schedule,
            hold_acks=params.get("hold_acks", True),
            stop_on_violation=params.get("stop_on_violation", True),
            tracing=params.get("tracing", False),
            legacy_controller=params.get("legacy_controller", False),
        )
        self.engine = self.prepared.system.engine
        self._result = None

    def run_window(self, until):
        return self.prepared.step_to(until)

    def finalize(self):
        self._result = self.prepared.finish()

    def results(self):
        result = self._result or self.prepared.finish()
        suite = result.suite
        out = {
            "seed": result.schedule.seed,
            "verdict": suite.summary(),
            "violations": tuple(
                (v.time, v.oracle, v.detail) for v in suite.violations
            ),
            "rib": result.system.rib_digest(),
            "executed": result.events_executed,
            "completed": result.completed,
        }
        store = result.system.trace_store
        if store is not None:
            out["phase_summary"] = store.phase_summary()
        return out


def build_chaos_shard(shard_id, params, boundary):
    """Spawn-safe builder (``repro.failures.chaos:build_chaos_shard``)."""
    return ChaosShardProgram(shard_id, params, boundary)


def chaos_corpus_specs(seeds=CORPUS_SEEDS, hold_acks=True, tracing=False,
                       db_failover=False, controller_chaos=False,
                       legacy_controller=False):
    """ShardSpecs running one chaos seed per shard (all closed shards)."""
    from repro.sim.parallel.runtime import ShardSpec

    return [
        ShardSpec(
            f"chaos{seed}",
            "repro.failures.chaos:build_chaos_shard",
            params={"seed": seed, "hold_acks": hold_acks, "tracing": tracing,
                    "db_failover": db_failover,
                    "controller_chaos": controller_chaos,
                    "legacy_controller": legacy_controller},
        )
        for seed in seeds
    ]


def chaos_corpus_horizon(seeds=CORPUS_SEEDS, db_failover=False,
                         controller_chaos=False):
    """A run duration covering every seed's deadline under the parallel
    runner's shared clock (schedule generation is pure, so this is
    cheap and exact)."""
    return max(
        generate_schedule(seed, db_failover=db_failover,
                          controller_chaos=controller_chaos).duration
        for seed in seeds
    ) + 1.0


# ----------------------------------------------------------------------
# shrinking
# ----------------------------------------------------------------------

class ShrinkBudget:
    """Per-dimension rerun budget for shrinking.

    The historical shrinker shared one ``max_runs`` pool across every
    shrink dimension, so an expensive schedule pass (dropping dozens of
    injections one at a time) could starve the config/topology passes
    entirely — and nothing reported that it had.  Each dimension now
    draws from its own pool, and :meth:`exhausted` names the pools that
    ran dry so the caller can say *why* a repro is not smaller.
    """

    def __init__(self, limits):
        self.limits = dict(limits)
        self.used = {dimension: 0 for dimension in self.limits}

    @classmethod
    def split(cls, max_runs, config_share=0.25):
        """The default split: schedule shrinking keeps the bulk of the
        pool, config/topology shrinking gets its own reserved slice."""
        config_runs = max(2, int(max_runs * config_share))
        return cls({
            "schedule": max(1, max_runs - config_runs),
            "config": config_runs,
        })

    def take(self, dimension):
        """Consume one run from ``dimension``; False once that pool is dry."""
        if self.used[dimension] >= self.limits[dimension]:
            return False
        self.used[dimension] += 1
        return True

    def remaining(self, dimension):
        return self.limits[dimension] - self.used[dimension]

    @property
    def total_used(self):
        return sum(self.used.values())

    def exhausted(self):
        """Dimensions whose pool ran dry, sorted for stable reporting."""
        return tuple(sorted(
            dimension for dimension, limit in self.limits.items()
            if self.used[dimension] >= limit
        ))

    def describe(self):
        parts = ", ".join(
            f"{dimension} {self.used[dimension]}/{self.limits[dimension]}"
            for dimension in sorted(self.limits)
        )
        dry = self.exhausted()
        return parts + (f" (exhausted: {', '.join(dry)})" if dry else "")


def shrink_schedule(schedule, hold_acks=True, expect_oracle=None, max_runs=40,
                    budget=None):
    """Minimize ``schedule`` while it still trips an oracle.

    Deterministic greedy reduction: drop injections, drop workload
    bursts, halve burst sizes, zero the preloaded table, coarsen
    injection instants, then trim the horizon to just past the
    violation.  Returns ``(shrunk, final_result, runs_used)``.

    Schedule-shaped passes (injections, bursts, instants, horizon) and
    config/topology passes (the preloaded table) draw from separate
    pools of a :class:`ShrinkBudget` — pass your own ``budget`` to
    control the split and inspect which dimension exhausted it
    afterwards; ``max_runs`` alone uses :meth:`ShrinkBudget.split`.
    """
    if budget is None:
        budget = ShrinkBudget.split(max_runs)

    def still_fails(candidate, dimension):
        if not budget.take(dimension):
            return None  # this dimension's pool is dry: stop shrinking it
        result = run_schedule(candidate, hold_acks=hold_acks)
        violation = result.first_violation
        if violation is None:
            return False
        if expect_oracle is not None and violation.oracle != expect_oracle:
            return False
        return result

    best = schedule.copy()
    result = still_fails(best, "schedule")
    if not result:
        return best, None, budget.total_used

    def try_mutation(mutate, dimension):
        nonlocal best, result
        candidate = best.copy()
        if mutate(candidate) is False:
            return
        outcome = still_fails(candidate, dimension)
        if outcome:
            best, result = candidate, outcome

    # 1. drop injections, one at a time, until a fixed point
    changed = True
    while changed and budget.remaining("schedule") > 0:
        changed = False
        for index in range(len(best.injections) - 1, -1, -1):
            before = len(best.injections)

            def drop(candidate, index=index):
                del candidate.injections[index]

            try_mutation(drop, "schedule")
            if len(best.injections) != before:
                changed = True
    # 2. drop workload bursts
    for index in range(len(best.workload) - 1, -1, -1):
        def drop(candidate, index=index):
            del candidate.workload[index]

        try_mutation(drop, "schedule")
    # 3. halve remaining burst sizes
    for index in range(len(best.workload)):
        while (best.workload[index]["count"] > 25
               and budget.remaining("schedule") > 0):
            before = best.workload[index]["count"]

            def halve(candidate, index=index):
                candidate.workload[index]["count"] //= 2

            try_mutation(halve, "schedule")
            if best.workload[index]["count"] == before:
                break
    # 4. drop the preloaded table (a config/topology knob: its pool is
    # reserved so the schedule passes above cannot starve it)
    if best.initial_routes:
        def zero(candidate):
            candidate.initial_routes = 0

        try_mutation(zero, "config")
    # 5. coarsen injection instants (whole seconds read better in repros)
    for index in range(len(best.injections)):
        def roundto(candidate, index=index):
            rounded = float(round(candidate.injections[index]["at"]))
            if rounded == candidate.injections[index]["at"] or rounded < 0.1:
                return False
            candidate.injections[index]["at"] = rounded

        try_mutation(roundto, "schedule")
    # 6. trim the horizon to just past the violation (violation times are
    # absolute; arming happens at >= 10 s, so this over-covers slightly —
    # the verification rerun below keeps it honest)
    trimmed = round(max(5.0, result.first_violation.time - 5.0), 3)
    if trimmed < best.duration:
        def trim(candidate):
            candidate.duration = trimmed

        try_mutation(trim, "schedule")
    return best, result, budget.total_used


# ----------------------------------------------------------------------
# repro scripts
# ----------------------------------------------------------------------

REPRO_TEMPLATE = '''#!/usr/bin/env python3
"""Auto-generated chaos repro — seed {seed}, oracle {oracle}.

Shrunk schedule: {injections} injection(s), {bursts} workload burst(s).
Replay (from the repository root):

    PYTHONPATH=src python {filename}

Exits 0 when the violation reproduces at the same oracle.
"""
import json
import sys

SEED = {seed}
HOLD_ACKS = {hold_acks}
EXPECT_ORACLE = {oracle!r}
SCHEDULE = json.loads(r\'\'\'
{schedule_json}
\'\'\')


def main():
    from repro.failures.chaos import ChaosSchedule, run_schedule

    result = run_schedule(
        ChaosSchedule.from_dict(SCHEDULE), hold_acks=HOLD_ACKS
    )
    violation = result.first_violation
    if violation is None:
        print("did NOT reproduce: all oracles passed")
        return 2
    print(
        "reproduced: %s @%.3f -- %s"
        % (violation.oracle, violation.time, violation.detail)
    )
    return 0 if violation.oracle == EXPECT_ORACLE else 3


if __name__ == "__main__":
    sys.exit(main())
'''


def write_repro_script(schedule, violation, hold_acks, path):
    """Emit a self-contained replay script for a shrunk schedule."""
    filename = path.split("/")[-1]
    script = REPRO_TEMPLATE.format(
        seed=schedule.seed,
        oracle=violation.oracle,
        injections=len(schedule.injections),
        bursts=len(schedule.workload),
        filename=filename,
        hold_acks=hold_acks,
        schedule_json=json.dumps(schedule.to_dict(), indent=2, sort_keys=True),
    )
    with open(path, "w") as handle:
        handle.write(script)
    return path


def shrink_and_report(schedule, first_result, hold_acks, out_dir=".",
                      prefix="chaos_repro"):
    """The failure path of a sweep: shrink, write the repro, describe it."""
    violation = first_result.first_violation
    budget = ShrinkBudget.split(40)
    shrunk, final, runs = shrink_schedule(
        schedule, hold_acks=hold_acks, expect_oracle=violation.oracle,
        budget=budget,
    )
    path = f"{out_dir}/{prefix}_{schedule.seed}.py"
    write_repro_script(shrunk, violation, hold_acks, path)
    print(
        f"seed {schedule.seed}: VIOLATION {violation.oracle}"
        f" @{violation.time:.3f} — {violation.detail}"
    )
    print(
        f"  shrunk to {len(shrunk.injections)} injection(s),"
        f" {len(shrunk.workload)} burst(s) in {runs} rerun(s)"
        f" [{budget.describe()}]; repro: {path}"
    )
    return shrunk, path


# ----------------------------------------------------------------------
# CLI: python -m repro.failures.chaos
# ----------------------------------------------------------------------

def _run_one(seed, hold_acks=True, out_dir=".", tracing=False,
             db_failover=False, stop_on_violation=True,
             controller_chaos=False):
    """Run one seed; returns ``"ok"``, ``"violation"`` or ``"partial"``.

    A *partial* run — the engine stalled before the deadline without a
    violation halt — has no oracle verdict for the uncovered tail, so
    it must never read as a pass.
    """
    schedule = generate_schedule(seed, db_failover=db_failover,
                                 controller_chaos=controller_chaos)
    result = run_schedule(schedule, hold_acks=hold_acks, tracing=tracing,
                          stop_on_violation=stop_on_violation)
    if result.first_violation is None:
        if result.partial:
            print(
                f"seed {seed}: PARTIAL — engine stalled at"
                f" {result.system.engine.now:.3f}s, before the"
                f" {schedule.duration:.0f}s horizon; the uncovered tail"
                " has no oracle verdict"
            )
            return "partial"
        traced = "traced, " if tracing else ""
        failover = "db-failover, " if db_failover else ""
        panel = (
            f"panel x{schedule.controller_replicas}, "
            if controller_chaos else ""
        )
        print(
            f"seed {seed}: ok ({traced}{failover}{panel}"
            f"{len(schedule.injections)} injections,"
            f" {len(schedule.workload)} bursts, {schedule.neighbors} neighbors,"
            f" {schedule.duration:.0f}s virtual)"
        )
        return "ok"
    prefix = "panel_repro" if controller_chaos else "chaos_repro"
    shrink_and_report(schedule, result, hold_acks, out_dir=out_dir,
                      prefix=prefix)
    return "violation"


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Randomized multi-failure NSR testing (DESIGN.md §9)"
    )
    parser.add_argument("--seeds", type=int, default=None,
                        help="sweep seeds 0..N-1")
    parser.add_argument("--seed", type=int, default=None,
                        help="run one seed verbosely")
    parser.add_argument("--corpus", action="store_true",
                        help="run the fixed tier-1 corpus seeds")
    parser.add_argument("--controller-corpus", action="store_true",
                        help="run the controller-plane chaos seeds"
                             " (3-replica panel, DESIGN.md §15)")
    parser.add_argument("--ablation", action="store_true",
                        help="run with delayed ACKs disabled (must trip)")
    parser.add_argument("--keep-going", action="store_true",
                        help="do not halt a run at its first violation"
                             " (collect them all; partial runs exit 2)")
    parser.add_argument("--out", default=".", help="repro script directory")
    args = parser.parse_args(argv)
    stop_on_violation = not args.keep_going

    if args.ablation:
        seed = args.seed if args.seed is not None else 0
        schedule = generate_schedule(seed)
        result = run_schedule(schedule, hold_acks=False)
        if result.first_violation is None:
            print(f"ablation seed {seed}: no oracle tripped (UNEXPECTED)")
            return 1
        shrunk, path = shrink_and_report(
            schedule, result, hold_acks=False, out_dir=args.out
        )
        print(f"ablation tripped as designed; replay: PYTHONPATH=src python {path}")
        return 0

    if args.seed is not None:
        status = _run_one(args.seed, out_dir=args.out,
                          stop_on_violation=stop_on_violation)
        return {"ok": 0, "violation": 1, "partial": 2}[status]

    if args.controller_corpus:
        seeds = [(seed, False, False, True) for seed in CONTROLLER_CORPUS_SEEDS]
    elif args.corpus:
        seeds = [(seed, False, False, False) for seed in CORPUS_SEEDS]
        seeds += [(seed, True, False, False) for seed in TRACED_CORPUS_SEEDS]
        seeds += [(seed, False, True, False)
                  for seed in DB_FAILOVER_CORPUS_SEEDS]
    else:
        seeds = [
            (seed, False, False, False)
            for seed in range(args.seeds if args.seeds is not None else 10)
        ]
    failures = partials = 0
    for seed, tracing, db_failover, controller_chaos in seeds:
        status = _run_one(seed, out_dir=args.out, tracing=tracing,
                          db_failover=db_failover,
                          stop_on_violation=stop_on_violation,
                          controller_chaos=controller_chaos)
        failures += status == "violation"
        partials += status == "partial"
    total = len(seeds)
    tail = f" ({partials} partial)" if partials else ""
    print(f"{total - failures - partials}/{total} seeds passed{tail}")
    if failures:
        return 1
    return 2 if partials else 0


if __name__ == "__main__":
    sys.exit(main())
