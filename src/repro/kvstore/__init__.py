"""The highly-available key-value store (the paper's Redis).

TENSOR replicates BGP messages, inferred ACK numbers, TCP status and
routing-table snapshots into "a highly-available distributed database —
Redis is used in our case" (§3.1.1).  This package provides that store:

- :class:`~repro.kvstore.store.KeyValueStore` — the in-RAM data structure
  with calibrated operation costs (Fig. 5(b)).
- :class:`~repro.kvstore.server.KvServer` — a single-threaded server
  process on a simulated host (requests serialize, like Redis).
- :class:`~repro.kvstore.client.KvClient` — the client used by BGP
  processes and the recovery path.
- :class:`~repro.kvstore.locks.LockManager` — the per-message locks that
  order main-thread and keepalive-thread writes (§3.1.2).
- :class:`~repro.kvstore.replication.ReplicatedKvCluster` — primary plus
  synchronous replica, the "fault-tolerant service by itself" of §4.1.
"""

from repro.kvstore.store import KeyValueStore
from repro.kvstore.server import KvServer
from repro.kvstore.client import KvClient
from repro.kvstore.locks import LockManager
from repro.kvstore.replication import ReplicatedKvCluster

__all__ = [
    "KeyValueStore",
    "KvServer",
    "KvClient",
    "LockManager",
    "ReplicatedKvCluster",
]
