"""The KV client used by BGP processes and the recovery path.

All calls are asynchronous: callbacks fire when the server replies.  A
failed server or a partition surfaces as the ``on_error`` callback after
the timeout — the BGP process treats that as "replication unavailable"
and keeps ACKs held, which is the fail-safe direction (§3.1.1: releasing
an ACK before replication is the inconsistency to avoid).
"""

from repro.kvstore.server import KV_PORT
from repro.sim.rpc import RpcClient

DEFAULT_TIMEOUT = 1.0


def _ignore_reply(_rep):
    """Shared no-op reply sink for fire-and-forget operations."""


class KvClient:
    """Asynchronous client bound to one KV endpoint."""

    def __init__(self, engine, host, server_addr, server_port=KV_PORT):
        self.engine = engine
        self.rpc = RpcClient(engine, host, server_addr, server_port)
        self.server_addr = server_addr

    def _call(self, method, body, on_done, on_error, timeout):
        # Only build the timeout closure when somebody is listening;
        # fire-and-forget calls (pruning deletes, async remote writes)
        # then cost one less allocation each.
        on_timeout = None
        if on_error is not None:
            def on_timeout():
                on_error(method)

        self.rpc.call(
            method, body, on_reply=on_done, on_timeout=on_timeout, timeout=timeout
        )

    # -- operations --------------------------------------------------------

    def get(self, key, on_done, on_error=None, timeout=DEFAULT_TIMEOUT):
        """``on_done(value_or_None)``"""
        self._call(
            "get", {"key": key}, lambda rep: on_done(rep["value"]), on_error, timeout
        )

    def mget(self, keys, on_done, on_error=None, timeout=DEFAULT_TIMEOUT):
        """``on_done(list_of_values)``"""
        self._call(
            "mget",
            {"keys": list(keys)},
            lambda rep: on_done(rep["values"]),
            on_error,
            timeout,
        )

    def set(self, key, value, on_done, on_error=None, timeout=DEFAULT_TIMEOUT):
        """``on_done()`` after the write (and its sync replication) commit."""
        self._call(
            "set",
            {"key": key, "value": value},
            lambda _rep: on_done(),
            on_error,
            timeout,
        )

    def mset(self, items, on_done, on_error=None, timeout=DEFAULT_TIMEOUT):
        """Batched write of ``[(key, value), ...]``; ``on_done()``."""
        self._call(
            "mset", {"items": list(items)}, lambda _rep: on_done(), on_error, timeout
        )

    def delete(self, keys, on_done=None, on_error=None, timeout=DEFAULT_TIMEOUT):
        """``on_done(removed_count)`` (callback optional for fire-and-forget)."""
        done = (lambda rep: on_done(rep["removed"])) if on_done else _ignore_reply
        self._call("delete", {"keys": list(keys)}, done, on_error, timeout)

    def scan(self, prefix, on_done, on_error=None, timeout=DEFAULT_TIMEOUT, estimated=64):
        """``on_done(sorted_pairs)`` for keys under ``prefix``."""
        self._call(
            "scan",
            {"prefix": prefix, "estimated": estimated},
            lambda rep: on_done(rep["pairs"]),
            on_error,
            timeout,
        )

    def ping(self, on_done, on_error=None, timeout=DEFAULT_TIMEOUT):
        self._call("ping", {}, lambda _rep: on_done(), on_error, timeout)

    def close(self):
        self.rpc.close()
