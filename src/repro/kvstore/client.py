"""The KV client used by BGP processes and the recovery path.

All calls are asynchronous: callbacks fire when the server replies.  A
failed server or a partition surfaces as the ``on_error`` callback after
the timeout — the BGP process treats that as "replication unavailable"
and keeps ACKs held, which is the fail-safe direction (§3.1.1: releasing
an ACK before replication is the inconsistency to avoid).

``on_error(method, cause)`` carries a structured cause so callers can
react differently to a slow/partitioned endpoint (``CAUSE_TIMEOUT``), a
dead-but-reachable one (``CAUSE_REFUSED``: fail fast, retry) and a
fenced write (``CAUSE_FENCED``: this endpoint was demoted — hold the
write and wait for the controller's repoint push).
"""

from repro.kvstore.server import KV_PORT, WRITE_METHODS
from repro.sim.rpc import RpcClient

DEFAULT_TIMEOUT = 1.0

CAUSE_TIMEOUT = "timeout"
CAUSE_REFUSED = "refused"
CAUSE_FENCED = "fenced"


def _ignore_reply(_rep):
    """Shared no-op reply sink for fire-and-forget operations."""


class KvClient:
    """Asynchronous client bound to one KV endpoint.

    When created through :meth:`TensorSystem.kv_client` the client is
    epoch-aware: writes carry the cluster epoch they were issued under,
    and the controller's failover monitor calls :meth:`repoint` to move
    it to the promoted primary.  ``endpoint_generation`` increments on
    every repoint so retry loops can tell "same endpoint, still failing"
    from "new endpoint, fresh budget".
    """

    def __init__(self, engine, host, server_addr, server_port=KV_PORT,
                 epoch=None):
        self.engine = engine
        self.rpc = RpcClient(engine, host, server_addr, server_port)
        self.server_addr = server_addr
        self.epoch = epoch
        self.endpoint_generation = 0
        self.on_repoint = None
        self.fenced_errors = 0

    def repoint(self, server_addr, epoch=None, server_port=None):
        """Move the client to a new endpoint (controller failover push).

        In-flight requests to the old endpoint fail immediately through
        their error callbacks (cause ``refused``), so callers holding
        state on them — the write coalescer's in-flight batch, a held
        ACK's verify read — get to retry against the new endpoint.
        """
        self.server_addr = server_addr
        if epoch is not None:
            self.epoch = epoch
        self.endpoint_generation += 1
        self.rpc.retarget(server_addr, server_port)
        if self.on_repoint is not None:
            self.on_repoint()

    def _call(self, method, body, on_done, on_error, timeout):
        if self.epoch is not None and method in WRITE_METHODS:
            body["epoch"] = self.epoch

        # Only build the error closures when somebody is listening;
        # fire-and-forget calls (async remote writes) then cost one
        # less allocation each.
        on_timeout = None
        on_refused = None
        if on_error is not None:
            def on_timeout():
                on_error(method, CAUSE_TIMEOUT)

            def on_refused():
                on_error(method, CAUSE_REFUSED)

        def on_reply(rep):
            if isinstance(rep, dict) and rep.get("fenced"):
                # The server refused to apply: our epoch is stale.  Never
                # surface this through on_done — the caller would treat
                # the write as durable.
                self.fenced_errors += 1
                if on_error is not None:
                    on_error(method, CAUSE_FENCED)
                return
            on_done(rep)

        self.rpc.call(
            method, body, on_reply=on_reply, on_timeout=on_timeout,
            on_refused=on_refused, timeout=timeout,
        )

    # -- operations --------------------------------------------------------

    def get(self, key, on_done, on_error=None, timeout=DEFAULT_TIMEOUT):
        """``on_done(value_or_None)``"""
        self._call(
            "get", {"key": key}, lambda rep: on_done(rep["value"]), on_error, timeout
        )

    def mget(self, keys, on_done, on_error=None, timeout=DEFAULT_TIMEOUT):
        """``on_done(list_of_values)``"""
        self._call(
            "mget",
            {"keys": list(keys)},
            lambda rep: on_done(rep["values"]),
            on_error,
            timeout,
        )

    def set(self, key, value, on_done, on_error=None, timeout=DEFAULT_TIMEOUT):
        """``on_done()`` after the write (and its sync replication) commit."""
        self._call(
            "set",
            {"key": key, "value": value},
            lambda _rep: on_done(),
            on_error,
            timeout,
        )

    def mset(self, items, on_done, on_error=None, timeout=DEFAULT_TIMEOUT):
        """Batched write of ``[(key, value), ...]``; ``on_done()``."""
        self._call(
            "mset", {"items": list(items)}, lambda _rep: on_done(), on_error, timeout
        )

    def delete(self, keys, on_done=None, on_error=None, timeout=DEFAULT_TIMEOUT):
        """``on_done(removed_count)`` (callback optional for fire-and-forget)."""
        done = (lambda rep: on_done(rep["removed"])) if on_done else _ignore_reply
        self._call("delete", {"keys": list(keys)}, done, on_error, timeout)

    def scan(self, prefix, on_done, on_error=None, timeout=DEFAULT_TIMEOUT, estimated=64):
        """``on_done(sorted_pairs)`` for keys under ``prefix``."""
        self._call(
            "scan",
            {"prefix": prefix, "estimated": estimated},
            lambda rep: on_done(rep["pairs"]),
            on_error,
            timeout,
        )

    def ping(self, on_done, on_error=None, timeout=DEFAULT_TIMEOUT):
        self._call("ping", {}, lambda _rep: on_done(), on_error, timeout)

    def close(self):
        self.rpc.close()
