"""The in-memory data structure and its calibrated operation costs.

The store is a flat ordered map with prefix scans — everything the TENSOR
recovery path needs.  Values are opaque Python objects (the simulated
server never serializes them; sizes are accounted separately for the
storage-bound invariant of §3.1.2).

Operation costs reproduce Fig. 5(b): a batched operation over n records
costs ``base + n * per_record`` of server CPU, with writes ≈2.5× reads.
"""

from repro.sim.calibration import (
    KV_READ_BASE,
    KV_READ_PER_RECORD,
    KV_WRITE_BASE,
    KV_WRITE_PER_RECORD,
)


class KeyValueStore:
    """The data plane of one KV node."""

    def __init__(self):
        self._data = {}
        self.ops = {"get": 0, "set": 0, "delete": 0, "scan": 0}

    # -- data operations ------------------------------------------------

    def get(self, key):
        self.ops["get"] += 1
        return self._data.get(key)

    def mget(self, keys):
        self.ops["get"] += len(keys)
        return [self._data.get(key) for key in keys]

    def set(self, key, value):
        self.ops["set"] += 1
        self._data[key] = value

    def mset(self, items):
        self.ops["set"] += len(items)
        for key, value in items:
            self._data[key] = value

    def delete(self, keys):
        self.ops["delete"] += len(keys)
        removed = 0
        for key in keys:
            if key in self._data:
                del self._data[key]
                removed += 1
        return removed

    def scan(self, prefix):
        """All (key, value) pairs whose key starts with ``prefix``, sorted."""
        self.ops["scan"] += 1
        return sorted(
            (key, value) for key, value in self._data.items() if key.startswith(prefix)
        )

    def delete_prefix(self, prefix):
        doomed = [key for key in self._data if key.startswith(prefix)]
        return self.delete(doomed)

    def __len__(self):
        return len(self._data)

    def __contains__(self, key):
        return key in self._data

    def size_bytes(self, prefix=""):
        """Approximate stored bytes under ``prefix`` (keys + value sizes)."""
        total = 0
        for key, value in self._data.items():
            if not key.startswith(prefix):
                continue
            total += len(key)
            if isinstance(value, (bytes, bytearray, str)):
                total += len(value)
            elif isinstance(value, dict):
                total += sum(
                    len(v) if isinstance(v, (bytes, bytearray, str)) else 8
                    for v in value.values()
                )
            else:
                total += 8
        return total

    def snapshot(self):
        """A shallow copy of the data, for replica bootstrap."""
        return dict(self._data)

    def load(self, data):
        self._data = dict(data)


#: The serializing (single-threaded CPU) share of the per-operation base;
#: the rest is protocol/syscall latency that overlaps across clients.
#: Real Redis sustains ~100K simple ops/s on one core, i.e. ~10-50 us of
#: CPU per command, while a client still observes ~0.4-1 ms round trips.
KV_CPU_BASE_FRACTION = 0.08


def operation_cost(method, record_count):
    """Client-observed server time for one batched operation (Fig. 5(b))."""
    n = max(record_count, 1)
    if method in ("get", "mget", "scan"):
        return KV_READ_BASE + n * KV_READ_PER_RECORD
    if method in ("set", "mset", "delete"):
        return KV_WRITE_BASE + n * KV_WRITE_PER_RECORD
    return KV_READ_BASE


def server_cpu_cost(method, record_count):
    """The serializing share: queues behind other clients' requests."""
    n = max(record_count, 1)
    if method in ("get", "mget", "scan"):
        return KV_READ_BASE * KV_CPU_BASE_FRACTION + n * KV_READ_PER_RECORD
    if method in ("set", "mset", "delete"):
        return KV_WRITE_BASE * KV_CPU_BASE_FRACTION + n * KV_WRITE_PER_RECORD
    return KV_READ_BASE * KV_CPU_BASE_FRACTION


def fixed_latency(method):
    """The non-serializing share: overlaps across concurrent clients."""
    if method in ("set", "mset", "delete"):
        return KV_WRITE_BASE * (1.0 - KV_CPU_BASE_FRACTION)
    return KV_READ_BASE * (1.0 - KV_CPU_BASE_FRACTION)


def record_count_of(method, body):
    """How many records an RPC body touches, for cost accounting."""
    if method in ("get",):
        return 1
    if method == "mget":
        return len(body["keys"])
    if method == "set":
        return 1
    if method == "mset":
        return len(body["items"])
    if method == "delete":
        return len(body["keys"])
    if method == "scan":
        return max(body.get("estimated", 16), 1)
    return 1
