"""Per-message locks for multi-threaded database access.

§3.1.2: "Race conditions may occur when both [main and keepalive] threads
write to the database at the same time ... we choose to implement a
per-message lock to support multi-threading read and write from/to the
database.  Note that the ordering of the database operations is only
required for messages within a BGP connection but not required for
messages across different BGP connections."

The lock manager therefore keys locks by BGP connection: writers for the
same connection serialize FIFO; writers for different connections never
contend.  Grants are callbacks (the simulation has no blocking threads).
"""

import collections


class LockManager:
    """FIFO locks keyed by an arbitrary hashable (the BGP connection id)."""

    def __init__(self):
        self._holders = {}
        self._waiters = collections.defaultdict(collections.deque)
        self.contentions = 0

    def acquire(self, key, owner, granted):
        """Request the lock for ``key``; ``granted()`` fires when held.

        The grant is synchronous when the lock is free — the caller must
        tolerate ``granted`` running before ``acquire`` returns.
        """
        if key not in self._holders:
            self._holders[key] = owner
            granted()
            return
        self.contentions += 1
        self._waiters[key].append((owner, granted))

    def release(self, key, owner):
        """Release the lock and grant the next FIFO waiter, if any."""
        if self._holders.get(key) != owner:
            raise RuntimeError(
                f"lock {key!r} released by {owner!r} but held by"
                f" {self._holders.get(key)!r}"
            )
        waiters = self._waiters.get(key)
        if waiters:
            next_owner, granted = waiters.popleft()
            if not waiters:
                del self._waiters[key]
            self._holders[key] = next_owner
            granted()
        else:
            del self._holders[key]

    def holder(self, key):
        return self._holders.get(key)

    def queue_length(self, key):
        return len(self._waiters.get(key, ()))

    def held_keys(self):
        return set(self._holders)
