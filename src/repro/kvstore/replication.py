"""Primary-replica KV cluster assembly.

§4.1 note: "our Redis server will not store data on disk but only in RAM
... TENSOR targets providing BGP NSR with respect to single-point
failures.  When either the database or the BGP container fails, TENSOR
can be recovered by simply rebooting the failed service and
re-synchronizing all the data."

The cluster wires a primary :class:`~repro.kvstore.server.KvServer` to a
synchronous replica on a different host and provides the failover lever a
single-point database failure needs: promote the replica, repoint
clients.
"""

from repro.kvstore.server import KV_PORT, KvServer


class ReplicatedKvCluster:
    """A primary KV server plus one synchronous replica."""

    def __init__(self, engine, primary_host, replica_host, port=KV_PORT):
        self.engine = engine
        self.port = port
        self.primary = KvServer(engine, primary_host, port)
        self.replica = KvServer(engine, replica_host, port)
        self.primary.attach_replica(replica_host.address, port)
        self.failovers = 0

    @property
    def primary_addr(self):
        return self.primary.host.address

    def fail_primary(self):
        """Kill the primary (a database single-point failure)."""
        self.primary.fail()

    def promote_replica(self):
        """Promote the replica to primary after a primary failure.

        Returns the new primary's address; clients must repoint.  The data
        is already present on the replica because replication is
        synchronous for every acknowledged write.
        """
        self.failovers += 1
        self.primary, self.replica = self.replica, self.primary
        return self.primary.host.address

    def resync_replica(self):
        """Bulk-copy primary data to the (rebooted) replica and re-attach."""
        self.replica.store.load(self.primary.store.snapshot())
        self.replica.recover()
        self.primary.attach_replica(self.replica.host.address, self.port)

    def total_records(self):
        return len(self.primary.store)
