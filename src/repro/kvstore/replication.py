"""Primary-replica KV cluster assembly.

§4.1 note: "our Redis server will not store data on disk but only in RAM
... TENSOR targets providing BGP NSR with respect to single-point
failures.  When either the database or the BGP container fails, TENSOR
can be recovered by simply rebooting the failed service and
re-synchronizing all the data."

The cluster wires a primary :class:`~repro.kvstore.server.KvServer` to a
synchronous replica on a different host and provides the failover levers
a single-point database failure needs: promote the replica under a new
**cluster epoch**, fence the old primary, repoint clients, and later
re-synchronize the rebooted node back in as the new replica without
losing writes acknowledged mid-copy (DESIGN.md §12).
"""

from repro.kvstore.server import KV_PORT, KvServer
from repro.kvstore.store import operation_cost
from repro.sim.rpc import RefusalResponder


class ReplicatedKvCluster:
    """A primary KV server plus one synchronous replica.

    ``epoch`` starts at 1 and increments on every promotion; both
    servers are stamped with the epoch of the last cluster transition
    they took part in, so a write carrying an older epoch is fenced.
    """

    def __init__(self, engine, primary_host, replica_host, port=KV_PORT):
        self.engine = engine
        self.port = port
        self.primary = KvServer(engine, primary_host, port)
        self.replica = KvServer(engine, replica_host, port)
        self.primary.attach_replica(replica_host.address, port)
        self.failovers = 0
        self.epoch = 1
        #: optional controller-leadership fence (distinct from the KV
        #: epoch above): promotions stamped with a stale leadership
        #: epoch are rejected (set by the system when a panel runs)
        self.epoch_gate = None
        self.primary.epoch = self.epoch
        self.replica.epoch = self.epoch
        # Closed-port reset semantics on both hosts: a request to a dead
        # server process fails fast as "refused" rather than timing out,
        # which is what lets client retry loops spin cheaply during the
        # detection window.
        self._refusers = (
            RefusalResponder(engine, primary_host),
            RefusalResponder(engine, replica_host),
        )
        self.resyncs = 0
        self._resync_inflight = False

    @property
    def primary_addr(self):
        return self.primary.host.address

    def fail_primary(self, permanent=False):
        """Kill the primary (a database single-point failure)."""
        self.primary.fail(permanent=permanent)

    def promote_replica(self, controller_epoch=None):
        """Promote the replica to primary after a primary failure.

        Returns the new primary's address; clients must repoint (the
        controller's failover monitor pushes this).  The data is already
        present on the replica because replication is synchronous for
        every acknowledged write.

        The transition bumps the cluster epoch and fences the old
        primary two ways: its replica attachment is detached (it must
        not keep a replication channel into its successor), and its
        epoch floor is raised so that — even across a reboot — writes
        from clients that never repointed are rejected instead of
        applied (split-brain prevention).

        When a controller panel runs, ``controller_epoch`` carries the
        requesting leader's epoch; a stale stamp is rejected (returns
        None) so a deposed ex-leader cannot flip the primary.
        """
        if (self.epoch_gate is not None
                and not self.epoch_gate.accepts(controller_epoch)):
            self.epoch_gate.reject(("promote_replica", self.primary_addr),
                                   controller_epoch)
            return None
        self.failovers += 1
        self.epoch += 1
        old_primary = self.primary
        self.primary, self.replica = self.replica, self.primary
        old_primary.detach_replica()
        old_primary.epoch = self.epoch
        self.primary.epoch = self.epoch
        self.primary.detach_replica()  # old peer is dead; no sync channel
        return self.primary.host.address

    def resync_replica(self, on_done=None):
        """Copy primary data to the (rebooted) replica and re-attach.

        The copy takes simulated time proportional to the record count
        (one bulk read plus one bulk write).  Writes acknowledged on the
        primary *during* the copy land in a resync journal and are
        replayed onto the replica before it re-attaches, closing the
        snapshot->load lost-write window.
        """
        if self._resync_inflight:
            raise RuntimeError("resync already in progress")
        self._resync_inflight = True
        self.replica.reboot()
        snapshot = self.primary.store.snapshot()
        self.primary.begin_resync_journal()
        records = len(snapshot)
        copy_time = operation_cost("mget", records) + operation_cost(
            "mset", records
        )
        self.engine.schedule(copy_time, self._finish_resync, snapshot, on_done)

    def _finish_resync(self, snapshot, on_done):
        self.replica.store.load(snapshot)
        for method, body in self.primary.end_resync_journal():
            self.replica._apply(method, body)
        self.replica.epoch = self.epoch
        self.primary.attach_replica(self.replica.host.address, self.port)
        self.resyncs += 1
        self._resync_inflight = False
        if on_done is not None:
            on_done()

    def total_records(self):
        return len(self.primary.store)
