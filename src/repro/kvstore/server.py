"""The KV server process.

Single-threaded like Redis: requests serialize behind one CPU, so bursts
of replication writes from many BGP containers queue — which is one of
the pressures the containerized design spreads across time and, in a real
deployment, across database shards.

A server can replicate writes synchronously to a replica server; replies
are then withheld until the replica confirms (see
:mod:`repro.kvstore.replication`).
"""

from repro.sim.rpc import AsyncRpcServer, RpcClient
from repro.kvstore.store import (
    KeyValueStore,
    fixed_latency,
    record_count_of,
    server_cpu_cost,
)

KV_PORT = 6379
WRITE_METHODS = frozenset(("set", "mset", "delete"))


class KvServer:
    """One KV node: store + RPC front end + optional sync replication."""

    def __init__(self, engine, host, port=KV_PORT, store=None):
        self.engine = engine
        self.host = host
        self.port = port
        self.store = store or KeyValueStore()
        self._busy_until = 0.0
        self._replica_client = None
        self.replica_addr = None
        self.rpc = AsyncRpcServer(
            engine, host, port, self._handle, service_time=self._service_time
        )
        self.failed = False

    # -- replication wiring ----------------------------------------------

    def attach_replica(self, replica_addr, replica_port=KV_PORT):
        """Synchronously replicate writes to another KV server."""
        self.replica_addr = replica_addr
        self._replica_client = RpcClient(
            self.engine, self.host, replica_addr, replica_port
        )

    # -- request processing ----------------------------------------------

    def _service_time(self, method, body):
        """Calibrated service time (Fig. 5(b)).

        Only the CPU share serializes behind other clients' requests; the
        protocol/syscall base overlaps across concurrent clients, like a
        real single-threaded Redis saturating at ~100K ops/s while each
        client still observes sub-millisecond round trips.
        """
        records = record_count_of(method, body)
        cpu = server_cpu_cost(method, records)
        now = self.engine.now
        start = max(now, self._busy_until)
        self._busy_until = start + cpu
        return (self._busy_until - now) + fixed_latency(method)

    def _handle(self, method, body, respond):
        if self.failed:
            return  # dead server: requests time out at the client
        result = self._apply(method, body)
        needs_replication = (
            method in WRITE_METHODS and self._replica_client is not None
        )
        if not needs_replication:
            respond(result)
            return
        self._replica_client.call(
            method,
            body,
            on_reply=lambda _rep: respond(result),
            on_timeout=lambda: respond(result),  # degrade to async, stay up
            timeout=0.5,
        )

    def _apply(self, method, body):
        if method == "get":
            return {"value": self.store.get(body["key"])}
        if method == "mget":
            return {"values": self.store.mget(body["keys"])}
        if method == "set":
            self.store.set(body["key"], body["value"])
            return {"ok": True}
        if method == "mset":
            self.store.mset(body["items"])
            return {"ok": True}
        if method == "delete":
            return {"removed": self.store.delete(body["keys"])}
        if method == "scan":
            return {"pairs": self.store.scan(body["prefix"])}
        if method == "ping":
            return {"pong": True}
        return {"error": f"unknown method {method!r}"}

    # -- failure levers ----------------------------------------------------

    def fail(self):
        self.failed = True

    def recover(self):
        self.failed = False

    def close(self):
        self.rpc.close()
        if self._replica_client is not None:
            self._replica_client.close()
