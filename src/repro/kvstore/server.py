"""The KV server process.

Single-threaded like Redis: requests serialize behind one CPU, so bursts
of replication writes from many BGP containers queue — which is one of
the pressures the containerized design spreads across time and, in a real
deployment, across database shards.

A server can replicate writes synchronously to a replica server; replies
are then withheld until the replica confirms (see
:mod:`repro.kvstore.replication`).
"""

from repro.sim.rpc import AsyncRpcServer, RpcClient
from repro.kvstore.store import (
    KeyValueStore,
    fixed_latency,
    record_count_of,
    server_cpu_cost,
)

KV_PORT = 6379
WRITE_METHODS = frozenset(("set", "mset", "delete"))


class KvServer:
    """One KV node: store + RPC front end + optional sync replication."""

    def __init__(self, engine, host, port=KV_PORT, store=None):
        self.engine = engine
        self.host = host
        self.port = port
        self.store = store or KeyValueStore()
        self._busy_until = 0.0
        self._replica_client = None
        self.replica_addr = None
        self.rpc = AsyncRpcServer(
            engine, host, port, self._handle, service_time=self._service_time
        )
        self.failed = False
        self._permanent = False
        # Fencing floor: writes stamped with an older cluster epoch are
        # rejected instead of applied.  0 means "never part of a managed
        # cluster" — every stamped write passes (raw-server back-compat).
        self.epoch = 0
        self.fenced_writes = 0
        self._resync_journal = None

    # -- replication wiring ----------------------------------------------

    def attach_replica(self, replica_addr, replica_port=KV_PORT):
        """Synchronously replicate writes to another KV server."""
        self.replica_addr = replica_addr
        self._replica_client = RpcClient(
            self.engine, self.host, replica_addr, replica_port
        )

    def detach_replica(self):
        """Stop replicating (demotion: the old primary must not keep a
        replication channel to its successor, or stale clients' writes
        would leak into the new primary's store)."""
        self.replica_addr = None
        if self._replica_client is not None:
            self._replica_client.close()
            self._replica_client = None

    # -- request processing ----------------------------------------------

    def _service_time(self, method, body):
        """Calibrated service time (Fig. 5(b)).

        Only the CPU share serializes behind other clients' requests; the
        protocol/syscall base overlaps across concurrent clients, like a
        real single-threaded Redis saturating at ~100K ops/s while each
        client still observes sub-millisecond round trips.
        """
        records = record_count_of(method, body)
        cpu = server_cpu_cost(method, records)
        now = self.engine.now
        start = max(now, self._busy_until)
        self._busy_until = start + cpu
        return (self._busy_until - now) + fixed_latency(method)

    def _handle(self, method, body, respond):
        if self.failed:
            return  # dead server: requests time out at the client
        if method in WRITE_METHODS:
            claimed = body.get("epoch")
            if claimed is not None and claimed < self.epoch:
                # Stale-epoch write: the cluster moved on while this
                # client still points here.  Reject without applying —
                # the fence that keeps a rebooted old primary from
                # silently diverging (DESIGN.md §12).
                self.fenced_writes += 1
                respond({"fenced": True, "epoch": self.epoch})
                return
        result = self._apply(method, body)
        needs_replication = (
            method in WRITE_METHODS and self._replica_client is not None
        )
        if not needs_replication:
            respond(result)
            return
        self._replica_client.call(
            method,
            body,
            on_reply=lambda _rep: respond(result),
            on_timeout=lambda: respond(result),  # degrade to async, stay up
            timeout=0.5,
        )

    # -- resync journal ----------------------------------------------------

    def begin_resync_journal(self):
        """Start recording writes applied here, for replay onto a replica
        being re-synchronized (closes the snapshot()->load() lost-write
        window)."""
        self._resync_journal = []

    def end_resync_journal(self):
        journal = self._resync_journal or []
        self._resync_journal = None
        return journal

    def _apply(self, method, body):
        if self._resync_journal is not None and method in WRITE_METHODS:
            self._resync_journal.append((method, body))
        if method == "get":
            return {"value": self.store.get(body["key"])}
        if method == "mget":
            return {"values": self.store.mget(body["keys"])}
        if method == "set":
            self.store.set(body["key"], body["value"])
            return {"ok": True}
        if method == "mset":
            self.store.mset(body["items"])
            return {"ok": True}
        if method == "delete":
            return {"removed": self.store.delete(body["keys"])}
        if method == "scan":
            return {"pairs": self.store.scan(body["prefix"])}
        if method == "ping":
            return {"pong": True}
        return {"error": f"unknown method {method!r}"}

    # -- failure levers ----------------------------------------------------

    def fail(self, permanent=False):
        """Kill the server.  ``permanent=True`` marks it beyond the reach
        of :meth:`recover` — only an operator :meth:`reboot` brings it
        back (a chaos blip's scheduled recovery must not resurrect a
        primary the failover machinery already wrote off)."""
        self.failed = True
        self._permanent = self._permanent or permanent

    def recover(self):
        if self._permanent:
            return
        self.failed = False

    def reboot(self):
        """Operator-level restart: clears even a permanent failure.  The
        store contents survive (RAM-intact model, consistent with
        fail/recover); the epoch fence installed at promotion does not
        reset, so a stale rebooted primary still rejects old writes."""
        self._permanent = False
        self.failed = False

    def close(self):
        self.rpc.close()
        if self._replica_client is not None:
            self._replica_client.close()
