"""Baseline (non-NSR) failure recovery: the bracketed Table 1 numbers.

"other BGP implementations require the engineer to manually reboot the
BGP process or the machine, which is very time-consuming.  The only
exception is the host network failure where they do not reboot but wait
for the network to recover and then reconnect."

These durations are *link downtime*: the peer withdrew the routes the
moment the failure was detected and gets them back only after the full
manual recovery plus BGP re-convergence.
"""

from repro.sim.calibration import (
    BASELINE_BGP_RECOVERY,
    BASELINE_MANUAL_DETECT,
    BASELINE_MANUAL_REBOOT,
    BASELINE_TCP_RECONNECT,
)


def baseline_recovery_row(failure_kind, workload_factor=1.0):
    """Table 1 bracketed row for one failure kind.

    ``workload_factor`` scales the BGP recovery phase: "in case of high
    workload, it might take other implementations several minutes to
    recover" (re-convergence is table-size dependent).
    Container failures return None throughout — "Container failure is
    unique to TENSOR since no virtualization is used in other BGP
    implementations."
    """
    if failure_kind == "container":
        return {
            "failure": failure_kind,
            "detection": None,
            "initiate": None,
            "migration": None,
            "recovery": None,
            "total": None,
        }
    detection = BASELINE_MANUAL_DETECT[failure_kind]
    reboot = BASELINE_MANUAL_REBOOT[failure_kind]
    reconnect = BASELINE_TCP_RECONNECT[failure_kind]
    recovery = BASELINE_BGP_RECOVERY[failure_kind] * workload_factor
    return {
        "failure": failure_kind,
        "detection": detection,
        "initiate": reboot,  # manual reboot fills the "initiate" column
        "migration": reconnect,
        "recovery": recovery,
        "total": detection + reboot + reconnect + recovery,
    }
