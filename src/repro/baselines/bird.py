"""BIRD profile: packing, but per-peer bookkeeping grows with peer count."""

from repro.baselines.daemon import BaselineDaemon


class BirdDaemon(BaselineDaemon):
    """BIRD stand-in (profile "bird")."""

    profile = "bird"
    display_name = "BIRD"
