"""FRRouting profile: the fastest receive path of Fig. 6(a)."""

from repro.baselines.daemon import BaselineDaemon


class FrrDaemon(BaselineDaemon):
    """FRRouting stand-in (profile "frr")."""

    profile = "frr"
    display_name = "FRRouting"
