"""Baseline BGP implementations and comparison models.

FRRouting, GoBGP and BIRD stand-ins share the repository's BGP stack but
carry per-implementation processing profiles calibrated to Fig. 6 (and
GoBGP's missing update packing).  None of them support NSR: on failure
the session drops, routes are withdrawn, and recovery is the manual
process Table 1 brackets.  The NSR-enabled hardware router appears as a
cost/SLA model (Table 2).
"""

from repro.baselines.daemon import BaselineDaemon
from repro.baselines.frr import FrrDaemon
from repro.baselines.gobgp import GoBgpDaemon
from repro.baselines.bird import BirdDaemon
from repro.baselines.nsr_router import NsrEnabledRouter
from repro.baselines.recovery_model import baseline_recovery_row

__all__ = [
    "BaselineDaemon",
    "FrrDaemon",
    "GoBgpDaemon",
    "BirdDaemon",
    "NsrEnabledRouter",
    "baseline_recovery_row",
]
