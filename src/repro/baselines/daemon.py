"""A baseline open-source BGP daemon on a plain host (no NSR).

§4.2: "these open-source BGP implementations do not support BGP NSR.
Despite that, we used them as a reference of comparison because they
have very similar performance to our original BGP program without the
NSR capability."
"""

from repro.bfd.process import BfdProcess
from repro.bgp.peer import PeerConfig
from repro.bgp.speaker import BgpSpeaker, SpeakerConfig
from repro.tcpsim.stack import TcpStack


class BaselineDaemon:
    """One open-source BGP daemon: host + TCP stack + speaker (+ BFD)."""

    profile = "frr"
    display_name = "baseline"

    def __init__(self, engine, network, name, address, local_as, router_id=None,
                 rng=None, graceful_restart_time=None, with_bfd=False):
        self.engine = engine
        self.network = network
        self.name = name
        self.host = network.add_host(name, address)
        self.stack = TcpStack(engine, self.host)
        self.speaker = BgpSpeaker(
            engine,
            self.stack,
            SpeakerConfig(
                name,
                local_as,
                router_id or address,
                profile=self.profile,
                graceful_restart_time=graceful_restart_time,
            ),
        )
        self.bfd = BfdProcess(engine, self.host, rng=rng) if with_bfd else None

    def add_vrf(self, name):
        return self.speaker.add_vrf(name)

    def add_peer(self, remote_addr, remote_as, vrf_name="default", mode="active",
                 hold_time=90, keepalive_interval=30, **kwargs):
        return self.speaker.add_peer(
            PeerConfig(
                remote_addr,
                remote_as,
                vrf_name=vrf_name,
                mode=mode,
                hold_time=hold_time,
                keepalive_interval=keepalive_interval,
                **kwargs,
            )
        )

    def start(self):
        self.speaker.start()
        if self.bfd is not None:
            self.bfd.start()

    def crash(self):
        """Process/machine death: session drops, peers withdraw routes."""
        self.speaker.crash()
        self.stack.destroy()
        if self.bfd is not None:
            self.bfd.crash()

    def connect_to(self, other_host, bandwidth=100e9, latency=100e-6, loss=0.0):
        return self.network.connect(
            self.host, other_host, latency=latency, bandwidth=bandwidth, loss=loss
        )

    def __repr__(self):
        return f"<{type(self).__name__} {self.name!r}>"
