"""GoBGP profile: no update packing (the Fig. 6(c) outlier)."""

from repro.baselines.daemon import BaselineDaemon


class GoBgpDaemon(BaselineDaemon):
    """GoBGP stand-in (profile "gobgp": regenerates updates per peer)."""

    profile = "gobgp"
    display_name = "GoBGP"
