"""The NSR-enabled hardware router (Comware-class), as a cost/SLA model.

The paper compares TENSOR against commercial NSR-enabled routers on SLA
(both "(Online) Seconds") and on development/deployment/maintenance
costs (Table 2, §4.4).  We cannot run vendor firmware; the router is a
documented model whose recovery behaviour mirrors TENSOR's SLA class and
whose costs carry the paper's reported figures.
"""

from repro.sim.calibration import SOLUTION_COSTS


class NsrEnabledRouter:
    """Cost and SLA model of a commercial NSR-enabled router."""

    def __init__(self):
        self.costs = SOLUTION_COSTS["nsr_router"]

    @property
    def recovery_class(self):
        return self.costs["recovery"]  # "(Online) Seconds"

    def recovery_time_seconds(self, failure_kind):
        """Order-of-seconds online recovery, like TENSOR's SLA."""
        return {
            "application": 2.5,
            "host_machine": 8.0,
            "host_network": 8.0,
        }.get(failure_kind, 5.0)

    def link_downtime_seconds(self, _failure_kind):
        """NSR-enabled: recovery is transparent to peers."""
        return 0.0

    def development_cost(self):
        return {
            "time_months": self.costs["dev_time_months"],
            "labor_man_months": self.costs["dev_labor_man_months"],
            "lines_of_code": self.costs["loc"],
        }

    def deployment_cost_usd(self):
        return self.costs["deploy_cost_usd"]

    def maintenance_man_hours_per_month(self):
        return self.costs["maintenance_man_hours_per_month"]
