"""Bidirectional Forwarding Detection (RFC 5880, asynchronous mode).

§3.3.2: "Each BGP process connection is associated with a BFD process.
In TENSOR, it means that each container runs one BFD process.  BFD also
supports VRF where its VRFs are one-to-one mapped to the VRFs in the BGP
process."  Tencent's gateway uses 100 ms x 3 detection.

The package also provides the transmit-only relay sessions the agent
server runs (§3.3.2 "the agent server runs duplicate BFD processes for
all the containers on other machines") — the split-brain cure.
"""

from repro.bfd.packet import BfdPacket, BfdState
from repro.bfd.session import BfdSession
from repro.bfd.process import BfdProcess, BfdRelay

__all__ = ["BfdPacket", "BfdState", "BfdSession", "BfdProcess", "BfdRelay"]
