"""The per-container BFD process and the agent-side relay.

:class:`BfdProcess` runs real two-way sessions (one per VRF, mapped
one-to-one onto the BGP process's VRFs).  :class:`BfdRelay` is the agent
server's transmit-only duplicate: it keeps emitting UP keepalives with
the primary's discriminators and *source address* so that "the remote
end-host does not acknowledge the local failures" while the primary is
being migrated (§3.3.2).
"""

from repro.bfd.packet import BFD_PACKET_SIZE, BFD_PORT, BfdPacket, BfdState
from repro.bfd.session import BfdSession
from repro.sim.calibration import BFD_DETECT_MULT, BFD_TX_INTERVAL
from repro.sim.process import Timer
from repro.sim.rpc import DatagramSocket


class BfdProcess:
    """All BFD sessions of one container (one per VRF)."""

    def __init__(self, engine, host, rng=None, port=BFD_PORT):
        self.engine = engine
        self.host = host
        self.port = port
        self.rng = rng
        self.socket = DatagramSocket(host, port, protocol="udp")
        self.socket.on_receive = self._on_datagram
        self.sessions = {}  # (vrf, remote_addr) -> BfdSession
        self.alive = True

    def add_session(self, vrf, remote_addr, on_state_change=None,
                    tx_interval=BFD_TX_INTERVAL, detect_mult=BFD_DETECT_MULT,
                    my_disc=None, your_disc=0, initial_state=None):
        session = BfdSession(
            self.engine,
            self._transmit,
            vrf,
            remote_addr,
            tx_interval=tx_interval,
            detect_mult=detect_mult,
            on_state_change=on_state_change,
            rng=self.rng,
            my_disc=my_disc,
            your_disc=your_disc,
            initial_state=initial_state if initial_state is not None else 1,
        )
        self.sessions[(vrf, remote_addr)] = session
        return session

    def start(self):
        for session in self.sessions.values():
            session.start()

    def _transmit(self, remote_addr, packet):
        if self.alive:
            self.socket.sendto(remote_addr, self.port, packet, size=BFD_PACKET_SIZE)

    def _on_datagram(self, src_addr, _src_port, packet):
        if not self.alive:
            return
        session = self.sessions.get((packet.vrf, src_addr))
        if session is not None:
            session.on_packet(packet)

    def session_states(self):
        return {key: session.state for key, session in self.sessions.items()}

    def crash(self):
        """Process death: all sessions stop transmitting at once."""
        self.alive = False
        for session in self.sessions.values():
            session.crash()

    def stop(self):
        self.alive = False
        for session in self.sessions.values():
            session.stop()
        self.socket.close()

    def export_relay_specs(self):
        """What the agent needs to mimic our sessions: one spec per VRF."""
        return [
            {
                "vrf": session.vrf,
                "remote_addr": session.remote_addr,
                "source_addr": self.host.address,
                "my_disc": session.my_disc,
                "your_disc": session.your_disc,
                "tx_interval": session.tx_interval,
                "detect_mult": session.detect_mult,
            }
            for session in self.sessions.values()
        ]


class BfdRelay:
    """A transmit-only BFD duplicate running on the agent server.

    It emits UP control packets for one primary container's sessions,
    spoofing the primary's service address.  While the primary is alive
    both transmit concurrently (harmless: the remote just sees a faster
    aggregate rate); when the primary dies the relay alone keeps the
    remote's detection timer from expiring.
    """

    def __init__(self, engine, host, specs, port=BFD_PORT, rng=None):
        self.engine = engine
        self.host = host
        self.port = port
        self.rng = rng
        self.socket = DatagramSocket(host, _relay_port(engine), protocol="udp")
        self.specs = list(specs)
        self._timers = []
        self.running = False
        self.packets_sent = 0

    def start(self):
        self.running = True
        for spec in self.specs:
            timer = Timer(self.engine, lambda s=spec: self._tx(s), "bfd-relay")
            self._timers.append((timer, spec))
            timer.start(0.0)

    def _tx(self, spec):
        if not self.running:
            return
        packet = BfdPacket(
            state=BfdState.UP,
            my_disc=spec["my_disc"],
            your_disc=spec["your_disc"],
            desired_min_tx=spec["tx_interval"],
            required_min_rx=spec["tx_interval"],
            detect_mult=spec["detect_mult"],
            vrf=spec["vrf"],
        )
        self.packets_sent += 1
        self.socket.sendto(
            spec["remote_addr"],
            self.port,
            packet,
            size=BFD_PACKET_SIZE,
            src_override=spec["source_addr"],
        )
        jitter = self._jitter()
        for timer, timer_spec in self._timers:
            if timer_spec is spec:
                timer.start(spec["tx_interval"] * (1.0 - jitter))
                return

    def _jitter(self):
        return self.rng.random() * 0.25 if self.rng else 0.125

    def update_specs(self, specs):
        """Refresh relayed sessions (e.g. after the primary re-registers)."""
        self.stop()
        self.specs = list(specs)
        self.start()

    def stop(self):
        self.running = False
        for timer, _spec in self._timers:
            timer.stop()
        self._timers.clear()


def _relay_port(engine, base=34784):
    """Relays source packets from distinct local ports (they never need
    replies; the spoofed source address is the point).  Engine-scoped so
    co-hosted simulations never share allocation state."""
    return base + ((40001 + engine.next_id("bfd.relay_port")) % 20000)
