"""One BFD session (asynchronous mode state machine)."""

from repro.bfd.packet import BfdPacket, BfdState
from repro.sim.calibration import BFD_DETECT_MULT, BFD_TX_INTERVAL
from repro.sim.process import Timer


class BfdSession:
    """Asynchronous-mode BFD with a remote peer in one VRF.

    ``on_state_change(session, old_state, new_state)`` is the IPC the BGP
    process subscribes to ("The BFD process will report the link failure
    (of the corresponding VRF) to the BGP process through inter-process
    communication", §3.3.2).
    """

    def __init__(
        self,
        engine,
        transmit,
        vrf,
        remote_addr,
        tx_interval=BFD_TX_INTERVAL,
        detect_mult=BFD_DETECT_MULT,
        on_state_change=None,
        rng=None,
        my_disc=None,
        your_disc=0,
        initial_state=BfdState.DOWN,
    ):
        self.engine = engine
        self._transmit = transmit  # fn(remote_addr, BfdPacket)
        self.vrf = vrf
        self.remote_addr = remote_addr
        self.tx_interval = tx_interval
        self.detect_mult = detect_mult
        self.on_state_change = on_state_change
        self._rng = rng

        # A recovered backup must reuse the failed primary's
        # discriminators and resume in UP, or the remote would see a
        # session bounce — the transparency NSR requires.
        self.state = BfdState(initial_state)
        # Discriminators are engine-scoped (unique within one simulated
        # deployment) rather than process-global, so a simulation's wire
        # state never depends on what else shares its OS process.
        self.my_disc = (
            my_disc if my_disc is not None else engine.next_id("bfd.disc", 1)
        )
        self.your_disc = your_disc
        self.remote_min_rx = tx_interval

        self._tx_timer = Timer(engine, self._on_tx_due, "bfd-tx")
        self._detect_timer = Timer(engine, self._on_detect_expired, "bfd-detect")
        self.running = False
        self.packets_sent = 0
        self.packets_received = 0
        self.state_changes = []  # (time, old, new)
        self.last_up_at = None
        self.last_down_at = None

    # ------------------------------------------------------------------

    @property
    def detection_time(self):
        return self.detect_mult * max(self.tx_interval, self.remote_min_rx)

    def start(self):
        self.running = True
        self._schedule_tx(immediate=True)

    def stop(self):
        """Administrative stop (not a crash — no DOWN is signalled)."""
        self.running = False
        self._tx_timer.stop()
        self._detect_timer.stop()

    def crash(self):
        """Process death: transmissions simply cease."""
        self.stop()

    # ------------------------------------------------------------------
    # transmit
    # ------------------------------------------------------------------

    def _schedule_tx(self, immediate=False):
        if not self.running:
            return
        if immediate:
            delay = 0.0
        else:
            # RFC 5880 §6.8.7: jitter the interval by 0-25% to avoid
            # self-synchronization.
            jitter = self._rng.random() * 0.25 if self._rng else 0.125
            delay = self.tx_interval * (1.0 - jitter)
        self._tx_timer.start(delay)

    def _on_tx_due(self):
        if not self.running:
            return
        self.packets_sent += 1
        self._transmit(self.remote_addr, self._make_packet())
        self._schedule_tx()

    def _make_packet(self):
        return BfdPacket(
            state=self.state,
            my_disc=self.my_disc,
            your_disc=self.your_disc,
            desired_min_tx=self.tx_interval,
            required_min_rx=self.tx_interval,
            detect_mult=self.detect_mult,
            vrf=self.vrf,
        )

    # ------------------------------------------------------------------
    # receive
    # ------------------------------------------------------------------

    def on_packet(self, packet):
        if not self.running:
            return
        self.packets_received += 1
        self.your_disc = packet.my_disc
        self.remote_min_rx = packet.required_min_rx
        if packet.state is BfdState.ADMIN_DOWN:
            self._set_state(BfdState.DOWN)
            return
        self._detect_timer.restart(self.detection_time)
        if self.state is BfdState.DOWN:
            if packet.state is BfdState.DOWN:
                self._set_state(BfdState.INIT)
            elif packet.state is BfdState.INIT:
                self._set_state(BfdState.UP)
        elif self.state is BfdState.INIT:
            if packet.state in (BfdState.INIT, BfdState.UP):
                self._set_state(BfdState.UP)
        elif self.state is BfdState.UP:
            if packet.state is BfdState.DOWN:
                self._set_state(BfdState.DOWN)

    def _on_detect_expired(self):
        if self.state is not BfdState.DOWN:
            self._set_state(BfdState.DOWN)

    def _set_state(self, new_state):
        if new_state is self.state:
            return
        old, self.state = self.state, new_state
        self.state_changes.append((self.engine.now, old, new_state))
        if new_state is BfdState.UP:
            self.last_up_at = self.engine.now
        elif old is BfdState.UP:
            self.last_down_at = self.engine.now
        if self.on_state_change is not None:
            self.on_state_change(self, old, new_state)
        # A state change warrants an immediate transmit so the peer
        # converges fast (poll sequence simplified away).
        if self.running:
            self._schedule_tx(immediate=True)

    def __repr__(self):
        return f"<BfdSession vrf={self.vrf} peer={self.remote_addr} {self.state.name}>"
