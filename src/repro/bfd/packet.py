"""BFD control packet (RFC 5880 §4.1, simplified fields).

Simplification: instead of demultiplexing purely on discriminators, the
packet carries the VRF name explicitly.  Real BFD bootstraps the mapping
with your_discr=0 packets; carrying the VRF keeps the demux logic out of
the way of what the paper evaluates while preserving the discriminator
handshake for state validation.
"""

import enum

BFD_PORT = 3784
BFD_PACKET_SIZE = 66  # Ethernet+IP+UDP headers + 24-byte BFD control


class BfdState(enum.IntEnum):
    ADMIN_DOWN = 0
    DOWN = 1
    INIT = 2
    UP = 3


class BfdPacket:
    """One BFD control packet."""

    __slots__ = (
        "state",
        "my_disc",
        "your_disc",
        "desired_min_tx",
        "required_min_rx",
        "detect_mult",
        "vrf",
    )

    def __init__(
        self,
        state,
        my_disc,
        your_disc,
        desired_min_tx,
        required_min_rx,
        detect_mult,
        vrf,
    ):
        self.state = BfdState(state)
        self.my_disc = my_disc
        self.your_disc = your_disc
        self.desired_min_tx = desired_min_tx
        self.required_min_rx = required_min_rx
        self.detect_mult = detect_mult
        self.vrf = vrf

    def __repr__(self):
        return (
            f"<BfdPacket {self.state.name} my={self.my_disc}"
            f" your={self.your_disc} vrf={self.vrf}>"
        )
