"""CLI: python -m repro.fuzz (DESIGN.md §13).

Modes:

- default — run a coverage-guided campaign and print the novel keys:
  ``python -m repro.fuzz --iterations 15 --seed 0``
- ``--smoke`` — three fixed seeds with capped horizons, no baseline
  (the bounded gate wired into ``make verify``);
- ``--write-manifest PATH`` — run the campaign *and* the chaos corpus
  baseline, then persist both as the checked-in regression manifest;
- ``--replay PATH`` — re-run every manifest entry and check its
  coverage key still matches (the corpus regression check).

Exit codes: 0 ok; 1 violations found (repros written) or a replay
mismatch; 2 partial runs (no verdict for the uncovered tail).
"""

import argparse
import sys

from repro.failures.chaos import (
    CORPUS_SEEDS,
    DB_FAILOVER_CORPUS_SEEDS,
    TRACED_CORPUS_SEEDS,
)
from repro.fuzz.coverage import chaos_baseline_profiles, coverage_key, run_profile
from repro.fuzz.build import run_fuzz_spec
from repro.fuzz.loop import (
    fuzz_loop,
    load_manifest,
    manifest_entries,
    save_manifest,
)

SMOKE_SEEDS = (101, 102, 103)
SMOKE_HORIZON = 45.0


def _smoke(out_dir):
    """Three fixed seeds, capped horizon: the <=30 s verify gate."""
    failures = partial = 0
    for seed in SMOKE_SEEDS:
        report = fuzz_loop(
            seed=seed, iterations=1, out_dir=out_dir,
            max_duration=SMOKE_HORIZON, tracing=False,
        )
        failures += len(report.violations)
        partial += report.partial
    print(f"fuzz-smoke: {len(SMOKE_SEEDS)} seeds,"
          f" {failures} violation(s), {partial} partial")
    if failures:
        return 1
    return 2 if partial else 0


def _replay(path):
    manifest = load_manifest(path)
    baseline_keys = set(manifest["baseline"])
    mismatches = novel = 0
    for spec, expected_key, _profile in manifest_entries(manifest):
        result = run_fuzz_spec(spec, tracing=True)
        key = coverage_key(run_profile(result))
        ok = key == expected_key
        mismatches += not ok
        novel += expected_key not in baseline_keys
        print(f"seed {spec.seed}: key {key}"
              f" {'==' if ok else '!='} manifest {expected_key}")
    print(f"replayed {len(manifest['entries'])} entries,"
          f" {novel} novel vs baseline, {mismatches} mismatch(es)")
    return 1 if mismatches else 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Coverage-guided config/topology fuzzing (DESIGN.md §13)"
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign seed (spec seeds derive from it)")
    parser.add_argument("--iterations", type=int, default=10)
    parser.add_argument("--smoke", action="store_true",
                        help="bounded 3-seed gate for make verify")
    parser.add_argument("--write-manifest", default=None, metavar="PATH",
                        help="persist campaign + chaos baseline as the"
                             " regression manifest")
    parser.add_argument("--replay", default=None, metavar="PATH",
                        help="re-run a manifest and verify coverage keys")
    parser.add_argument("--no-tracing", action="store_true",
                        help="drop the phase-shape coverage axis (faster)")
    parser.add_argument("--out", default=".", help="repro script directory")
    args = parser.parse_args(argv)

    if args.smoke:
        return _smoke(args.out)
    if args.replay:
        return _replay(args.replay)

    baseline = {}
    if args.write_manifest:
        print("computing chaos-corpus coverage baseline"
              f" (seeds {CORPUS_SEEDS + TRACED_CORPUS_SEEDS + DB_FAILOVER_CORPUS_SEEDS})...")
        baseline = chaos_baseline_profiles(
            plain=CORPUS_SEEDS,
            traced=TRACED_CORPUS_SEEDS,
            db_failover=DB_FAILOVER_CORPUS_SEEDS,
        )
        print(f"baseline: {len(baseline)} distinct coverage key(s)")

    report = fuzz_loop(
        seed=args.seed,
        iterations=args.iterations,
        baseline_keys=set(baseline),
        tracing=not args.no_tracing,
        out_dir=args.out,
    )
    novel = report.novel_keys(set(baseline))
    print(
        f"campaign seed {args.seed}: {report.runs} runs,"
        f" {len(report.corpus)} corpus entries"
        + (f", {len(novel)} novel vs chaos baseline" if baseline else "")
        + f", {len(report.violations)} violation(s)"
    )
    if args.write_manifest:
        save_manifest(args.write_manifest, report, baseline)
        print(f"manifest written to {args.write_manifest}"
              f" ({len(novel)} novel keys)")
    if report.violations:
        return 1
    return 2 if report.partial else 0


if __name__ == "__main__":
    sys.exit(main())
