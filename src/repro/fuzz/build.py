"""Materialize a FuzzSpec into a TensorSystem and run it under oracles.

The builder hook lives next to ``chaos._build_system`` in spirit: one
pure function of the spec.  The differences the fuzzer introduces —
multiple split pairs from :func:`~repro.core.splitting.plan_split`,
per-neighbor BFD/MRAI timers, routing policies — each get their own
knob threaded through the existing :class:`PeerNeighborSpec` /
``create_pair`` surface, so a fuzz topology is an ordinary deployment
the config loader could also have built.

Each pair gets its own :class:`FuzzOracleSuite` (the wire-tap ACK oracle
filters by service address, so suites do not cross-talk); convergence is
judged against workload intent *filtered through the import policies*,
keeping the oracle a pure model even when a policy censors a block.
"""

from repro.bgp.policy import policy_from_dict
from repro.core.system import PeerNeighborSpec, TensorSystem
from repro.failures.chaos import CHECK_QUANTUM
from repro.failures.injector import FailureInjector
from repro.failures.oracles import OracleSuite
from repro.fuzz.spec import FuzzSpec, generate_fuzz_spec, validate_fuzz_spec
from repro.sim.rand import DeterministicRandom
from repro.workloads.topology import build_remote_peer
from repro.workloads.updates import RouteGenerator


class FuzzOracleSuite(OracleSuite):
    """An OracleSuite whose convergence model is policy-aware.

    ``import_policies[i]`` is the gateway's import RouteMap towards
    remote ``i`` (or None).  The expected Loc-RIB is the live originated
    set *minus* whatever the import policy denies — evaluated on the
    recorded origination attributes, never read back from the system.
    """

    def __init__(self, system, pair, remotes, import_policies, **kwargs):
        super().__init__(system, pair, remotes, **kwargs)
        self.import_policies = list(import_policies)
        # prefix_str -> (Prefix, PathAttributes) per remote, recorded at
        # origination time so policy evaluation replays the intent
        self.attrs = [dict() for _ in self.remotes]

    def note_originate_routes(self, remote_index, routes):
        recorded = self.attrs[remote_index]
        for prefix, attributes in routes:
            recorded[str(prefix)] = (prefix, attributes)
        self.note_originate(remote_index, [p for p, _a in routes])

    def _accepted(self, remote_index):
        """The live set of ``remote_index`` after the gateway's import
        policy — what the Loc-RIB (and other peers) should see."""
        policy = self.import_policies[remote_index]
        live = self.live[remote_index]
        if policy is None:
            return set(live)
        recorded = self.attrs[remote_index]
        accepted = set()
        for prefix_str in live:
            prefix, attributes = recorded[prefix_str]
            if policy.evaluate(prefix, attributes) is not None:
                accepted.add(prefix_str)
        return accepted

    def _check_convergence(self, _now):
        if any(self.live):
            self.exercised.add("convergence")
        expected_by_vrf = {}
        for index, vrf_name in enumerate(self.vrfs):
            expected_by_vrf.setdefault(vrf_name, set()).update(
                self._accepted(index)
            )
        for vrf_name, expected in expected_by_vrf.items():
            vrf = self.pair.speaker.vrfs.get(vrf_name)
            actual = set() if vrf is None else {
                str(prefix) for prefix in vrf.loc_rib.prefixes()
            }
            if actual != expected:
                missing = sorted(expected - actual)[:3]
                extra = sorted(actual - expected)[:3]
                self._violate(
                    "convergence",
                    f"gateway Loc-RIB[{vrf_name}] has {len(actual)} prefixes,"
                    f" oracle RIB has {len(expected)}"
                    f" (missing={missing} extra={extra})",
                )
        for index, (remote, session) in enumerate(self.remotes):
            vrf_name = self.vrfs[index]
            others = set()
            for other_index, other_vrf in enumerate(self.vrfs):
                if other_index != index and other_vrf == vrf_name:
                    others.update(self._accepted(other_index))
            if not others:
                continue
            remote_vrf = remote.speaker.vrfs.get(session.config.vrf_name)
            actual = set() if remote_vrf is None else {
                str(prefix) for prefix in remote_vrf.loc_rib.prefixes()
            }
            missing = others - actual
            if missing:
                self._violate(
                    "convergence",
                    f"remote{index} is missing {len(missing)} cross-peer"
                    f" prefix(es), e.g. {sorted(missing)[:3]}",
                )


class FuzzResult:
    """Outcome of one spec run: per-pair suites, aggregated verdicts."""

    def __init__(self, spec, suites, system, events_executed, completed):
        self.spec = spec
        self.suites = suites
        self.system = system
        self.events_executed = events_executed
        self.completed = completed

    @property
    def partial(self):
        return not self.completed

    @property
    def violations(self):
        merged = [v for suite in self.suites for v in suite.violations]
        merged.sort(key=lambda violation: violation.time)
        return merged

    @property
    def first_violation(self):
        violations = self.violations
        return violations[0] if violations else None

    def verdict_bitmap(self):
        """Per-oracle (tripped, exercised) merged across every suite."""
        merged = {}
        for suite in self.suites:
            for name, tripped in suite.verdict_bitmap():
                merged[name] = merged.get(name, False) or tripped
        return tuple(sorted(merged.items()))

    def summary(self):
        violations = self.violations
        if not violations:
            return "all oracles passed"
        head = violations[0]
        return (
            f"{len(violations)} violation(s); first: {head.oracle}"
            f" @{head.time:.3f} — {head.detail}"
        )


class _FuzzWorkloadDriver:
    """Chaos-style burst driver routed to the right pair's suite."""

    def __init__(self, spec, remotes, suite_of_remote, rand):
        self.remotes = remotes
        self.suite_of_remote = suite_of_remote  # global idx -> (suite, local idx)
        # uniform layouts share one attribute set per burst — the
        # DRAGON-aggregatable shape (DESIGN.md §14)
        self.uniform = spec.aggregation_layout in ("uniform", "snapshot")
        self.gens = [
            RouteGenerator(
                rand.fork(f"workload:{index}"),
                64512 + index,
                next_hop=spec.remote_addr(index),
            )
            for index in range(len(remotes))
        ]

    def fire(self, event):
        index = event["remote"]
        remote, session = self.remotes[index]
        suite, local = self.suite_of_remote[index]
        vrf_name = session.config.vrf_name
        gen = self.gens[index]
        if event["action"] == "advertise":
            make_routes = gen.uniform_routes if self.uniform else gen.routes
            routes = make_routes(
                event["count"], base=event["base"], length=event["length"]
            )
            for prefix, attributes in routes:
                remote.speaker.originate(vrf_name, prefix, attributes)
            suite.note_originate_routes(local, routes)
        else:
            prefixes = gen.prefixes(
                event["count"], base=event["base"], length=event["length"]
            )
            live = suite.live[local]
            withdrawn = [p for p in prefixes if str(p) in live]
            for prefix in withdrawn:
                remote.speaker.withdraw_originated(vrf_name, prefix)
            suite.note_withdraw(local, withdrawn)


def build_fuzz_system(spec, hold_acks=True, tracing=False):
    """A converged system for ``spec``: one TensorPair per planned split
    container at ``10.10.<p>.1``, remotes linked to both machines.

    Returns ``(system, pairs, remotes)`` where ``pairs`` is the ordered
    list of ``(pair, [global neighbor indices])``.
    """
    validate_fuzz_spec(spec)
    system = TensorSystem(
        seed=spec.seed, hold_acks=hold_acks, tracing=tracing
    )
    m1 = system.add_machine("gw-1", "10.1.0.1")
    m2 = system.add_machine("gw-2", "10.2.0.1")
    plan = spec.split_plan()
    addr_to_index = {
        spec.remote_addr(index): index
        for index in range(len(spec.neighbors))
    }
    pairs = []
    for p, assignment in enumerate(plan.assignments):
        members = [addr_to_index[peering.remote_addr]
                   for peering in assignment.peerings]
        specs = []
        for index in members:
            neighbor = spec.neighbors[index]
            specs.append(PeerNeighborSpec(
                spec.remote_addr(index),
                neighbor["remote_as"],
                vrf_name=neighbor["vrf"],
                mode="passive",
                hold_time=neighbor["hold_time"],
                keepalive_interval=neighbor["keepalive_interval"],
                bfd_tx_interval=neighbor["bfd_tx_interval"],
                bfd_detect_mult=neighbor["bfd_detect_mult"],
                mrai=neighbor["mrai"],
                import_policy=policy_from_dict(neighbor["import_policy"]),
                export_policy=policy_from_dict(neighbor["export_policy"]),
            ))
        pair = system.create_pair(
            f"pair{p}", m1, m2,
            service_addr=f"10.10.{p}.1",
            local_as=65001,
            router_id=f"10.10.{p}.1",
            neighbors=specs,
            mrai=spec.mrai,
            mrai_mode=spec.mrai_mode,
            aggregate_snapshots=spec.aggregation_layout == "snapshot",
        )
        pairs.append((pair, members))

    remotes = []
    pair_of_index = {}
    for pair, members in pairs:
        for index in members:
            pair_of_index[index] = pair
    for index, neighbor in enumerate(spec.neighbors):
        remote = build_remote_peer(
            system, f"remote{index}", spec.remote_addr(index),
            neighbor["remote_as"], link_machines=[m1, m2],
        )
        session = remote.peer_with(
            pair_of_index[index].service_addr, 65001,
            vrf_name=neighbor["vrf"], mode="active",
            hold_time=neighbor["hold_time"],
            keepalive_interval=neighbor["keepalive_interval"],
        )
        remotes.append((remote, session))

    for pair, _members in pairs:
        pair.start()
    for remote, _session in remotes:
        remote.start()
    system.engine.advance(10.0)
    return system, pairs, remotes


class FuzzPreparedRun:
    """Built, converged, armed — the fuzz twin of chaos ``_PreparedRun``,
    driving N pairs' suites from one schedule."""

    def __init__(self, spec, hold_acks=True, stop_on_violation=True,
                 tracing=False):
        self.spec = spec
        rand = DeterministicRandom(spec.seed)
        self.system, self.pairs, self.remotes = build_fuzz_system(
            spec, hold_acks=hold_acks, tracing=tracing
        )
        engine = self.system.engine
        self.suites = []
        suite_of_remote = {}
        for pair, members in self.pairs:
            pair_remotes = [self.remotes[index] for index in members]
            suite = FuzzOracleSuite(
                self.system, pair, pair_remotes,
                [policy_from_dict(spec.neighbors[index]["import_policy"])
                 for index in members],
                stop_on_violation=stop_on_violation,
            )
            self.suites.append(suite)
            for local, index in enumerate(members):
                suite_of_remote[index] = (suite, local)
        self.driver = _FuzzWorkloadDriver(
            spec, self.remotes, suite_of_remote, rand
        )

        if spec.initial_routes:
            for index, (remote, session) in enumerate(self.remotes):
                gen = self.driver.gens[index]
                make_routes = (gen.uniform_routes if self.driver.uniform
                               else gen.routes)
                routes = make_routes(
                    spec.initial_routes, base=f"{10 + index}.248.0.0"
                )
                remote.speaker.originate_many(
                    session.config.vrf_name, routes
                )
                remote.speaker.readvertise(session)
                suite, local = suite_of_remote[index]
                recorded = suite.attrs[local]
                for prefix, attributes in routes:
                    recorded[str(prefix)] = (prefix, attributes)
                suite.live[local].update(
                    {str(prefix): True for prefix, _a in routes}
                )
            engine.advance(5.0)
        for suite in self.suites:
            suite.arm()

        self.injector = FailureInjector(self.system)
        for event in spec.injections:
            engine.schedule(event["at"], self._fire_injection, event)
        for event in spec.workload:
            engine.schedule(event["at"], self.driver.fire, event)

        self.deadline = engine.now + spec.duration
        self.executed = 0
        self.halted = False
        self._finished = False

    @property
    def engine(self):
        return self.system.engine

    def _fire_injection(self, event):
        """Resolve the pair and machine at fire time (roles swap)."""
        kind = event["scenario"]
        pair, _members = self.pairs[event.get("pair", 0)]
        machine = (
            pair.standby_machine if event["target"] == "standby"
            else pair.active_machine
        )
        # machine-level and agent scenarios affect every pair's oracle
        # model (fencing allowances, the BFD relay); pair-scoped ones
        # only the owning suite
        scoped = kind in ("application", "container", "container_network")
        for suite in self.suites:
            if scoped and suite.pair is not pair:
                continue
            suite.note_injection(
                kind, target_name=machine.name,
                duration=event["duration"] or 0.0,
            )
        if not scoped:
            for suite in self.suites:
                suite.note_activity()
        injector = self.injector
        if kind == "application":
            injector.application_failure(pair)
        elif kind == "container":
            injector.container_failure(pair)
        elif kind == "container_network":
            injector.container_network_failure(pair)
        elif kind == "host_machine":
            injector.host_machine_failure(machine)
        elif kind == "host_network":
            injector.host_network_failure(machine)
        elif kind == "transient_network":
            injector.transient_host_network_failure(machine, event["duration"])
        elif kind == "database_blip":
            injector.transient_database_failure(event["duration"])
        elif kind == "database_failover":
            injector.database_failover()
        elif kind == "agent":
            injector.agent_failure()
        else:
            raise ValueError(f"unknown fuzz scenario {kind!r}")

    def _check_all(self, now):
        for suite in self.suites:
            suite.check(now)

    def step_to(self, until):
        engine = self.system.engine
        target = min(until, self.deadline)
        if self.halted or target <= engine.now:
            return 0
        executed = engine.run_stepped(
            target, self._check_all, quantum=CHECK_QUANTUM
        )
        self.executed += executed
        if any(
            suite.stop_on_violation and suite.first_violation is not None
            for suite in self.suites
        ):
            self.halted = True
        return executed

    def finish(self):
        from repro.failures.chaos import _check_record_bookkeeping

        if not self._finished:
            self._finished = True
            _check_record_bookkeeping(self.injector, self.suites[0])
        completed = (
            self.halted
            or self.system.engine.now + 1e-9 >= self.deadline
        )
        return FuzzResult(
            self.spec, self.suites, self.system, self.executed, completed
        )


def run_fuzz_spec(spec, hold_acks=True, stop_on_violation=True,
                  tracing=False):
    """Replay ``spec`` under continuous oracles; pure function of
    ``(spec, hold_acks, tracing)`` like :func:`chaos.run_schedule`."""
    prepared = FuzzPreparedRun(
        spec, hold_acks=hold_acks,
        stop_on_violation=stop_on_violation, tracing=tracing,
    )
    prepared.step_to(prepared.deadline)
    return prepared.finish()


# ----------------------------------------------------------------------
# fuzz specs as parallel-runtime shards
# ----------------------------------------------------------------------

class FuzzShardProgram:
    """One fuzz spec as a *closed* shard, mirroring ChaosShardProgram:
    the parallel runtime distributes specs across workers while each
    run stays the bit-identical sequential execution."""

    def __init__(self, shard_id, params, boundary):
        spec_data = params.get("spec")
        spec = (
            FuzzSpec.from_dict(spec_data)
            if spec_data is not None
            else generate_fuzz_spec(params["seed"])
        )
        self.prepared = FuzzPreparedRun(
            spec,
            hold_acks=params.get("hold_acks", True),
            stop_on_violation=params.get("stop_on_violation", True),
            tracing=params.get("tracing", False),
        )
        self.engine = self.prepared.system.engine
        self._result = None

    def run_window(self, until):
        return self.prepared.step_to(until)

    def finalize(self):
        self._result = self.prepared.finish()

    def results(self):
        from repro.fuzz.coverage import coverage_key, run_profile

        result = self._result or self.prepared.finish()
        profile = run_profile(result)
        return {
            "seed": result.spec.seed,
            "verdict": result.summary(),
            "violations": tuple(
                (v.time, v.oracle, v.detail) for v in result.violations
            ),
            "rib": result.system.rib_digest(),
            "executed": result.events_executed,
            "completed": result.completed,
            "profile": profile,
            "coverage_key": coverage_key(profile),
        }


def build_fuzz_shard(shard_id, params, boundary):
    """Spawn-safe builder (``repro.fuzz.build:build_fuzz_shard``)."""
    return FuzzShardProgram(shard_id, params, boundary)


def fuzz_corpus_specs(specs, hold_acks=True, tracing=False):
    """ShardSpecs running one FuzzSpec per shard (all closed shards)."""
    from repro.sim.parallel.runtime import ShardSpec

    return [
        ShardSpec(
            f"fuzz{spec.seed}",
            "repro.fuzz.build:build_fuzz_shard",
            params={"spec": spec.to_dict(), "hold_acks": hold_acks,
                    "tracing": tracing},
        )
        for spec in specs
    ]
