"""FuzzSpec: one point in the config x topology x schedule space.

A spec fully determines a run — :func:`generate_fuzz_spec` and
:func:`mutate_fuzz_spec` are pure functions of their seeds, and
``build_fuzz_system`` materializes the spec deterministically — so every
corpus entry and every repro script replays bit-identically.

Composition rules extend the chaos engine's recoverable-by-design
guarantees to the new dimensions:

- same-VRF neighbors always land on the same split container (a VRF is
  one routing table; the split plan uses the VRF as the client key and
  sizes containers to the largest VRF group);
- machine-level failures only appear in single-pair layouts (multi-pair
  recovery storms are outside the paper's fault model);
- BFD timers keep detection (tx * mult) under the 3 s machine
  confirmation window;
- import policies only *deny by prefix block* and export policies only
  *rewrite attributes*, so the convergence oracle stays a pure function
  of workload intent.
"""

from repro.bgp.speaker import MRAI_MODES
from repro.core.splitting import PeeringSpec, plan_split
from repro.failures.chaos import HARD_SPACING, SETTLE_TAIL
from repro.sim.rand import DeterministicRandom

VRF_LAYOUTS = ("shared", "per_peer", "grouped")

#: Prefix-density of the workload bursts (DESIGN.md §14): how deep the
#: burst prefixes sit in the trie.  ``standard`` keeps the chaos /24
#: scheme, ``dense`` packs /26 more-specifics into the same blocks,
#: ``mixed`` cycles /24-/26 per block so covering and covered prefixes
#: coexist in one Loc-RIB.
PREFIX_DENSITIES = ("standard", "dense", "mixed")

#: Attribute layout across a burst, the aggregation axis (§14):
#: ``scattered`` draws per-route attributes from the generator pool,
#: ``uniform`` shares one attribute set per burst (the DRAGON best
#: case), ``snapshot`` additionally replicates with snapshot
#: aggregation enabled on every pair.
AGGREGATION_LAYOUTS = ("scattered", "uniform", "snapshot")

#: Injection kinds that require a full recovery before the next one.
HARD_KINDS = ("application", "container", "container_network",
              "host_machine", "host_network")

#: Blocks 0..3 (second octet 0, 8, 16, 24) are the burst address space a
#: deny policy may censor; initial routes preload at second octet 248,
#: far outside any censorable block.
DENY_BLOCKS = 4

#: A burst block owns 8 second-octet units of one /8; its prefixes must
#: never spill into the next block or the disjointness scheme breaks.
BLOCK_SPAN = 8 << 16


def burst_length(density, base):
    """The prefix length a burst at ``base`` uses under ``density``.

    Pure function of (density, base) so an advertise event and the
    withdraw that later pops its block always regenerate the same
    prefixes, and so mutations that flip the density can rewrite every
    event consistently."""
    if density == "standard":
        return 24
    if density == "dense":
        return 26
    block_index = int(base.split(".")[1]) // 8
    return (24, 25, 26)[block_index % 3]


class FuzzSpec:
    """One self-contained fuzz run; see the module docstring.

    ``neighbors`` entries (``remote_addr`` is derived from the index)::

        {"remote_as": 64512, "vrf": "v0", "hold_time": 90,
         "keepalive_interval": 30, "mrai": None | seconds,
         "bfd_tx_interval": None | seconds, "bfd_detect_mult": None | int,
         "import_policy": None | policy dict, "export_policy": ...}

    ``injections`` follow the chaos schema plus a ``"pair"`` index;
    ``workload`` entries are identical to the chaos schema.
    """

    def __init__(self, seed, neighbors=(), vrf_layout="per_peer",
                 mrai_mode="per_speaker", mrai=None,
                 max_peers_per_container=1, initial_routes=0,
                 injections=(), workload=(), duration=60.0,
                 prefix_density="standard", aggregation_layout="scattered"):
        self.seed = seed
        self.neighbors = [dict(neighbor) for neighbor in neighbors]
        self.vrf_layout = vrf_layout
        self.mrai_mode = mrai_mode
        self.mrai = mrai
        self.max_peers_per_container = max_peers_per_container
        self.initial_routes = initial_routes
        self.injections = [dict(event) for event in injections]
        self.workload = [dict(event) for event in workload]
        self.duration = duration
        self.prefix_density = prefix_density
        self.aggregation_layout = aggregation_layout

    # ------------------------------------------------------------------

    def remote_addr(self, index):
        return f"192.0.2.{index + 1}"

    def peerings(self):
        """The split-planner view: client = VRF, so same-VRF neighbors
        can never be torn across containers."""
        return [
            PeeringSpec(
                neighbor["vrf"], neighbor["remote_as"],
                self.remote_addr(index), vrf_name=neighbor["vrf"],
            )
            for index, neighbor in enumerate(self.neighbors)
        ]

    def split_plan(self):
        return plan_split(
            self.peerings(),
            max_peers_per_container=self.max_peers_per_container,
            name_prefix="fuzz",
        )

    def pair_count(self):
        return len(self.split_plan().assignments)

    def vrf_group_sizes(self):
        groups = {}
        for neighbor in self.neighbors:
            groups[neighbor["vrf"]] = groups.get(neighbor["vrf"], 0) + 1
        return tuple(sorted(groups.values()))

    # ------------------------------------------------------------------

    def to_dict(self):
        return {
            "seed": self.seed,
            "neighbors": [dict(neighbor) for neighbor in self.neighbors],
            "vrf_layout": self.vrf_layout,
            "mrai_mode": self.mrai_mode,
            "mrai": self.mrai,
            "max_peers_per_container": self.max_peers_per_container,
            "initial_routes": self.initial_routes,
            "injections": [dict(event) for event in self.injections],
            "workload": [dict(event) for event in self.workload],
            "duration": self.duration,
            "prefix_density": self.prefix_density,
            "aggregation_layout": self.aggregation_layout,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            data["seed"],
            neighbors=data["neighbors"],
            vrf_layout=data["vrf_layout"],
            mrai_mode=data["mrai_mode"],
            mrai=data["mrai"],
            max_peers_per_container=data["max_peers_per_container"],
            initial_routes=data["initial_routes"],
            injections=data["injections"],
            workload=data["workload"],
            duration=data["duration"],
            # absent in pre-§14 specs (old repro scripts): the defaults
            # reproduce the original /24-scattered behaviour exactly
            prefix_density=data.get("prefix_density", "standard"),
            aggregation_layout=data.get("aggregation_layout", "scattered"),
        )

    def copy(self):
        return FuzzSpec.from_dict(self.to_dict())

    def __repr__(self):
        return (
            f"<FuzzSpec seed={self.seed} neighbors={len(self.neighbors)}"
            f" pairs={self.pair_count()} layout={self.vrf_layout}"
            f" mrai_mode={self.mrai_mode}"
            f" density={self.prefix_density}"
            f" agg={self.aggregation_layout}"
            f" injections={len(self.injections)}"
            f" bursts={len(self.workload)} {self.duration:.0f}s>"
        )


class SpecError(ValueError):
    """A FuzzSpec that violates the composition rules."""


def validate_fuzz_spec(spec):
    """Raise :class:`SpecError` unless ``spec`` is recoverable by design
    and free of dangling references.  Returns the spec."""
    if not spec.neighbors:
        raise SpecError("a spec needs >= 1 neighbor")
    if spec.mrai_mode not in MRAI_MODES:
        raise SpecError(f"unknown mrai_mode {spec.mrai_mode!r}")
    if spec.vrf_layout not in VRF_LAYOUTS:
        raise SpecError(f"unknown vrf_layout {spec.vrf_layout!r}")
    if spec.prefix_density not in PREFIX_DENSITIES:
        raise SpecError(f"unknown prefix_density {spec.prefix_density!r}")
    if spec.aggregation_layout not in AGGREGATION_LAYOUTS:
        raise SpecError(
            f"unknown aggregation_layout {spec.aggregation_layout!r}")
    plan = spec.split_plan()
    pairs = len(plan.assignments)
    # no VRF may straddle two containers (one VRF = one routing table)
    vrf_home = {}
    for assignment in plan.assignments:
        for peering in assignment.peerings:
            home = vrf_home.setdefault(peering.vrf_name, assignment.name)
            if home != assignment.name:
                raise SpecError(
                    f"VRF {peering.vrf_name!r} straddles containers"
                    f" {home} and {assignment.name}"
                )
    hard = [e for e in spec.injections if e["scenario"] in HARD_KINDS]
    machine_level = [e for e in hard
                     if e["scenario"] in ("host_machine", "host_network")]
    if len(machine_level) > 1:
        raise SpecError("at most one machine-level failure per spec")
    if machine_level and pairs > 1:
        raise SpecError("machine-level failures need a single-pair layout")
    times = sorted(e["at"] for e in hard)
    for earlier, later in zip(times, times[1:]):
        if later - earlier < HARD_SPACING[0]:
            raise SpecError(
                f"hard injections {earlier} and {later} are closer than"
                f" a full recovery ({HARD_SPACING[0]}s)"
            )
    last_hard = max((e["at"] for e in hard), default=0.0)
    for event in spec.injections:
        pair_index = event.get("pair", 0)
        if not 0 <= pair_index < pairs:
            raise SpecError(f"injection references pair {pair_index}"
                            f" of {pairs}")
        if event["scenario"] == "transient_network":
            if not event["duration"] or event["duration"] >= 3.0:
                raise SpecError("transient blips must stay under the 3 s"
                                " confirmation timer")
        if event["scenario"] == "agent" and event["at"] < last_hard + 6.0:
            raise SpecError("agent death must follow the last hard failure"
                            " by >= 6 s (it is the detection witness)")
    for event in spec.workload:
        if not 0 <= event["remote"] < len(spec.neighbors):
            raise SpecError(f"burst references remote {event['remote']}"
                            f" of {len(spec.neighbors)}")
        expected = burst_length(spec.prefix_density, event["base"])
        if event["length"] != expected:
            raise SpecError(
                f"burst at {event['base']} has length {event['length']}"
                f" but density {spec.prefix_density!r} demands /{expected}")
        if event["count"] * (1 << (32 - event["length"])) > BLOCK_SPAN:
            raise SpecError(
                f"burst at {event['base']}/{event['length']} x"
                f" {event['count']} spills out of its disjoint block")
    if spec.duration <= last_hard:
        raise SpecError("duration must cover every injection")
    return spec


# ----------------------------------------------------------------------
# generation
# ----------------------------------------------------------------------

def _gen_policies(r, remote_index):
    """(import_policy, export_policy) dicts for one neighbor.

    Imports deny one aligned /13 burst block (a pure prefix predicate the
    oracle can model); exports only rewrite attributes (communities,
    prepending) so prefix sets are untouched.
    """
    import_policy = export_policy = None
    if r.random() < 0.35:
        block = r.randrange(DENY_BLOCKS)
        import_policy = {
            "name": f"fuzz-import-r{remote_index}",
            "default_permit": True,
            "entries": [{
                "permit": False,
                "match_prefixes": [f"{10 + remote_index}.{block * 8}.0.0/13"],
            }],
        }
    if r.random() < 0.25:
        export_policy = {
            "name": f"fuzz-export-r{remote_index}",
            "default_permit": True,
            "entries": [{
                "permit": True,
                "match_prefixes": None,
                "add_communities": [(65001 << 16) | (100 + remote_index)],
                "prepend_as": 65001 if r.random() < 0.5 else None,
                "prepend_count": 2,
            }],
        }
    return import_policy, export_policy


def _vrf_of(layout, count, split_at):
    if layout == "shared":
        return lambda i: "v0"
    if layout == "per_peer":
        return lambda i: f"v{i}"
    return lambda i: "v0" if i < split_at else "v1"


def generate_fuzz_spec(seed):
    """Derive a spec from ``seed`` (pure function, no simulation)."""
    r = DeterministicRandom(seed).stream("fuzz-spec")
    layout = r.choice(VRF_LAYOUTS)
    # per-peer layouts split into one pair per neighbor; cap the fleet
    count = r.choice((2, 3)) if layout == "per_peer" else r.choice((2, 3, 4))
    split_at = r.randint(1, count - 1)
    vrf_of = _vrf_of(layout, count, split_at)

    mrai_mode = r.choice(MRAI_MODES)
    mrai = r.choice((None, 0.05, 0.2, 0.5))
    density = r.choice(PREFIX_DENSITIES)
    aggregation = r.choice(AGGREGATION_LAYOUTS)
    neighbors = []
    for index in range(count):
        hold = r.choice((30, 90, 180))
        import_policy, export_policy = _gen_policies(r, index)
        neighbor = {
            "remote_as": 64512 + index,
            "vrf": vrf_of(index),
            "hold_time": hold,
            "keepalive_interval": hold // 3,
            "mrai": r.choice((0.05, 0.3, 1.0)) if r.random() < 0.3 else None,
            "bfd_tx_interval": None,
            "bfd_detect_mult": None,
            "import_policy": import_policy,
            "export_policy": export_policy,
        }
        if r.random() < 0.4:
            # detection = tx * mult stays well under the 3 s confirm window
            neighbor["bfd_tx_interval"] = r.choice((0.05, 0.1, 0.2))
            neighbor["bfd_detect_mult"] = r.choice((3, 4, 5))
        neighbors.append(neighbor)

    groups = {}
    for neighbor in neighbors:
        groups[neighbor["vrf"]] = groups.get(neighbor["vrf"], 0) + 1
    max_peers = max(groups.values())
    pairs = len(groups)

    # -- hard injections, spaced for full recoveries -----------------------
    total = r.randint(2, 4)
    hard_count = max(1, min(r.randint(1, 2), total))
    soft_count = total - hard_count
    injections = []
    at = r.uniform(3.0, 10.0)
    for _ in range(hard_count):
        injections.append({
            "at": round(at, 3),
            "scenario": r.choice(("application", "container",
                                  "container_network")),
            "pair": r.randrange(pairs),
            "target": "active",
            "duration": None,
        })
        at += r.uniform(*HARD_SPACING)
    if pairs == 1 and r.random() < 0.4:
        # machine-level failures fence permanently: single-pair only,
        # and always the final hard injection
        injections[-1]["scenario"] = r.choice(("host_machine",
                                               "host_network"))
    last_hard = injections[-1]["at"]

    # -- soft injections: may overlap recovery windows ---------------------
    agent_used = False
    for _ in range(soft_count):
        kind = r.choice(("transient_network", "database_blip", "agent"))
        if kind == "agent" and agent_used:
            kind = "database_blip"
        agent_used = agent_used or kind == "agent"
        earliest = last_hard + 6.0 if kind == "agent" else 1.0
        event = {
            "at": round(r.uniform(earliest, last_hard + 12.0), 3),
            "scenario": kind,
            "pair": r.randrange(pairs),
            "target": None,
            "duration": None,
        }
        if kind == "transient_network":
            event["target"] = r.choice(("active", "standby"))
            event["duration"] = round(r.uniform(0.3, 2.0), 3)
        elif kind == "database_blip":
            event["duration"] = round(r.uniform(0.4, 1.2), 3)
        injections.append(event)
    injections.sort(key=lambda event: event["at"])

    # -- workload bursts (chaos block scheme: disjoint per remote/burst) ---
    burst_times = sorted(
        round(r.uniform(1.0, last_hard + 8.0), 3)
        for _ in range(r.randint(2, 5))
    )
    workload = []
    advertised = [[] for _ in range(count)]
    for when in burst_times:
        remote = r.randrange(count)
        if advertised[remote] and r.random() < 0.35:
            block = advertised[remote].pop(
                r.randrange(len(advertised[remote]))
            )
            workload.append({"at": when, "remote": remote,
                             "action": "withdraw", **block})
        else:
            index = sum(1 for event in workload if event["remote"] == remote)
            base = f"{10 + remote}.{(index * 8) % 248}.0.0"
            block = {
                "base": base,
                "length": burst_length(density, base),
                "count": r.choice((50, 120, 200)),
            }
            advertised[remote].append(block)
            workload.append({"at": when, "remote": remote,
                             "action": "advertise", **block})

    horizon = max(
        [event["at"] for event in injections]
        + [event["at"] for event in workload]
    )
    spec = FuzzSpec(
        seed,
        neighbors=neighbors,
        vrf_layout=layout,
        mrai_mode=mrai_mode,
        mrai=mrai,
        max_peers_per_container=max_peers,
        initial_routes=r.choice((0, 50, 150)),
        injections=injections,
        workload=workload,
        duration=round(horizon + SETTLE_TAIL, 3),
        prefix_density=density,
        aggregation_layout=aggregation,
    )
    return validate_fuzz_spec(spec)


# ----------------------------------------------------------------------
# mutation
# ----------------------------------------------------------------------

def mutate_fuzz_spec(spec, mutation_seed):
    """One structure-preserving mutation of ``spec``; pure function of
    ``(spec, mutation_seed)``.  Mutations that would break a composition
    rule fall back to a fresh spec derived from the mutation seed."""
    r = DeterministicRandom(mutation_seed).stream("fuzz-mutate")
    candidate = spec.copy()
    candidate.seed = mutation_seed
    op = r.choice((
        "mrai_mode", "mrai", "peer_mrai", "bfd", "policy",
        "initial_routes", "burst_size", "injection_time", "add_burst",
        "prefix_density", "aggregation_layout",
    ))
    if op == "mrai_mode":
        candidate.mrai_mode = r.choice(
            [mode for mode in MRAI_MODES if mode != spec.mrai_mode]
        )
    elif op == "mrai":
        candidate.mrai = r.choice((None, 0.05, 0.2, 0.5, 1.0))
    elif op == "peer_mrai":
        neighbor = candidate.neighbors[r.randrange(len(candidate.neighbors))]
        neighbor["mrai"] = r.choice((None, 0.05, 0.3, 1.0))
    elif op == "bfd":
        neighbor = candidate.neighbors[r.randrange(len(candidate.neighbors))]
        if neighbor["bfd_tx_interval"] is None:
            neighbor["bfd_tx_interval"] = r.choice((0.05, 0.1, 0.2))
            neighbor["bfd_detect_mult"] = r.choice((3, 4, 5))
        else:
            neighbor["bfd_tx_interval"] = None
            neighbor["bfd_detect_mult"] = None
    elif op == "policy":
        index = r.randrange(len(candidate.neighbors))
        neighbor = candidate.neighbors[index]
        if neighbor["import_policy"] or neighbor["export_policy"]:
            neighbor["import_policy"] = None
            neighbor["export_policy"] = None
        else:
            imports, exports = _gen_policies(r, index)
            neighbor["import_policy"] = imports
            neighbor["export_policy"] = exports
    elif op == "initial_routes":
        candidate.initial_routes = r.choice((0, 50, 150, 300))
    elif op == "burst_size":
        event = candidate.workload[r.randrange(len(candidate.workload))]
        event["count"] = r.choice((25, 50, 120, 200, 400))
    elif op == "injection_time":
        soft = [e for e in candidate.injections
                if e["scenario"] not in HARD_KINDS]
        if soft:
            event = soft[r.randrange(len(soft))]
            hard = [e["at"] for e in candidate.injections
                    if e["scenario"] in HARD_KINDS]
            last_hard = max(hard, default=0.0)
            earliest = (last_hard + 6.0 if event["scenario"] == "agent"
                        else 1.0)
            event["at"] = round(r.uniform(earliest, last_hard + 12.0), 3)
            candidate.injections.sort(key=lambda e: e["at"])
    elif op == "add_burst":
        remote = r.randrange(len(candidate.neighbors))
        index = sum(1 for event in candidate.workload
                    if event["remote"] == remote)
        candidate.workload.append({
            "at": round(r.uniform(1.0, candidate.duration - SETTLE_TAIL), 3),
            "remote": remote,
            "action": "advertise",
            "base": f"{10 + remote}.{(index * 8) % 248}.0.0",
            "length": burst_length(candidate.prefix_density,
                                   f"{10 + remote}.{(index * 8) % 248}.0.0"),
            "count": r.choice((50, 120, 200)),
        })
        candidate.workload.sort(key=lambda e: e["at"])
    elif op == "prefix_density":
        candidate.prefix_density = r.choice(
            [d for d in PREFIX_DENSITIES if d != spec.prefix_density]
        )
        # every burst (and the withdraw that pops its block) must follow
        # the new density or the spec fails validation
        for event in candidate.workload:
            event["length"] = burst_length(candidate.prefix_density,
                                           event["base"])
    elif op == "aggregation_layout":
        candidate.aggregation_layout = r.choice(
            [a for a in AGGREGATION_LAYOUTS if a != spec.aggregation_layout]
        )
    try:
        return validate_fuzz_spec(candidate)
    except SpecError:
        return generate_fuzz_spec(mutation_seed)
