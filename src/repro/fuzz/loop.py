"""The coverage-guided loop, the two-budget shrinker, and corpus I/O.

The loop is seed-deterministic end to end: iteration ``i`` either
generates a fresh spec or mutates a corpus entry, with every choice
drawn from one named stream of the loop seed.  Novel coverage keys
(not in the chaos baseline, not seen this campaign) admit the spec to
the corpus; violations are shrunk — schedule dimensions and
config/topology dimensions on *separate* :class:`ShrinkBudget` pools —
and written out as replayable ``fuzz_repro_<seed>.py`` scripts.
"""

import json

from repro.failures.chaos import SETTLE_TAIL, ShrinkBudget
from repro.fuzz.build import run_fuzz_spec
from repro.fuzz.coverage import coverage_key, run_profile
from repro.fuzz.spec import (
    FuzzSpec,
    SpecError,
    generate_fuzz_spec,
    mutate_fuzz_spec,
    validate_fuzz_spec,
)
from repro.sim.rand import DeterministicRandom


# ----------------------------------------------------------------------
# shrinking across schedule AND config/topology dimensions
# ----------------------------------------------------------------------

def shrink_fuzz_spec(spec, hold_acks=True, expect_oracle=None,
                     max_runs=40, budget=None):
    """Minimize a violating spec; returns ``(shrunk, final_result,
    runs_used)`` like :func:`chaos.shrink_schedule`.

    Schedule passes (drop injections/bursts, halve counts, trim the
    horizon) and config/topology passes (drop trailing neighbors, strip
    policies, reset MRAI/BFD knobs, zero the preload) draw from separate
    :class:`ShrinkBudget` pools, so neither dimension can starve the
    other; inspect ``budget.exhausted()`` to see which pool ran dry.
    """
    if budget is None:
        budget = ShrinkBudget.split(max_runs, config_share=0.4)

    def still_fails(candidate, dimension):
        if not budget.take(dimension):
            return None
        try:
            validate_fuzz_spec(candidate)
        except SpecError:
            return False
        result = run_fuzz_spec(candidate, hold_acks=hold_acks)
        violation = result.first_violation
        if violation is None:
            return False
        if expect_oracle is not None and violation.oracle != expect_oracle:
            return False
        return result

    best = spec.copy()
    result = still_fails(best, "schedule")
    if not result:
        return best, None, budget.total_used

    def try_mutation(mutate, dimension):
        nonlocal best, result
        candidate = best.copy()
        if mutate(candidate) is False:
            return
        outcome = still_fails(candidate, dimension)
        if outcome:
            best, result = candidate, outcome

    # -- schedule dimensions ----------------------------------------------
    changed = True
    while changed and budget.remaining("schedule") > 0:
        changed = False
        for index in range(len(best.injections) - 1, -1, -1):
            before = len(best.injections)

            def drop(candidate, index=index):
                del candidate.injections[index]

            try_mutation(drop, "schedule")
            if len(best.injections) != before:
                changed = True
    for index in range(len(best.workload) - 1, -1, -1):
        def drop(candidate, index=index):
            del candidate.workload[index]

        try_mutation(drop, "schedule")
    for index in range(len(best.workload)):
        while (best.workload[index]["count"] > 25
               and budget.remaining("schedule") > 0):
            before = best.workload[index]["count"]

            def halve(candidate, index=index):
                candidate.workload[index]["count"] //= 2

            try_mutation(halve, "schedule")
            if best.workload[index]["count"] == before:
                break

    # -- config/topology dimensions ---------------------------------------
    # drop trailing neighbors (with their bursts; injections retarget to
    # pair 0 since the plan reshapes)
    while len(best.neighbors) > 1 and budget.remaining("config") > 0:
        before = len(best.neighbors)

        def drop_neighbor(candidate):
            index = len(candidate.neighbors) - 1
            del candidate.neighbors[index]
            candidate.workload = [
                event for event in candidate.workload
                if event["remote"] != index
            ]
            pairs = candidate.pair_count()
            for event in candidate.injections:
                if event.get("pair", 0) >= pairs:
                    event["pair"] = 0
            candidate.max_peers_per_container = max(
                candidate.vrf_group_sizes(), default=1
            )

        try_mutation(drop_neighbor, "config")
        if len(best.neighbors) == before:
            break
    for index in range(len(best.neighbors)):
        def strip_policies(candidate, index=index):
            neighbor = candidate.neighbors[index]
            if not neighbor["import_policy"] and not neighbor["export_policy"]:
                return False
            neighbor["import_policy"] = None
            neighbor["export_policy"] = None

        try_mutation(strip_policies, "config")

        def reset_timers(candidate, index=index):
            neighbor = candidate.neighbors[index]
            if (neighbor["mrai"] is None
                    and neighbor["bfd_tx_interval"] is None):
                return False
            neighbor["mrai"] = None
            neighbor["bfd_tx_interval"] = None
            neighbor["bfd_detect_mult"] = None

        try_mutation(reset_timers, "config")
    if best.mrai_mode != "per_speaker" or best.mrai is not None:
        def reset_mrai(candidate):
            candidate.mrai_mode = "per_speaker"
            candidate.mrai = None

        try_mutation(reset_mrai, "config")
    if best.initial_routes:
        def zero(candidate):
            candidate.initial_routes = 0

        try_mutation(zero, "config")

    # -- horizon ----------------------------------------------------------
    trimmed = round(max(5.0, result.first_violation.time - 5.0), 3)
    if trimmed < best.duration:
        def trim(candidate):
            candidate.duration = trimmed

        try_mutation(trim, "schedule")
    return best, result, budget.total_used


# ----------------------------------------------------------------------
# repro scripts
# ----------------------------------------------------------------------

FUZZ_REPRO_TEMPLATE = '''#!/usr/bin/env python3
"""Auto-generated fuzz repro — seed {seed}, oracle {oracle}.

Shrunk spec: {neighbors} neighbor(s), {pairs} pair(s),
{injections} injection(s), {bursts} burst(s).
Replay (from the repository root):

    PYTHONPATH=src python {filename}

Exits 0 when the violation reproduces at the same oracle.
"""
import json
import sys

SEED = {seed}
HOLD_ACKS = {hold_acks}
EXPECT_ORACLE = {oracle!r}
SPEC = json.loads(r\'\'\'
{spec_json}
\'\'\')


def main():
    from repro.fuzz import FuzzSpec, run_fuzz_spec

    result = run_fuzz_spec(FuzzSpec.from_dict(SPEC), hold_acks=HOLD_ACKS)
    violation = result.first_violation
    if violation is None:
        print("did NOT reproduce: all oracles passed")
        return 2
    print(
        "reproduced: %s @%.3f -- %s"
        % (violation.oracle, violation.time, violation.detail)
    )
    return 0 if violation.oracle == EXPECT_ORACLE else 3


if __name__ == "__main__":
    sys.exit(main())
'''


def write_fuzz_repro(spec, violation, hold_acks, path):
    """Emit a self-contained replay script for a shrunk spec."""
    filename = path.split("/")[-1]
    script = FUZZ_REPRO_TEMPLATE.format(
        seed=spec.seed,
        oracle=violation.oracle,
        neighbors=len(spec.neighbors),
        pairs=spec.pair_count(),
        injections=len(spec.injections),
        bursts=len(spec.workload),
        filename=filename,
        hold_acks=hold_acks,
        spec_json=json.dumps(spec.to_dict(), indent=2, sort_keys=True),
    )
    with open(path, "w") as handle:
        handle.write(script)
    return path


# ----------------------------------------------------------------------
# the campaign loop
# ----------------------------------------------------------------------

class FuzzReport:
    """Outcome of one campaign: corpus entries, violations, stats."""

    def __init__(self, seed):
        self.seed = seed
        self.corpus = []        # {"spec", "profile", "key", "novel"}
        self.violations = []    # {"spec", "oracle", "repro"}
        self.runs = 0
        self.partial = 0

    def novel_keys(self, baseline_keys):
        return sorted(
            entry["key"] for entry in self.corpus
            if entry["key"] not in baseline_keys
        )


def fuzz_loop(seed=0, iterations=10, baseline_keys=(), hold_acks=True,
              tracing=True, out_dir=".", max_duration=None, log=print):
    """Run one coverage-guided campaign; pure function of its arguments.

    ``baseline_keys``: coverage keys the fixed chaos corpus produces —
    only keys outside it count as *novel* in the report.  ``tracing``
    defaults on so the phase-shape axis contributes to coverage.
    ``max_duration`` caps each spec's virtual horizon (smoke mode).
    """
    r = DeterministicRandom(seed).stream("fuzz-loop")
    baseline_keys = set(baseline_keys)
    seen = set(baseline_keys)
    report = FuzzReport(seed)
    for iteration in range(iterations):
        spec_seed = seed * 100003 + iteration + 1
        if report.corpus and r.random() < 0.5:
            parent = report.corpus[r.randrange(len(report.corpus))]["spec"]
            spec = mutate_fuzz_spec(parent, spec_seed)
            origin = f"mutate({parent.seed})"
        else:
            spec = generate_fuzz_spec(spec_seed)
            origin = "generate"
        if max_duration is not None and spec.duration > max_duration:
            spec = spec.copy()
            spec.duration = max_duration
            spec.injections = [e for e in spec.injections
                               if e["at"] < max_duration - SETTLE_TAIL / 3]
            spec.workload = [e for e in spec.workload
                             if e["at"] < max_duration - SETTLE_TAIL / 3]
            if not spec.injections:
                spec = generate_fuzz_spec(spec_seed)

        result = run_fuzz_spec(spec, hold_acks=hold_acks, tracing=tracing)
        report.runs += 1
        if result.partial:
            report.partial += 1
        violation = result.first_violation
        if violation is not None:
            budget = ShrinkBudget.split(40, config_share=0.4)
            shrunk, _final, runs = shrink_fuzz_spec(
                spec, hold_acks=hold_acks,
                expect_oracle=violation.oracle, budget=budget,
            )
            path = f"{out_dir}/fuzz_repro_{spec.seed}.py"
            write_fuzz_repro(shrunk, violation, hold_acks, path)
            report.violations.append({
                "spec": shrunk, "oracle": violation.oracle, "repro": path,
            })
            log(
                f"[{iteration}] seed {spec.seed}: VIOLATION"
                f" {violation.oracle} @{violation.time:.3f};"
                f" shrunk in {runs} rerun(s) [{budget.describe()}];"
                f" repro: {path}"
            )
            continue
        profile = run_profile(result)
        key = coverage_key(profile)
        novel = key not in seen
        if novel:
            seen.add(key)
            report.corpus.append({
                "spec": spec, "profile": profile, "key": key,
                "novel": key not in baseline_keys,
            })
            log(
                f"[{iteration}] seed {spec.seed} ({origin}): NEW coverage"
                f" {key} — pairs={spec.pair_count()}"
                f" mode={spec.mrai_mode} layout={spec.vrf_layout}"
            )
        else:
            log(f"[{iteration}] seed {spec.seed} ({origin}): known"
                f" coverage {key}")
    return report


# ----------------------------------------------------------------------
# manifest I/O (tests/fuzz_corpus/manifest.json)
# ----------------------------------------------------------------------

def save_manifest(path, report, baseline):
    """Persist a campaign as the checked-in regression corpus.

    ``baseline``: {key: {"seed", "profile"}} from
    :func:`~repro.fuzz.coverage.chaos_baseline_profiles`.
    """
    manifest = {
        "loop_seed": report.seed,
        "baseline": {
            key: {"seed": entry["seed"], "profile": entry["profile"]}
            for key, entry in sorted(baseline.items())
        },
        "entries": [
            {
                "spec": entry["spec"].to_dict(),
                "profile": entry["profile"],
                "coverage_key": entry["key"],
                "novel": entry["key"] not in baseline,
            }
            for entry in report.corpus
        ],
    }
    with open(path, "w") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return manifest


def load_manifest(path):
    with open(path) as handle:
        return json.load(handle)


def manifest_entries(manifest):
    """[(FuzzSpec, expected_key, expected_profile)] from a manifest."""
    return [
        (FuzzSpec.from_dict(entry["spec"]), entry["coverage_key"],
         entry["profile"])
        for entry in manifest["entries"]
    ]
