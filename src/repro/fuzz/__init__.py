"""Coverage-guided config/topology fuzzing (DESIGN.md §13).

The chaos engine (§9) mutates only the *failure schedule* over a fixed
topology.  The fuzzer widens the search to the whole input cross-product
— peer-graph shape, VRF layout, splitting plan, MRAI pacing mode and
timers, BFD timers, routing policies, *and* the failure schedule —
driven by a coverage signal derived from the instrumentation the repo
already has: oracle verdict bitmaps, trace-store phase shapes and
executed-event buckets.  Specs that reach novel coverage stay in the
corpus and are mutated further; specs that trip an oracle are shrunk
across both schedule and config/topology dimensions into replayable
``fuzz_repro_<seed>.py`` scripts.
"""

from repro.fuzz.build import (
    FuzzResult,
    build_fuzz_shard,
    fuzz_corpus_specs,
    run_fuzz_spec,
)
from repro.fuzz.coverage import coverage_key, profile_from_chaos, run_profile
from repro.fuzz.loop import fuzz_loop, shrink_fuzz_spec, write_fuzz_repro
from repro.fuzz.spec import FuzzSpec, generate_fuzz_spec, mutate_fuzz_spec

__all__ = [
    "FuzzResult",
    "FuzzSpec",
    "build_fuzz_shard",
    "coverage_key",
    "fuzz_corpus_specs",
    "fuzz_loop",
    "generate_fuzz_spec",
    "mutate_fuzz_spec",
    "profile_from_chaos",
    "run_fuzz_spec",
    "run_profile",
    "shrink_fuzz_spec",
    "write_fuzz_repro",
]
