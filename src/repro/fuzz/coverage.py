"""The coverage signal: run behaviour -> stable key (DESIGN.md §13).

A run's *profile* is a canonical, JSON-safe digest of what the run did
rather than what it was configured to do:

- ``topology`` — pair count, neighbor count, sorted VRF group sizes,
  MRAI mode, policy counts (the materialized shape);
- ``workload`` — the burst prefix density and attribute/aggregation
  layout (DESIGN.md §14): deeper tries and DRAGON-aggregatable tables
  are behaviourally distinct shapes worth separate corpus exemplars;
- ``oracles`` — the merged verdict bitmap: per oracle, whether it was
  exercised and whether it tripped (:meth:`OracleSuite.verdict_bitmap`);
- ``phases`` — the trace store's log2-bucketed span counts per phase
  (:meth:`TraceStore.phase_shape`), empty when untraced;
- ``injected`` — the set of injection kinds that actually fired;
- ``executed`` — the log2 bucket of events executed after arming.

Two runs with the same key behaved the same way at this granularity;
novelty search keeps one exemplar per key.  Profiles are pure functions
of deterministic run state, so the key is identical under ``workers=1``
and ``workers=N`` of the parallel runtime — that is tested.
"""

import hashlib
import json


def _executed_bucket(count):
    return int(count).bit_length()


def coverage_key(profile):
    """A short stable hash of a canonicalized profile."""
    canonical = json.dumps(profile, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def _canonical_phases(shape):
    return [[name, bucket] for name, bucket in shape]


def run_profile(result):
    """Profile of a :class:`~repro.fuzz.build.FuzzResult`."""
    spec = result.spec
    store = result.system.trace_store
    return {
        "topology": {
            "pairs": spec.pair_count(),
            "neighbors": len(spec.neighbors),
            "vrf_groups": list(spec.vrf_group_sizes()),
            "mrai_mode": spec.mrai_mode,
            "policies": [
                sum(1 for n in spec.neighbors if n["import_policy"]),
                sum(1 for n in spec.neighbors if n["export_policy"]),
            ],
        },
        "workload": {
            "density": spec.prefix_density,
            "aggregation": spec.aggregation_layout,
        },
        "oracles": [[name, tripped]
                    for name, tripped in result.verdict_bitmap()],
        "phases": _canonical_phases(
            store.phase_shape() if store is not None else ()
        ),
        "injected": sorted({event["scenario"]
                            for event in spec.injections}),
        "executed": _executed_bucket(result.events_executed),
    }


def profile_from_chaos(result):
    """Profile of a chaos :class:`~repro.failures.chaos.ChaosResult`, in
    the same shape, so fixed-corpus baselines and fuzz runs share one key
    space.  The chaos topology is always one pair, no policies, speaker-
    level MRAI."""
    schedule = result.schedule
    store = result.system.trace_store
    if schedule.shared_vrf:
        vrf_groups = [schedule.neighbors]
    else:
        vrf_groups = [1] * schedule.neighbors
    return {
        "topology": {
            "pairs": 1,
            "neighbors": schedule.neighbors,
            "vrf_groups": vrf_groups,
            "mrai_mode": "per_speaker",
            "policies": [0, 0],
        },
        # the chaos corpus always drives /24 bursts with pooled
        # attributes and plain snapshots — the fuzz-spec defaults
        "workload": {"density": "standard", "aggregation": "scattered"},
        "oracles": [[name, tripped]
                    for name, tripped in result.suite.verdict_bitmap()],
        "phases": _canonical_phases(
            store.phase_shape() if store is not None else ()
        ),
        "injected": sorted({event["scenario"]
                            for event in schedule.injections}),
        "executed": _executed_bucket(result.events_executed),
    }


def chaos_baseline_profiles(plain=(), traced=(), db_failover=()):
    """Run chaos corpus seeds in their tier-1 configurations and return
    ``{key: {"seed": ..., "profile": ...}}`` — the coverage floor a fuzz
    corpus entry must escape to count as novel."""
    from repro.failures.chaos import generate_schedule, run_schedule

    baseline = {}

    def record(seed, result):
        profile = profile_from_chaos(result)
        baseline[coverage_key(profile)] = {"seed": seed, "profile": profile}

    for seed in plain:
        record(seed, run_schedule(generate_schedule(seed)))
    for seed in traced:
        record(seed, run_schedule(generate_schedule(seed), tracing=True))
    for seed in db_failover:
        record(seed, run_schedule(generate_schedule(seed, db_failover=True)))
    return baseline
