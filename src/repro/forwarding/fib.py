"""Forwarding information base: the RIB's data-plane shadow.

The FIB holds longest-prefix-match entries derived from a Loc-RIB's best
routes.  A :class:`FibSyncer` models the RIB->FIB download path: it
periodically diffs the Loc-RIB against the programmed FIB, so data-plane
convergence lags control-plane convergence by (at most) one sync period —
and, crucially for NSR, the FIB keeps forwarding from its last programmed
state while the control plane is dead or migrating.
"""

from repro.bgp.prefixes import Prefix, PrefixTrie
from repro.sim.process import Process

#: default RIB->FIB download period (hardware programming latency class)
DEFAULT_SYNC_INTERVAL = 0.05


class FibEntry:
    """One programmed forwarding entry."""

    __slots__ = ("prefix", "next_hop", "programmed_at")

    def __init__(self, prefix, next_hop, programmed_at):
        self.prefix = prefix
        self.next_hop = next_hop
        self.programmed_at = programmed_at

    def __repr__(self):
        return f"<FibEntry {self.prefix} -> {self.next_hop}>"


class Fib:
    """Longest-prefix-match forwarding table."""

    def __init__(self, name="fib"):
        self.name = name
        self._trie = PrefixTrie()
        self._entries = {}
        self.lookups = 0
        self.misses = 0

    def program(self, prefix, next_hop, now=0.0):
        entry = FibEntry(prefix, next_hop, now)
        self._entries[prefix] = entry
        self._trie.insert(prefix, entry)

    def unprogram(self, prefix):
        if prefix in self._entries:
            del self._entries[prefix]
            self._trie.remove(prefix)

    def lookup(self, address):
        """Longest-prefix match for a destination address string."""
        self.lookups += 1
        host = Prefix.parse(address)
        match = self._trie.longest_match(host)
        if match is None:
            self.misses += 1
            return None
        return match[1]

    def entries(self):
        return dict(self._entries)

    def __len__(self):
        return len(self._entries)

    def __contains__(self, prefix):
        return prefix in self._entries


class FibSyncer:
    """Keeps a FIB converged to a Loc-RIB provider.

    ``loc_rib_provider()`` returns the current Loc-RIB (or None while the
    control plane is down — the FIB then simply keeps its programmed
    state, which is the DSR behaviour that makes NSR's zero-loss story
    work on the data plane).
    """

    def __init__(self, engine, fib, loc_rib_provider, interval=DEFAULT_SYNC_INTERVAL):
        self.engine = engine
        self.fib = fib
        self.loc_rib_provider = loc_rib_provider
        self.interval = interval
        self.process = Process(engine, f"fib-sync:{fib.name}")
        self.sync_count = 0
        self.last_changes = 0

    def start(self):
        self.process.every(self.interval, self.sync_now)

    def sync_now(self):
        """One diff-and-program pass; returns the number of changes."""
        loc_rib = self.loc_rib_provider()
        if loc_rib is None:
            return 0  # control plane down: hold the programmed state
        self.sync_count += 1
        desired = {
            route.prefix: route.attributes.next_hop
            for route in loc_rib.best_routes()
            if route.attributes.next_hop is not None
        }
        changes = 0
        for prefix, entry in list(self.fib.entries().items()):
            if prefix not in desired:
                self.fib.unprogram(prefix)
                changes += 1
            elif desired[prefix] != entry.next_hop:
                self.fib.program(prefix, desired[prefix], self.engine.now)
                changes += 1
        for prefix, next_hop in desired.items():
            if prefix not in self.fib:
                self.fib.program(prefix, next_hop, self.engine.now)
                changes += 1
        self.last_changes = changes
        return changes

    def stop(self):
        self.process.kill()
