"""The forwarding plane: FIBs and data-plane traffic.

The paper's cost argument is about *data* packets: "a one-minute
one-link downtime will impact 277 GBs of live traffic" (§2.1).  This
package makes that measurable: each router derives a FIB from its
Loc-RIB, a :class:`~repro.forwarding.dataplane.DataPlane` forwards
simulated traffic through it, and a traffic flow counts delivered vs
dropped packets — zero loss across an NSR migration, downtime x rate
lost for a non-NSR baseline.

Per the DSR design (§3.2.3), the forwarding plane is decoupled from the
control plane: it keeps forwarding from its last-programmed FIB while
the BGP process is being migrated.
"""

from repro.forwarding.fib import Fib, FibEntry, FibSyncer
from repro.forwarding.dataplane import DataPlane, TrafficFlow

__all__ = ["Fib", "FibEntry", "FibSyncer", "DataPlane", "TrafficFlow"]
