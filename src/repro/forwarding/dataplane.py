"""The data plane: traffic flows forwarded through FIB lookups.

A :class:`DataPlane` sits on one router and forwards each offered packet
by FIB lookup; a :class:`TrafficFlow` offers packets at a constant rate
toward a destination prefix and accounts delivered vs dropped bytes —
the quantity behind the paper's "a one-minute one-link downtime will
impact 277 GBs of live traffic".

Forwarding here is intentionally one hop deep (lookup -> next-hop
reachable?): the experiments compare *route availability* during
failures, which one hop captures exactly.
"""

from repro.sim.process import Process


class DataPlane:
    """Forwards packets by FIB lookup on one router."""

    def __init__(self, engine, network, fib, name="dataplane"):
        self.engine = engine
        self.network = network
        self.fib = fib
        self.name = name
        self.forwarded_packets = 0
        self.dropped_no_route = 0
        self.dropped_next_hop_down = 0

    def forward(self, dst_address, size_bytes):
        """Offer one packet; returns True when it would be delivered."""
        entry = self.fib.lookup(dst_address)
        if entry is None:
            self.dropped_no_route += 1
            return False
        next_hop = self.network.host_by_address(entry.next_hop)
        if next_hop is None or not next_hop.reachable():
            self.dropped_next_hop_down += 1
            return False
        self.forwarded_packets += 1
        return True

    @property
    def dropped_packets(self):
        return self.dropped_no_route + self.dropped_next_hop_down


class TrafficFlow:
    """A constant-rate flow offered to a data plane.

    ``rate_pps`` packets per second of ``packet_bytes`` each toward
    ``dst_address``.  Accounting happens in simulated batches (one tick
    per ``tick_interval``), which keeps event counts sane at high rates.
    """

    def __init__(self, engine, dataplane, dst_address, rate_pps,
                 packet_bytes=1000, tick_interval=0.01, name="flow"):
        self.engine = engine
        self.dataplane = dataplane
        self.dst_address = dst_address
        self.rate_pps = rate_pps
        self.packet_bytes = packet_bytes
        self.tick_interval = tick_interval
        self.name = name
        self.process = Process(engine, f"flow:{name}")
        self.offered_packets = 0
        self.delivered_packets = 0
        self.lost_packets = 0
        self.loss_intervals = []  # (start, end) of consecutive-loss spans
        self._loss_started = None
        self._carry = 0.0

    def start(self):
        self.process.every(self.tick_interval, self._tick)

    def _tick(self):
        self._carry += self.rate_pps * self.tick_interval
        batch = int(self._carry)
        self._carry -= batch
        if batch <= 0:
            return
        # one representative lookup decides the whole tick's batch — the
        # FIB cannot change mid-tick in the simulation
        delivered = self.dataplane.forward(self.dst_address, self.packet_bytes)
        self.offered_packets += batch
        if delivered:
            # count the representative lookup once, then bulk-account
            self.dataplane.forwarded_packets += batch - 1
            self.delivered_packets += batch
            if self._loss_started is not None:
                self.loss_intervals.append((self._loss_started, self.engine.now))
                self._loss_started = None
        else:
            self.lost_packets += batch
            if self._loss_started is None:
                self._loss_started = self.engine.now

    def stop(self):
        if self._loss_started is not None:
            self.loss_intervals.append((self._loss_started, self.engine.now))
            self._loss_started = None
        self.process.kill()

    @property
    def lost_bytes(self):
        return self.lost_packets * self.packet_bytes

    @property
    def delivered_bytes(self):
        return self.delivered_packets * self.packet_bytes

    def total_loss_time(self):
        closed = sum(end - start for start, end in self.loss_intervals)
        if self._loss_started is not None:
            closed += self.engine.now - self._loss_started
        return closed
