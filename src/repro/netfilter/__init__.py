"""Netfilter emulation: hook chains and the NFQUEUE target.

The paper's kernel-free replication "leverage[s] the existing hooks of the
Netfilter Linux kernel module": the OUTPUT hook intercepts locally created
egress packets, and an NFQUEUE target hands matched packets to a user-space
thread (``tcp_queue``) that decides when to release them.  This package
reproduces those semantics on the simulated TCP stack's egress path.
"""

from repro.netfilter.hooks import HookChain, HookPoint, Rule, Verdict
from repro.netfilter.nfqueue import NfQueue, QueuedPacket

__all__ = [
    "HookChain",
    "HookPoint",
    "Rule",
    "Verdict",
    "NfQueue",
    "QueuedPacket",
]
