"""Hook points, rules and verdicts.

A :class:`HookChain` is evaluated for every packet crossing its hook point.
Rules are (matcher, target) pairs evaluated in order, exactly like an
iptables chain: the first matching rule decides the packet's fate.  The
interesting target for TENSOR is ``NFQUEUE``, which re-routes the packet to
a user-space queue and suspends its transmission until a verdict arrives.
"""

import enum


class HookPoint(enum.Enum):
    """The five classic Netfilter hook points (we exercise OUTPUT/INPUT)."""

    PREROUTING = "PREROUTING"
    INPUT = "INPUT"
    FORWARD = "FORWARD"
    OUTPUT = "OUTPUT"
    POSTROUTING = "POSTROUTING"


class Verdict(enum.Enum):
    """Rule verdicts.  QUEUE suspends the packet into an NFQUEUE."""

    ACCEPT = "ACCEPT"
    DROP = "DROP"
    QUEUE = "QUEUE"


class Rule:
    """A single chain rule.

    ``matcher(packet) -> bool`` selects packets; ``verdict`` decides them;
    ``queue_num`` names the NFQUEUE for QUEUE verdicts.
    """

    def __init__(self, matcher, verdict, queue_num=None, comment=""):
        if verdict is Verdict.QUEUE and queue_num is None:
            raise ValueError("QUEUE verdict requires queue_num")
        self.matcher = matcher
        self.verdict = verdict
        self.queue_num = queue_num
        self.comment = comment
        self.hits = 0

    def matches(self, packet):
        return self.matcher(packet)

    def __repr__(self):
        return f"<Rule {self.verdict.value} q={self.queue_num} {self.comment!r}>"


class HookChain:
    """An ordered rule chain for one hook point.

    The default policy is ACCEPT, like an unconfigured iptables chain.
    """

    def __init__(self, hook_point, policy=Verdict.ACCEPT):
        if policy is Verdict.QUEUE:
            raise ValueError("chain policy cannot be QUEUE")
        self.hook_point = hook_point
        self.policy = policy
        self.rules = []
        self.evaluations = 0

    def append(self, rule):
        """Add a rule at the end of the chain (iptables -A)."""
        self.rules.append(rule)
        return rule

    def insert(self, rule, index=0):
        """Add a rule at ``index`` (iptables -I)."""
        self.rules.insert(index, rule)
        return rule

    def delete(self, rule):
        """Remove a rule (iptables -D).  Missing rules are ignored."""
        try:
            self.rules.remove(rule)
        except ValueError:
            pass

    def flush(self):
        """Remove all rules (iptables -F)."""
        self.rules.clear()

    def evaluate(self, packet):
        """Return (verdict, queue_num) for ``packet``."""
        self.evaluations += 1
        for rule in self.rules:
            if rule.matches(packet):
                rule.hits += 1
                return rule.verdict, rule.queue_num
        return self.policy, None

    def __repr__(self):
        return f"<HookChain {self.hook_point.value} rules={len(self.rules)}>"
