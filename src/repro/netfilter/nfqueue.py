"""NFQUEUE: user-space packet verdict queues.

When an egress packet hits a QUEUE rule it is wrapped in a
:class:`QueuedPacket` and handed to whichever user-space consumer is bound
to the queue number (TENSOR binds its ``tcp_queue`` thread).  The consumer
later calls :meth:`QueuedPacket.accept` to release the packet onto the wire
or :meth:`QueuedPacket.drop` to discard it — identical to the
``libnetfilter_queue`` verdict model the paper relies on.

If nothing is bound to a queue, packets are dropped, which matches the
kernel's behaviour when no user-space program listens on an NFQUEUE — and
is exactly what happens when the BGP process crashes while holding ACKs:
the held ACKs die with it, keeping the remote peer's send buffer intact.
"""


class QueuedPacket:
    """A packet suspended at a hook, awaiting a user-space verdict."""

    __slots__ = ("packet", "_release", "_decided", "queued_at", "span")

    def __init__(self, packet, release, queued_at, span=None):
        self.packet = packet
        self._release = release
        self._decided = False
        self.queued_at = queued_at
        self.span = span  # open "nfq.hold" trace span (None when disabled)

    @property
    def decided(self):
        return self._decided

    def accept(self):
        """Release the packet onto the wire.  Idempotent."""
        if self._decided:
            return
        self._decided = True
        if self.span is not None:
            self.span.finish(verdict="accept")
        self._release(self.packet)

    def drop(self):
        """Discard the packet.  Idempotent."""
        if self._decided:
            return
        self._decided = True
        if self.span is not None:
            self.span.finish(verdict="drop")

    def __repr__(self):
        state = "decided" if self._decided else "held"
        return f"<QueuedPacket {state} {self.packet!r}>"


class NfQueue:
    """The per-stack registry of NFQUEUE consumers.

    ``technology`` selects the interception cost model: "netfilter" pays
    a kernel->userspace copy on enqueue and a verdict round trip on
    release; "ebpf" holds packets in a kernel map (§5's future-work
    alternative, implemented for comparison).
    """

    def __init__(self, engine, technology="netfilter"):
        from repro.sim.calibration import (
            EBPF_QUEUE_DELAY,
            EBPF_VERDICT_DELAY,
            NETFILTER_QUEUE_DELAY,
            NETFILTER_VERDICT_DELAY,
        )

        if technology not in ("netfilter", "ebpf"):
            raise ValueError(f"unknown interception technology {technology!r}")
        self.engine = engine
        self.technology = technology
        if technology == "netfilter":
            self.queue_delay = NETFILTER_QUEUE_DELAY
            self.verdict_delay = NETFILTER_VERDICT_DELAY
        else:
            self.queue_delay = EBPF_QUEUE_DELAY
            self.verdict_delay = EBPF_VERDICT_DELAY
        self._consumers = {}
        self.enqueued = 0
        self.dropped_unbound = 0

    def bind(self, queue_num, consumer):
        """Bind ``consumer(queued_packet)`` to ``queue_num``."""
        self._consumers[queue_num] = consumer

    def unbind(self, queue_num):
        self._consumers.pop(queue_num, None)

    def is_bound(self, queue_num):
        return queue_num in self._consumers

    def enqueue(self, queue_num, packet, release):
        """Suspend ``packet``; deliver it to the bound consumer.

        ``release(packet)`` is the continuation that puts the packet on the
        wire when the consumer accepts it; the accept pays the verdict
        delay of the configured technology.
        """
        consumer = self._consumers.get(queue_num)
        if consumer is None:
            self.dropped_unbound += 1
            return None

        def delayed_release(released_packet):
            self.engine.schedule(self.verdict_delay, release, released_packet)

        span = None
        tracer = getattr(self.engine, "_trace_hook", None)
        if tracer is not None:
            segment = packet.payload
            span = tracer.begin(
                "nfq.hold",
                queue=queue_num,
                dst=packet.dst,
                ack=getattr(segment, "ack", None),
            )
        queued = QueuedPacket(
            packet, delayed_release, queued_at=self.engine.now, span=span
        )
        self.enqueued += 1
        self.engine.schedule(self.queue_delay, consumer, queued)
        return queued
