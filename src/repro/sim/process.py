"""Simulated processes and timers.

The paper's "threads" (main, IO, keepalive, tcp_queue) become simulated
processes: small state machines that react to events on the virtual clock.
A :class:`Timer` is a restartable one-shot timer, the building block for
TCP retransmission timers, BGP hold/keepalive timers and BFD detection
timers.  A :class:`PeriodicTask` is a fixed-interval repeating callback.
"""

from repro.sim.engine import SimulationError


class Process:
    """Base class for an entity that lives on the virtual clock.

    Subclasses use :meth:`after` / :meth:`every` to schedule work, and
    :meth:`kill` to model a crash: all pending callbacks owned by the
    process are cancelled and further scheduling is rejected, mirroring the
    abrupt death of a real OS process.
    """

    def __init__(self, engine, name="process"):
        self.engine = engine
        self.name = name
        self.alive = True
        self._owned_events = []

    def after(self, delay, callback, *args):
        """Schedule ``callback`` after ``delay`` seconds, owned by us."""
        if not self.alive:
            raise SimulationError(f"{self.name}: dead process cannot schedule")
        event = self.engine.schedule(delay, self._guarded, callback, args)
        self._owned_events.append(event)
        if len(self._owned_events) > 256:
            self._owned_events = [e for e in self._owned_events if not e.cancelled]
        return event

    def soon(self, callback, *args):
        """Schedule ``callback`` at the current instant, owned by us."""
        return self.after(0.0, callback, *args)

    def every(self, interval, callback, *args):
        """Run ``callback`` every ``interval`` seconds until killed."""
        task = PeriodicTask(self, interval, callback, args)
        task.start()
        return task

    def _guarded(self, callback, args):
        if self.alive:
            callback(*args)

    def kill(self):
        """Crash the process: cancel everything it scheduled."""
        self.alive = False
        for event in self._owned_events:
            event.cancel()
        self._owned_events.clear()

    #: Containers supervise heterogeneous process objects through a
    #: ``crash()`` method; for a bare simulated process they coincide.
    crash = kill

    def revive(self):
        """Allow a killed process object to schedule again (restart)."""
        self.alive = True

    def __repr__(self):
        state = "alive" if self.alive else "dead"
        return f"<{type(self).__name__} {self.name!r} {state}>"


class Timer:
    """A restartable one-shot timer.

    ``start`` (re)arms it, ``stop`` disarms it, and when it fires it calls
    the callback once.  ``restart`` is the idiom for watchdog-style timers
    (hold timers, retransmission timers).
    """

    def __init__(self, engine, callback, name="timer"):
        self.engine = engine
        self.callback = callback
        self.name = name
        self._event = None
        self.fired_count = 0

    @property
    def armed(self):
        return self._event is not None and not self._event.cancelled

    @property
    def deadline(self):
        """Absolute virtual time at which the timer will fire, or None."""
        if self.armed:
            return self._event.time
        return None

    def start(self, delay):
        """Arm the timer.  If already armed, the old deadline is replaced."""
        self.stop()
        self._event = self.engine.schedule(delay, self._fire)

    restart = start

    def stop(self):
        """Disarm the timer if armed."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self):
        self._event = None
        self.fired_count += 1
        self.callback()

    def __repr__(self):
        return f"<Timer {self.name!r} armed={self.armed}>"


class PeriodicTask:
    """A repeating callback with a fixed interval.

    The first invocation happens one full interval after :meth:`start`.
    """

    def __init__(self, process, interval, callback, args=()):
        if interval <= 0:
            raise SimulationError(f"interval must be positive (got {interval})")
        self.process = process
        self.interval = interval
        self.callback = callback
        self.args = args
        self.running = False
        self.ticks = 0

    def start(self):
        self.running = True
        self.process.after(self.interval, self._tick)

    def stop(self):
        self.running = False

    def _tick(self):
        if not self.running or not self.process.alive:
            return
        self.ticks += 1
        self.callback(*self.args)
        if self.running and self.process.alive:
            self.process.after(self.interval, self._tick)
