"""Pluggable barrier transports for the parallel runtime.

The coordinator/worker window protocol (see
:mod:`repro.sim.parallel.runtime`) moves *frame batches* — the
cross-shard traffic of one window, grouped per destination shard —
between OS processes at every barrier.  How those bytes travel is a
transport concern, factored out here behind one interface so the
runtime can run differentially over either implementation:

``pipe`` (reference)
    PR 6's transport: each batch is one ``pickle.dumps`` blob riding
    the worker's control pipe inline.  Simple, stateless, and the
    definition of correct — the shared-memory transport must be
    bit-identical to it, and ``ParallelRunner(transport="pipe")``
    keeps it selectable for differential runs.

``shm`` (default for ``workers > 1``)
    Batches are encoded with the compact :class:`FrameCodec` below and
    written into a ``multiprocessing.shared_memory`` ring buffer —
    one ring per worker, written only by its owning worker.  The
    control pipe then carries a tiny *handle*
    ``("r", worker, start, length)`` instead of the payload; any other
    worker attaches to the ring read-only and copies the bytes out
    directly, so batch payloads cross exactly one shared-memory write
    and one read, never a pickle of the control tuple.  Ring ownership
    is lock-step: the barrier protocol guarantees all data written
    during window ``k`` is consumed before the writer's window ``k+2``
    begins, so the ring needs no locks — the writer frees space two
    windows behind its cursor (:meth:`ShmRing.rotate`).  A batch that
    does not fit in the remaining ring space falls back to an inline
    ``("i", bytes)`` handle on the pipe (counted as ``overflow``), so
    backpressure degrades to the reference transport instead of
    deadlocking the barrier.

Compact frame encoding
----------------------
:class:`FrameCodec` encodes a batch without pickle on the hot path.
Frames are grouped into per-source-shard sections; each frame is

    arrival (prefix-compressed f64) | frame seq (delta) | packet

All codec state lives per directed ``(src_shard, dst_shard)`` *stream*
(:class:`_StreamEncoder` mirrored by :class:`_StreamDecoder`), so the
encoding exploits what cross-shard BGP traffic actually looks like:

* **Flow interning** — a handful of long-lived TCP flows carry all
  frames, so the 5-tuple ``(src, dst, protocol, sport, dport)`` is sent
  once per stream and referenced by a flow id afterwards (inline in the
  kind byte for the first seven flows; IPv4 addresses pack to 4 raw
  bytes in the definition).  Per flow, the IP+TCP framing overhead
  ``packet.size - len(payload)`` is constant, so ``size`` is elided
  after the first packet.
* **Segment delta state** — per flow, TCP ``seq``/``ack`` advance by
  payload-sized steps, the advertised window barely moves, and most
  segments are pure ACKs, so seq/ack are zigzag deltas against the
  previous segment of the same flow, with meta-bits for "window
  unchanged", "flags == ACK", and "empty payload".
* **Arrival prefix compression** — consecutive arrivals in a stream
  are nearby instants whose big-endian IEEE-754 images share 3-5
  leading bytes; each arrival is a shared-prefix count plus the
  differing tail, round-tripping the float exactly.
* **Payload blob interning** — the same flyweight idea as the PR 1
  interned wire codec: the first occurrence of a payload byte string is
  sent raw and assigned the next table id, repeats are sent as a varint
  reference.  BGP bursts fan identical UPDATE trains to several border
  neighbours and retransmit identical segments under loss, so the
  reference hit rate is what buys a large share of the >=3x byte
  reduction over pickle.

Packets that are not plain IPv4/TCP round-trip exactly through
per-field or whole-pickle fallbacks, so arbitrary scenarios stay
correct, just less compact.

Stream state is kept consistent across dynamic shard migration by
*epochs*: every section carries its source shard's migration
generation, and a decoder that sees a new epoch resets that stream's
state (the migrated shard's fresh encoder starts empty, and the
adopting worker rebuilds its decoder state by replaying the recorded
inbound history — see DESIGN.md §11).
"""

import pickle
import struct

from multiprocessing import shared_memory

from repro.sim.engine import SimulationError
from repro.sim.parallel.boundary import CrossShardFrame
from repro.sim.network import Packet
from repro.tcpsim.segment import Segment

_F64 = struct.Struct(">d")

#: interning policy: payload blobs shorter than this are always
#: inlined, and a stream's tables stop growing at the limits (further
#: new entries inline)
INTERN_MIN_BYTES = 16
INTERN_TABLE_LIMIT = 8192
FLOW_TABLE_LIMIT = 4096

#: default per-worker ring capacity (bytes)
DEFAULT_RING_BYTES = 1 << 20


# ----------------------------------------------------------------------
# varint / primitive helpers
# ----------------------------------------------------------------------

def _write_varint(out, value):
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(data, offset):
    result = 0
    shift = 0
    while True:
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7


def _write_signed(out, value):
    # zigzag: small magnitudes of either sign stay one byte
    _write_varint(out, (value << 1) if value >= 0 else ((-value << 1) - 1))


def _read_signed(data, offset):
    raw, offset = _read_varint(data, offset)
    return ((raw >> 1) if not raw & 1 else -((raw + 1) >> 1)), offset


def _write_str(out, text):
    raw = text.encode("utf-8")
    _write_varint(out, len(raw))
    out += raw


def _read_str(data, offset):
    length, offset = _read_varint(data, offset)
    return data[offset:offset + length].decode("utf-8"), offset + length


def _ipv4_bytes(text):
    """4 raw bytes for a dotted quad, or None when it is not one."""
    parts = text.split(".")
    if len(parts) != 4:
        return None
    try:
        values = [int(p) for p in parts]
    except ValueError:
        return None
    if any(v < 0 or v > 255 for v in values) or any(
        p != str(v) for p, v in zip(parts, values)
    ):
        return None
    return bytes(values)


def _ipv4_text(data, offset):
    return ".".join(str(b) for b in data[offset:offset + 4]), offset + 4


def _varint_ok(value):
    return type(value) is int and value >= 0


# ----------------------------------------------------------------------
# per-stream codec state (one directed shard pair each)
# ----------------------------------------------------------------------

_BLOB_INLINE = 0   # varint len + raw, not added to the table
_BLOB_NEW = 1      # varint len + raw, appended to the table
_BLOB_REF = 2      # varint id into the table


class _StreamEncoder:
    """Sending-side state of one ``(src_shard, dst_shard)`` stream."""

    __slots__ = ("blobs", "flows", "flow_state", "last_arrival",
                 "last_frame_seq")

    def __init__(self):
        self.blobs = {}        # payload bytes -> table id
        self.flows = {}        # 5-tuple -> flow id
        # flow id -> [last_seq, last_ack, last_window, last_overhead]
        self.flow_state = []
        self.last_arrival = None    # big-endian f64 image of last arrival
        self.last_frame_seq = None

    def emit_blob(self, out, data):
        if len(data) < INTERN_MIN_BYTES:
            out.append(_BLOB_INLINE)
            _write_varint(out, len(data))
            out += data
            return
        ref = self.blobs.get(data)
        if ref is not None:
            out.append(_BLOB_REF)
            _write_varint(out, ref)
            return
        if len(self.blobs) < INTERN_TABLE_LIMIT:
            self.blobs[data] = len(self.blobs)
            out.append(_BLOB_NEW)
        else:
            out.append(_BLOB_INLINE)
        _write_varint(out, len(data))
        out += data

    def emit_arrival(self, out, arrival):
        image = _F64.pack(arrival)
        last = self.last_arrival
        shared = 0
        if last is not None:
            while shared < 8 and image[shared] == last[shared]:
                shared += 1
        out.append(shared)
        out += image[shared:]
        self.last_arrival = image

    def emit_frame_seq(self, out, seq):
        if self.last_frame_seq is None:
            _write_varint(out, seq)
        else:
            _write_signed(out, seq - self.last_frame_seq)
        self.last_frame_seq = seq


class _StreamDecoder:
    """Receiving-side mirror of :class:`_StreamEncoder`."""

    __slots__ = ("blobs", "flows", "flow_state", "last_arrival",
                 "last_frame_seq")

    def __init__(self):
        self.blobs = []        # table id -> payload bytes
        self.flows = []        # flow id -> 5-tuple
        self.flow_state = []   # flow id -> [seq, ack, window, overhead]
        self.last_arrival = None
        self.last_frame_seq = None

    def read_blob(self, data, offset):
        mode = data[offset]
        offset += 1
        if mode == _BLOB_REF:
            ref, offset = _read_varint(data, offset)
            return self.blobs[ref], offset
        length, offset = _read_varint(data, offset)
        blob = bytes(data[offset:offset + length])
        if mode == _BLOB_NEW:
            self.blobs.append(blob)
        return blob, offset + length

    def read_arrival(self, data, offset):
        shared = data[offset]
        offset += 1
        tail = bytes(data[offset:offset + 8 - shared])
        image = (self.last_arrival[:shared] if shared else b"") + tail
        self.last_arrival = image
        return _F64.unpack(image)[0], offset + 8 - shared

    def read_frame_seq(self, data, offset):
        if self.last_frame_seq is None:
            seq, offset = _read_varint(data, offset)
        else:
            delta, offset = _read_signed(data, offset)
            seq = self.last_frame_seq + delta
        self.last_frame_seq = seq
        return seq, offset


# ----------------------------------------------------------------------
# the compact codec
# ----------------------------------------------------------------------

_BATCH_VERSION = 3

# packet kind-byte layout
_KIND_FLOW_REF = 0x01         # flow id in bits 5-7 (7 = varint escape)
_KIND_SIZE_ELIDED = 0x02      # size = flow's framing overhead + payload len
_KIND_PAYLOAD_SHIFT = 2
_KIND_PAYLOAD_MASK = 0x03 << _KIND_PAYLOAD_SHIFT
_PAYLOAD_NONE = 0
_PAYLOAD_BYTES = 1
_PAYLOAD_SEGMENT = 2
_PAYLOAD_PICKLE = 3
_KIND_PACKET_PICKLED = 0x10   # whole-packet pickle fallback
_KIND_FLOW_SHIFT = 5
_KIND_FLOW_INLINE_MAX = 6     # ids 0-6 ride the kind byte; 7 = escape

# flow-definition byte
_FLOWDEF_SRC_IPV4 = 0x01
_FLOWDEF_DST_IPV4 = 0x02
_FLOWDEF_NO_INTERN = 0x04     # table full: definition not assigned an id

# segment meta byte
_SEG_HAS_MSS = 0x01
_SEG_SAME_WINDOW = 0x02
_SEG_EMPTY_PAYLOAD = 0x04
_SEG_FLAGS_ACK = 0x08         # flags == 0x10, flags byte elided

_TCP_ACK = 0x10


def _payload_length(tag, payload):
    """Payload bytes counted by the flow's framing-overhead delta."""
    if tag == _PAYLOAD_BYTES:
        return len(payload)
    if tag == _PAYLOAD_SEGMENT:
        return len(payload.payload)
    return 0  # NONE; PICKLE never elides size


class FrameCodec:
    """Compact stateful batch codec (one instance per worker process).

    Encoder state is keyed by ``(src_shard, dst_shard)`` on the sending
    side and mirrored on the receiving side; :meth:`set_epoch` and
    :meth:`drop_shard` keep both ends consistent across dynamic shard
    migration (the runtime calls them; see module docstring).
    """

    def __init__(self):
        self._encoders = {}      # (src, dst) -> _StreamEncoder
        self._decoders = {}      # (src, dst) -> _StreamDecoder
        self._dec_epochs = {}    # (src, dst) -> last seen epoch
        self._epochs = {}        # src -> epoch stamped on outgoing sections

    # -- migration hooks ----------------------------------------------

    def set_epoch(self, src_shard, epoch):
        """Stamp ``src_shard``'s sections with ``epoch`` from now on."""
        self._epochs[src_shard] = epoch

    def drop_shard(self, shard_id):
        """Forget the stream state this worker *owns* for ``shard_id``:
        its outbound encoders ``(shard_id, *)`` and its inbound decoders
        ``(*, shard_id)``.  Called on both sides of a migration — the
        old owner discards dead streams, the new owner clears any stale
        tenure before the replay rebuilds the inbound decoders.

        Streams that merely *terminate* at the shard from other shards
        on this worker — encoders keyed ``(other, shard_id)`` — are
        deliberately preserved: the migrated shard's replayed decoder
        was rebuilt from the full byte history of those streams and
        expects them to continue, not restart.  (The reverse direction,
        decoders keyed ``(shard_id, other)``, needs no care either way:
        the adoption bumps the shard's epoch, which resets those
        decoders on the next batch.)"""
        for key in [k for k in self._encoders if k[0] == shard_id]:
            del self._encoders[key]
        for table in (self._decoders, self._dec_epochs):
            for key in [k for k in table if k[1] == shard_id]:
                del table[key]

    # -- encode --------------------------------------------------------

    def encode_batch(self, dst_shard, frames):
        sections = {}
        for frame in frames:
            sections.setdefault(frame.src_shard, []).append(frame)
        out = bytearray()
        out.append(_BATCH_VERSION)
        _write_varint(out, len(sections))
        for src_shard, group in sections.items():
            _write_str(out, src_shard)
            _write_varint(out, self._epochs.get(src_shard, 0))
            _write_varint(out, len(group))
            stream = self._encoders.get((src_shard, dst_shard))
            if stream is None:
                stream = self._encoders[(src_shard, dst_shard)] \
                    = _StreamEncoder()
            for frame in group:
                stream.emit_arrival(out, frame.arrival_time)
                stream.emit_frame_seq(out, frame.seq)
                self._encode_packet(out, frame.packet, stream)
        return bytes(out)

    def _encode_packet(self, out, packet, stream):
        if type(packet) is not Packet or not (
            _varint_ok(packet.sport) and _varint_ok(packet.dport)
            and _varint_ok(packet.size)
        ):
            out.append(_KIND_PACKET_PICKLED)
            stream.emit_blob(
                out, pickle.dumps(packet, pickle.HIGHEST_PROTOCOL)
            )
            return
        payload = packet.payload
        if payload is None:
            tag = _PAYLOAD_NONE
        elif type(payload) is bytes:
            tag = _PAYLOAD_BYTES
        elif type(payload) is Segment and _varint_ok(payload.seq) \
                and _varint_ok(payload.ack) and _varint_ok(payload.window) \
                and (payload.mss is None or _varint_ok(payload.mss)) \
                and type(payload.payload) is bytes:
            tag = _PAYLOAD_SEGMENT
        else:
            tag = _PAYLOAD_PICKLE
        kind = tag << _KIND_PAYLOAD_SHIFT
        flow_key = (packet.src, packet.dst, packet.protocol,
                    packet.sport, packet.dport)
        flow_id = stream.flows.get(flow_key)
        state = None
        size_elided = False
        if flow_id is not None:
            kind |= _KIND_FLOW_REF
            if flow_id <= _KIND_FLOW_INLINE_MAX:
                kind |= flow_id << _KIND_FLOW_SHIFT
            else:
                kind |= 7 << _KIND_FLOW_SHIFT
            state = stream.flow_state[flow_id]
            if tag != _PAYLOAD_PICKLE:
                overhead = packet.size - _payload_length(tag, payload)
                if overhead == state[3]:
                    kind |= _KIND_SIZE_ELIDED
                    size_elided = True
                else:
                    state[3] = overhead
        out.append(kind)
        if flow_id is not None:
            if flow_id > _KIND_FLOW_INLINE_MAX:
                _write_varint(out, flow_id)
        else:
            state = self._encode_flow_def(out, flow_key, stream)
            if state is not None and tag != _PAYLOAD_PICKLE:
                state[3] = packet.size - _payload_length(tag, payload)
        if not size_elided:
            _write_varint(out, packet.size)
        if tag == _PAYLOAD_BYTES:
            stream.emit_blob(out, payload)
        elif tag == _PAYLOAD_SEGMENT:
            self._encode_segment(out, payload, stream, state)
        elif tag == _PAYLOAD_PICKLE:
            stream.emit_blob(
                out, pickle.dumps(payload, pickle.HIGHEST_PROTOCOL)
            )

    @staticmethod
    def _encode_flow_def(out, flow_key, stream):
        src, dst, protocol, sport, dport = flow_key
        src4 = _ipv4_bytes(src)
        dst4 = _ipv4_bytes(dst)
        flowdef = 0
        if src4 is not None:
            flowdef |= _FLOWDEF_SRC_IPV4
        if dst4 is not None:
            flowdef |= _FLOWDEF_DST_IPV4
        state = None
        if len(stream.flows) >= FLOW_TABLE_LIMIT:
            flowdef |= _FLOWDEF_NO_INTERN
        else:
            stream.flows[flow_key] = len(stream.flows)
            state = [0, 0, None, None]
            stream.flow_state.append(state)
        out.append(flowdef)
        if src4 is not None:
            out += src4
        else:
            _write_str(out, src)
        if dst4 is not None:
            out += dst4
        else:
            _write_str(out, dst)
        _write_str(out, protocol)
        _write_varint(out, sport)
        _write_varint(out, dport)
        return state

    @staticmethod
    def _encode_segment(out, segment, stream, state):
        if state is None:
            state = [0, 0, None, None]
        meta = 0
        if segment.mss is not None:
            meta |= _SEG_HAS_MSS
        if segment.window == state[2]:
            meta |= _SEG_SAME_WINDOW
        if not segment.payload:
            meta |= _SEG_EMPTY_PAYLOAD
        if segment.flags == _TCP_ACK:
            meta |= _SEG_FLAGS_ACK
        out.append(meta)
        # state[0] is the *predicted* next seq (previous seq + previous
        # payload length): in-order segments delta to zero, pure ACKs
        # repeat their seq exactly, and only retransmits pay full deltas
        _write_signed(out, segment.seq - state[0])
        _write_signed(out, segment.ack - state[1])
        if not meta & _SEG_FLAGS_ACK:
            out.append(segment.flags & 0xFF)
        if not meta & _SEG_SAME_WINDOW:
            _write_varint(out, segment.window)
        if meta & _SEG_HAS_MSS:
            _write_varint(out, segment.mss)
        if not meta & _SEG_EMPTY_PAYLOAD:
            stream.emit_blob(out, segment.payload)
        state[0] = segment.seq + len(segment.payload)
        state[1] = segment.ack
        state[2] = segment.window

    # -- decode --------------------------------------------------------

    def decode_batch(self, data, dst_shard):
        """Decode one batch.  ``dst_shard`` comes from the dispatch
        routing (the coordinator keys every handle by destination), so
        it is not repeated on the wire."""
        if data[0] != _BATCH_VERSION:
            raise SimulationError(
                f"unknown frame-batch version {data[0]} (expected"
                f" {_BATCH_VERSION})"
            )
        n_sections, offset = _read_varint(data, 1)
        frames = []
        for _ in range(n_sections):
            src_shard, offset = _read_str(data, offset)
            epoch, offset = _read_varint(data, offset)
            n_frames, offset = _read_varint(data, offset)
            key = (src_shard, dst_shard)
            if self._dec_epochs.get(key) != epoch:
                # the source shard migrated: its encoder restarted with
                # empty tables, so the mirror resets too
                self._dec_epochs[key] = epoch
                self._decoders[key] = _StreamDecoder()
            stream = self._decoders.get(key)
            if stream is None:
                stream = self._decoders[key] = _StreamDecoder()
            for _ in range(n_frames):
                arrival, offset = stream.read_arrival(data, offset)
                seq, offset = stream.read_frame_seq(data, offset)
                packet, offset = self._decode_packet(data, offset, stream)
                frames.append(CrossShardFrame(
                    dst_shard, arrival, src_shard, seq, packet
                ))
        return frames

    def _decode_packet(self, data, offset, stream):
        kind = data[offset]
        offset += 1
        if kind & _KIND_PACKET_PICKLED:
            blob, offset = stream.read_blob(data, offset)
            return pickle.loads(blob), offset
        state = None
        if kind & _KIND_FLOW_REF:
            flow_id = kind >> _KIND_FLOW_SHIFT
            if flow_id == 7:
                flow_id, offset = _read_varint(data, offset)
            src, dst, protocol, sport, dport = stream.flows[flow_id]
            state = stream.flow_state[flow_id]
        else:
            state, flow_key, offset = self._decode_flow_def(
                data, offset, stream
            )
            src, dst, protocol, sport, dport = flow_key
        tag = (kind & _KIND_PAYLOAD_MASK) >> _KIND_PAYLOAD_SHIFT
        size = None
        if not kind & _KIND_SIZE_ELIDED:
            size, offset = _read_varint(data, offset)
        if tag == _PAYLOAD_NONE:
            payload = None
        elif tag == _PAYLOAD_BYTES:
            payload, offset = stream.read_blob(data, offset)
        elif tag == _PAYLOAD_SEGMENT:
            payload, offset = self._decode_segment(data, offset, stream, state)
        else:
            blob, offset = stream.read_blob(data, offset)
            payload = pickle.loads(blob)
        if size is None:
            size = state[3] + _payload_length(tag, payload)
        elif state is not None and tag != _PAYLOAD_PICKLE:
            state[3] = size - _payload_length(tag, payload)
        return Packet(src, dst, protocol, sport, dport, payload, size), offset

    @staticmethod
    def _decode_flow_def(data, offset, stream):
        flowdef = data[offset]
        offset += 1
        if flowdef & _FLOWDEF_SRC_IPV4:
            src, offset = _ipv4_text(data, offset)
        else:
            src, offset = _read_str(data, offset)
        if flowdef & _FLOWDEF_DST_IPV4:
            dst, offset = _ipv4_text(data, offset)
        else:
            dst, offset = _read_str(data, offset)
        protocol, offset = _read_str(data, offset)
        sport, offset = _read_varint(data, offset)
        dport, offset = _read_varint(data, offset)
        flow_key = (src, dst, protocol, sport, dport)
        if flowdef & _FLOWDEF_NO_INTERN:
            state = None
        else:
            state = [0, 0, None, None]
            stream.flows.append(flow_key)
            stream.flow_state.append(state)
        return state, flow_key, offset

    @staticmethod
    def _decode_segment(data, offset, stream, state):
        if state is None:
            state = [0, 0, None, None]
        meta = data[offset]
        offset += 1
        seq_delta, offset = _read_signed(data, offset)
        ack_delta, offset = _read_signed(data, offset)
        seq = state[0] + seq_delta
        ack = state[1] + ack_delta
        if meta & _SEG_FLAGS_ACK:
            flags = _TCP_ACK
        else:
            flags = data[offset]
            offset += 1
        if meta & _SEG_SAME_WINDOW:
            window = state[2]
        else:
            window, offset = _read_varint(data, offset)
        mss = None
        if meta & _SEG_HAS_MSS:
            mss, offset = _read_varint(data, offset)
        if meta & _SEG_EMPTY_PAYLOAD:
            payload = b""
        else:
            payload, offset = stream.read_blob(data, offset)
        state[0] = seq + len(payload)
        state[1] = ack
        state[2] = window
        return Segment(seq, ack, flags, window, payload, mss), offset


class PickleCodec:
    """The reference codec: one pickle blob per batch, no shared state."""

    def encode_batch(self, dst_shard, frames):
        return pickle.dumps(list(frames), pickle.HIGHEST_PROTOCOL)

    def decode_batch(self, data, dst_shard=None):
        return pickle.loads(data)

    def set_epoch(self, src_shard, epoch):
        pass

    def drop_shard(self, shard_id):
        pass


# ----------------------------------------------------------------------
# shared-memory rings
# ----------------------------------------------------------------------

def _attach_shm(name):
    """Attach to an existing segment owned by the coordinator.

    On Python < 3.13 attaching re-registers the segment with the
    resource tracker (bpo-38119), but multiprocessing children share
    the coordinator's tracker process, so the duplicate register is a
    set no-op and the coordinator's ``unlink()`` removes the single
    entry — no attach-side unregister needed (an explicit unregister
    here would instead race the owner's and spam KeyError tracebacks
    from the tracker).
    """
    return shared_memory.SharedMemory(name=name)


class ShmRing:
    """A byte arena over one shared-memory segment, lock-step safe.

    The single writer appends at a monotonically advancing cursor
    (modulo capacity, splitting writes across the physical end — a
    *wrap*).  There are no shared head/tail fields: the window barrier
    protocol itself is the synchronization.  Data written during
    barrier cycle ``k`` is referenced in the coordinator's dispatch of
    window ``k+1`` and consumed by readers before they acknowledge that
    window — and the writer only starts cycle ``k+2`` after every
    ``k+1`` acknowledgement has been collected.  :meth:`rotate` is
    called at each cycle start and frees everything older than the
    previous cycle; :meth:`write` refuses (returns ``None``) when the
    two live cycles would overrun capacity, which the transport turns
    into an inline-on-pipe fallback rather than a stall.
    """

    def __init__(self, name=None, capacity=DEFAULT_RING_BYTES, create=False):
        if create:
            self.shm = shared_memory.SharedMemory(
                name=name, create=True, size=capacity
            )
        else:
            self.shm = _attach_shm(name)
        self.capacity = capacity
        self.name = self.shm.name
        self._cursor = 0          # physical write position
        self._cycle_bytes = 0     # written this cycle
        self._prev_bytes = 0      # written last cycle (still live)
        self.wraps = 0
        self.overflows = 0

    # -- writer side ---------------------------------------------------

    def free_bytes(self):
        return self.capacity - self._cycle_bytes - self._prev_bytes

    def rotate(self):
        """Start a new barrier cycle: data from two cycles ago is dead."""
        self._prev_bytes = self._cycle_bytes
        self._cycle_bytes = 0

    def write(self, data):
        """Append ``data``; returns ``(start, length)`` or ``None`` when
        the live window of the ring cannot hold it (backpressure)."""
        length = len(data)
        if length > self.free_bytes():
            self.overflows += 1
            return None
        start = self._cursor
        end = start + length
        if end <= self.capacity:
            self.shm.buf[start:end] = data
        else:
            head = self.capacity - start
            self.shm.buf[start:self.capacity] = data[:head]
            self.shm.buf[0:length - head] = data[head:]
            self.wraps += 1
        self._cursor = end % self.capacity
        self._cycle_bytes += length
        return start, length

    # -- reader side ---------------------------------------------------

    def read(self, start, length):
        end = start + length
        if end <= self.capacity:
            return bytes(self.shm.buf[start:end])
        head = self.capacity - start
        return bytes(self.shm.buf[start:self.capacity]) + bytes(
            self.shm.buf[0:end - self.capacity]
        )

    # -- lifecycle -----------------------------------------------------

    def close(self):
        try:
            self.shm.close()
        except (OSError, BufferError):
            pass

    def unlink(self):
        try:
            self.shm.unlink()
        except (FileNotFoundError, OSError):
            pass


# ----------------------------------------------------------------------
# transport endpoints
# ----------------------------------------------------------------------

TRANSPORT_KINDS = ("shm", "pipe")

_ring_counter = [0]


def _ring_name(index):
    import os

    _ring_counter[0] += 1
    return f"rppar-{os.getpid()}-{_ring_counter[0]}-w{index}"


class WorkerTransportSpec:
    """Picklable transport description handed to a spawned worker."""

    __slots__ = ("kind", "index", "ring_names", "capacity")

    def __init__(self, kind, index, ring_names=None, capacity=0):
        self.kind = kind
        self.index = index
        self.ring_names = dict(ring_names or {})
        self.capacity = capacity

    def __getstate__(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state):
        for slot, value in state.items():
            setattr(self, slot, value)


class WorkerTransport:
    """The worker-process end of a transport: encode, stage, fetch.

    ``stage(blob)`` places an encoded batch where the coordinator's
    handle can reach it and returns the handle; ``fetch(handle)``
    resolves a handle from any worker back into bytes.  The shm flavour
    owns this worker's ring for writing and attaches to other workers'
    rings lazily for reading; the pipe flavour is the identity (handles
    *are* the bytes and ride the control pipe).
    """

    def __init__(self, spec):
        self.kind = spec.kind
        self.index = spec.index
        self._spec = spec
        self._readers = {}
        if spec.kind == "shm":
            self.codec = FrameCodec()
            self._ring = ShmRing(
                spec.ring_names[spec.index], capacity=spec.capacity
            )
        else:
            self.codec = PickleCodec()
            self._ring = None
        self.inline_fallbacks = 0

    def rotate(self):
        if self._ring is not None:
            self._ring.rotate()

    def stage(self, blob):
        if self._ring is None:
            return blob
        placed = self._ring.write(blob)
        if placed is None:
            self.inline_fallbacks += 1
            return ("i", blob)
        return ("r", self.index, placed[0], placed[1])

    def fetch(self, handle):
        if self._ring is None:
            return handle
        if handle[0] == "i":
            return handle[1]
        _tag, index, start, length = handle
        if index == self.index:
            return self._ring.read(start, length)
        reader = self._readers.get(index)
        if reader is None:
            reader = self._readers[index] = ShmRing(
                self._spec.ring_names[index], capacity=self._spec.capacity
            )
        return reader.read(start, length)

    @property
    def ring_wraps(self):
        return self._ring.wraps if self._ring is not None else 0

    def close(self):
        if self._ring is not None:
            self._ring.close()
        for reader in self._readers.values():
            reader.close()
        self._readers.clear()


def handle_bytes(handle):
    """Encoded size of a staged batch handle, for transport accounting."""
    if type(handle) is bytes:
        return len(handle)
    if handle[0] == "i":
        return len(handle[1])
    return handle[3]


class TransportContext:
    """The coordinator end: owns the rings, mints worker specs.

    ``fetch(handle)`` resolves any handle into bytes (used to retain
    per-shard inbound history when dynamic rebalancing is enabled) —
    safe at dispatch time because handles are only resolved while their
    ring cycle is live.  ``close()`` unlinks every segment; it runs on
    the coordinator's cleanup path even when a worker died mid-window,
    so no ``/dev/shm`` entries outlive the run.
    """

    def __init__(self, kind, worker_count, capacity=DEFAULT_RING_BYTES):
        if kind not in TRANSPORT_KINDS:
            raise SimulationError(
                f"unknown transport {kind!r} (expected one of"
                f" {TRANSPORT_KINDS})"
            )
        self.kind = kind
        self.capacity = capacity
        self._rings = {}
        self._ring_names = {}
        if kind == "shm":
            try:
                for index in range(worker_count):
                    ring = ShmRing(
                        _ring_name(index), capacity=capacity, create=True
                    )
                    self._rings[index] = ring
                    self._ring_names[index] = ring.name
            except OSError:
                # no usable shared memory on this host: degrade to the
                # reference transport instead of failing the run
                for ring in self._rings.values():
                    ring.close()
                    ring.unlink()
                self._rings.clear()
                self._ring_names.clear()
                self.kind = "pipe"

    def worker_spec(self, index):
        return WorkerTransportSpec(
            self.kind, index, self._ring_names, self.capacity
        )

    def fetch(self, handle):
        if self.kind == "pipe":
            return handle
        if handle[0] == "i":
            return handle[1]
        _tag, index, start, length = handle
        return self._rings[index].read(start, length)

    def close(self):
        for ring in self._rings.values():
            ring.close()
            ring.unlink()
        self._rings.clear()
