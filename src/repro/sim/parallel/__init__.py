"""Conservative parallel simulation runtime (sharded multi-process execution).

See :mod:`repro.sim.parallel.runtime` for the execution model and the
scenario-builder contract, :mod:`repro.sim.parallel.boundary` for how
packets cross shard boundaries, and :mod:`repro.sim.parallel.transport`
for the pluggable barrier transports (shared-memory rings vs the
pickle-over-pipe reference).
"""

from repro.sim.parallel.boundary import BoundaryLink, CrossShardFrame, ShardBoundary
from repro.sim.parallel.partition import (
    assign_shards,
    partition_items,
    rebalance_moves,
)
from repro.sim.parallel.runtime import (
    ParallelResult,
    ParallelRunner,
    RebalanceConfig,
    ShardSpec,
)
from repro.sim.parallel.transport import FrameCodec, PickleCodec, ShmRing

__all__ = [
    "BoundaryLink",
    "CrossShardFrame",
    "FrameCodec",
    "ParallelResult",
    "ParallelRunner",
    "PickleCodec",
    "RebalanceConfig",
    "ShardBoundary",
    "ShardSpec",
    "ShmRing",
    "assign_shards",
    "partition_items",
    "rebalance_moves",
]
