"""Conservative parallel simulation runtime (sharded multi-process execution).

See :mod:`repro.sim.parallel.runtime` for the execution model and the
scenario-builder contract, and :mod:`repro.sim.parallel.boundary` for how
packets cross shard boundaries.
"""

from repro.sim.parallel.boundary import BoundaryLink, CrossShardFrame, ShardBoundary
from repro.sim.parallel.partition import assign_shards, partition_items
from repro.sim.parallel.runtime import ParallelResult, ParallelRunner, ShardSpec

__all__ = [
    "BoundaryLink",
    "CrossShardFrame",
    "ShardBoundary",
    "ParallelResult",
    "ParallelRunner",
    "ShardSpec",
    "assign_shards",
    "partition_items",
]
