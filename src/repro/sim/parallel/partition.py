"""Topology partitioning: spread simulation cells across shards/workers.

Partitioning here is deliberately simple and deterministic: longest-
processing-time (LPT) greedy bin packing by declared weight.  The fleet
workload's cells are homogeneous enough that LPT is within a few percent
of optimal, and determinism matters more than the last percent — the
same inputs must produce the same partition on every run and host, or
the bit-identical-results guarantee of the parallel runtime would break
at the assignment step.
"""


def partition_items(items, bins, weight=None):
    """Partition ``items`` into ``bins`` load-balanced groups.

    ``weight(item) -> float`` defaults to uniform.  Returns a list of
    ``bins`` lists; order inside each group follows the input order (ties
    in the greedy step resolve by input position, so the result is a
    pure function of the arguments).  Empty groups are possible only
    when ``len(items) < bins``.
    """
    if bins <= 0:
        raise ValueError(f"bins must be positive (got {bins})")
    weigh = weight or (lambda _item: 1.0)
    indexed = sorted(
        enumerate(items), key=lambda pair: (-weigh(pair[1]), pair[0])
    )
    loads = [0.0] * bins
    groups = [[] for _ in range(bins)]
    for position, item in indexed:
        target = min(range(bins), key=lambda b: (loads[b], b))
        loads[target] += weigh(item)
        groups[target].append((position, item))
    return [[item for _pos, item in sorted(group)] for group in groups]


def assign_shards(specs, workers):
    """Assign ShardSpecs to ``workers`` processes, balanced by weight.

    Returns a list of ``min(workers, len(specs))`` non-empty spec lists.
    """
    workers = max(1, min(workers, len(specs)))
    groups = partition_items(
        specs, workers, weight=lambda spec: getattr(spec, "weight", 1.0)
    )
    return [group for group in groups if group]


def rebalance_moves(busy, assignment, workers, min_gain=0.05, max_moves=1):
    """Pick shard migrations that shrink the projected makespan.

    A pure function of its arguments: ``busy`` maps shard_id to
    accumulated compute seconds, ``assignment`` maps shard_id to its
    current worker index.  Greedily moves the best-fitting shard from
    the most-loaded worker to the least-loaded one, up to ``max_moves``
    times, accepting a move only when it improves the makespan (the
    most-loaded worker's total) by more than ``min_gain`` as a fraction.
    Ties break by worker index then shard id, so identical inputs yield
    identical moves on every host.  Returns ``[(shard_id, to_worker)]``.

    Note the runtime's bit-identity guarantee does not rest on this
    function: shard placement never affects simulation results (see
    DESIGN.md §11), so rebalancing driven by *measured* — hence noisy —
    busy stats is still safe.  Determinism here only makes runs
    reproducible given the same stats.
    """
    if workers < 2 or max_moves < 1:
        return []
    loads = [0.0] * workers
    placed = {index: [] for index in range(workers)}
    for sid in sorted(assignment):
        index = assignment[sid]
        loads[index] += busy.get(sid, 0.0)
        placed[index].append(sid)
    moves = []
    for _ in range(max_moves):
        src = max(range(workers), key=lambda i: (loads[i], -i))
        dst = min(range(workers), key=lambda i: (loads[i], i))
        if src == dst:
            break
        makespan = max(loads)
        best = None
        # candidates ordered heaviest-first, shard id breaking ties; a
        # worker never gives up its last shard
        if len(placed[src]) < 2:
            break
        for sid in sorted(placed[src],
                          key=lambda s: (-busy.get(s, 0.0), s)):
            cost = busy.get(sid, 0.0)
            if cost <= 0.0:
                continue
            new_src = loads[src] - cost
            new_dst = loads[dst] + cost
            others = max(
                (loads[i] for i in range(workers) if i not in (src, dst)),
                default=0.0,
            )
            new_makespan = max(new_src, new_dst, others)
            if new_makespan >= makespan:
                continue
            gain = (makespan - new_makespan) / makespan if makespan else 0.0
            if gain <= min_gain:
                continue
            best = (sid, cost)
            break
        if best is None:
            break
        sid, cost = best
        loads[src] -= cost
        loads[dst] += cost
        placed[src].remove(sid)
        placed[dst].append(sid)
        moves.append((sid, dst))
    return moves
