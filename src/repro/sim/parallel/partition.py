"""Topology partitioning: spread simulation cells across shards/workers.

Partitioning here is deliberately simple and deterministic: longest-
processing-time (LPT) greedy bin packing by declared weight.  The fleet
workload's cells are homogeneous enough that LPT is within a few percent
of optimal, and determinism matters more than the last percent — the
same inputs must produce the same partition on every run and host, or
the bit-identical-results guarantee of the parallel runtime would break
at the assignment step.
"""


def partition_items(items, bins, weight=None):
    """Partition ``items`` into ``bins`` load-balanced groups.

    ``weight(item) -> float`` defaults to uniform.  Returns a list of
    ``bins`` lists; order inside each group follows the input order (ties
    in the greedy step resolve by input position, so the result is a
    pure function of the arguments).  Empty groups are possible only
    when ``len(items) < bins``.
    """
    if bins <= 0:
        raise ValueError(f"bins must be positive (got {bins})")
    weigh = weight or (lambda _item: 1.0)
    indexed = sorted(
        enumerate(items), key=lambda pair: (-weigh(pair[1]), pair[0])
    )
    loads = [0.0] * bins
    groups = [[] for _ in range(bins)]
    for position, item in indexed:
        target = min(range(bins), key=lambda b: (loads[b], b))
        loads[target] += weigh(item)
        groups[target].append((position, item))
    return [[item for _pos, item in sorted(group)] for group in groups]


def assign_shards(specs, workers):
    """Assign ShardSpecs to ``workers`` processes, balanced by weight.

    Returns a list of ``min(workers, len(specs))`` non-empty spec lists.
    """
    workers = max(1, min(workers, len(specs)))
    groups = partition_items(
        specs, workers, weight=lambda spec: getattr(spec, "weight", 1.0)
    )
    return [group for group in groups if group]
