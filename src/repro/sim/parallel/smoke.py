"""Parallel-runtime smoke check (``make parallel-smoke``).

Runs a miniature two-site fleet three times — workers=1 (sequential
sharded reference) and workers=2 over each barrier transport
(shared-memory rings, then the pickle-over-pipe reference) — and exits
non-zero unless all runs are bit-identical and the cross-site border
BGP mesh actually converged.  Fast enough for ``make verify``.

Usage::

    PYTHONPATH=src python -m repro.sim.parallel.smoke
"""

import sys
import time

from repro.sim.parallel.runtime import ParallelRunner
from repro.workloads.fleet import fleet_site_specs

DURATION = 22.0


def _specs():
    return fleet_site_specs(2, pairs=2, routes=20, border_routes=10,
                            churn_ticks=2, churn_interval=2.0)


def main():
    start = time.perf_counter()
    sequential = ParallelRunner(_specs(), workers=1).run(DURATION)
    shm = ParallelRunner(_specs(), workers=2, transport="shm").run(DURATION)
    pipe = ParallelRunner(_specs(), workers=2, transport="pipe").run(DURATION)
    elapsed = time.perf_counter() - start

    failures = []
    if sequential.shard_results != shm.shard_results:
        failures.append("workers=1 and workers=2 (shm) results differ")
    if sequential.shard_results != pipe.shard_results:
        failures.append("workers=1 and workers=2 (pipe) results differ")
    if shm.transport.get("kind") != "shm":
        failures.append(f"shm run used transport {shm.transport.get('kind')!r}")
    if pipe.transport.get("kind") != "pipe":
        failures.append(f"pipe run used transport {pipe.transport.get('kind')!r}")
    for sid in sorted(sequential.shard_results):
        result = sequential.shard_results[sid]
        if result["border_established"] < 1:
            failures.append(f"{sid}: border session never established")
        if len(result["border_rib"]) <= 10:
            failures.append(f"{sid}: no cross-site routes learned")
    if sequential.windows < 2:
        failures.append("expected multiple lookahead windows")

    print(
        f"parallel-smoke: 2 sites, {sequential.windows} windows,"
        f" lookahead {sequential.lookahead * 1e3:.0f} ms,"
        f" {sequential.executed} events, {elapsed:.1f}s wall"
    )
    if failures:
        for line in failures:
            print(f"  FAIL: {line}")
        return 1
    print("parallel-smoke: workers=1 == workers=2 over shm and pipe"
          " (bit-identical); ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
