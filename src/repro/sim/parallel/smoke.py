"""Parallel-runtime smoke check (``make parallel-smoke``).

Runs a miniature two-site fleet twice — workers=1 (sequential sharded
reference) and workers=2 (spawned OS processes) — and exits non-zero
unless the two runs are bit-identical and the cross-site border BGP mesh
actually converged.  Fast enough for ``make verify``.

Usage::

    PYTHONPATH=src python -m repro.sim.parallel.smoke
"""

import sys
import time

from repro.sim.parallel.runtime import ParallelRunner
from repro.workloads.fleet import fleet_site_specs

DURATION = 22.0


def _specs():
    return fleet_site_specs(2, pairs=2, routes=20, border_routes=10,
                            churn_ticks=2, churn_interval=2.0)


def main():
    start = time.perf_counter()
    sequential = ParallelRunner(_specs(), workers=1).run(DURATION)
    parallel = ParallelRunner(_specs(), workers=2).run(DURATION)
    elapsed = time.perf_counter() - start

    failures = []
    if sequential.shard_results != parallel.shard_results:
        failures.append("workers=1 and workers=2 results differ")
    for sid in sorted(sequential.shard_results):
        result = sequential.shard_results[sid]
        if result["border_established"] < 1:
            failures.append(f"{sid}: border session never established")
        if len(result["border_rib"]) <= 10:
            failures.append(f"{sid}: no cross-site routes learned")
    if sequential.windows < 2:
        failures.append("expected multiple lookahead windows")

    print(
        f"parallel-smoke: 2 sites, {sequential.windows} windows,"
        f" lookahead {sequential.lookahead * 1e3:.0f} ms,"
        f" {sequential.executed} events, {elapsed:.1f}s wall"
    )
    if failures:
        for line in failures:
            print(f"  FAIL: {line}")
        return 1
    print("parallel-smoke: workers=1 == workers=2 (bit-identical); ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
