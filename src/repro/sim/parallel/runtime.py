"""Conservative parallel simulation runtime (Chandy–Misra-style windows).

The runtime executes a set of *shards* — independent simulation
universes declared by :class:`ShardSpec` — either sequentially in the
calling process (``workers=1``) or spread over OS worker processes
(``workers=N``, spawn-safe).  Shards interact only through declared
:class:`~repro.sim.parallel.boundary.BoundaryLink` edges, and execution
proceeds in global lookahead windows:

    lookahead L = min cross-shard link latency
    window k   = virtual time (t0 + k*L, t0 + (k+1)*L]

Any frame sent during window k arrives no earlier than its send instant
plus L, i.e. strictly after the window's end — so exchanging mailboxes
only at window barriers never delivers a frame into a shard's past.
Inbound frames are merged with the deterministic order
``(arrival_time, src_shard, seq)`` before the next window runs, which
makes every shard's event sequence a pure function of the scenario and
seed: ``workers=1`` and ``workers=N`` produce bit-identical shard
states.  A shard with no links (a *closed* shard) free-runs to the
horizon in a single window, which is exactly the unsharded execution —
the single-process code path is unchanged and remains the default.

Scenario contract
-----------------
``ShardSpec.builder`` names a spawn-safe factory (top-level function or
``"module:function"`` string)::

    def build(shard_id, params, boundary):
        ... create Engine/Network/topology ...
        boundary.attach(network)      # once local endpoints exist
        return program

The returned *program* must expose ``engine`` and ``results()``
(picklable), and may override ``run_window(until)`` (default: the
engine's) — e.g. to interleave oracle checks — plus an optional
``finalize()`` hook that runs after the horizon.  Builders of shards
*with* cross-shard links must not send cross-shard traffic while
building (do timed setup via scheduled events); closed shards may
advance freely during build (e.g. to converge a topology).
"""

import importlib
import multiprocessing
import time
import traceback

from repro.sim.engine import SimulationError
from repro.sim.parallel.boundary import ShardBoundary
from repro.sim.parallel.partition import assign_shards


class ShardSpec:
    """Picklable description of one shard."""

    def __init__(self, shard_id, builder, params=None, links=(), weight=1.0):
        self.shard_id = shard_id
        self.builder = builder
        self.params = dict(params or {})
        self.links = tuple(links)
        self.weight = weight

    def __repr__(self):
        return (
            f"<ShardSpec {self.shard_id!r} links={len(self.links)}"
            f" weight={self.weight}>"
        )


def _resolve_builder(builder):
    if callable(builder):
        return builder
    module_name, _, attr = builder.partition(":")
    if not attr:
        raise SimulationError(
            f"builder {builder!r} must be callable or 'module:function'"
        )
    return getattr(importlib.import_module(module_name), attr)


class _ShardHost:
    """One built shard living inside a worker (or the local process)."""

    def __init__(self, spec):
        self.spec = spec
        self.boundary = ShardBoundary(spec.shard_id, spec.links)
        self.program = _resolve_builder(spec.builder)(
            spec.shard_id, spec.params, self.boundary
        )
        self.engine = self.program.engine
        if self.spec.links and self.boundary.network is None:
            raise SimulationError(
                f"shard {spec.shard_id!r} declares links but its builder"
                " never called boundary.attach(network)"
            )
        self._run_window = getattr(self.program, "run_window", None)
        self.busy = 0.0
        self.executed = 0

    def run_window(self, until, inbound):
        start = time.perf_counter()
        if inbound:
            self.boundary.inject(self.engine, inbound)
        if self._run_window is not None:
            executed = self._run_window(until)
        else:
            executed = self.engine.run_window(until)
        executed = executed or 0
        self.executed += executed
        elapsed = time.perf_counter() - start
        self.busy += elapsed
        return self.boundary.drain(), elapsed, executed

    def finalize(self):
        hook = getattr(self.program, "finalize", None)
        if hook is not None:
            hook()

    def results(self):
        return self.program.results()


def _build_shards(specs):
    return {spec.shard_id: _ShardHost(spec) for spec in specs}


# ----------------------------------------------------------------------
# worker protocol (shared by the in-process and spawned executors)
# ----------------------------------------------------------------------

def _worker_main(conn, specs):
    """Entry point of a spawned worker: build shards, serve windows."""
    try:
        shards = _build_shards(specs)
        conn.send(("ready", {sid: host.engine.now for sid, host in shards.items()}))
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "run":
                _kind, w_end, inbound = message
                outbound = {}
                busy = {}
                executed = 0
                for sid in sorted(shards):
                    exports, elapsed, fired = shards[sid].run_window(
                        w_end, inbound.get(sid, ())
                    )
                    busy[sid] = elapsed
                    executed += fired
                    for dst, frames in exports.items():
                        outbound.setdefault(dst, []).extend(frames)
                conn.send(("ran", outbound, busy, executed))
            elif kind == "finish":
                for sid in sorted(shards):
                    shards[sid].finalize()
                conn.send(
                    ("results", {sid: shards[sid].results() for sid in shards})
                )
            elif kind == "stop":
                return
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()


class _LocalWorker:
    """The workers=1 executor: same protocol, direct calls, no pickling."""

    def __init__(self, specs):
        self.specs = specs
        self.shards = _build_shards(specs)

    def ready(self):
        return {sid: host.engine.now for sid, host in self.shards.items()}

    def run(self, w_end, inbound):
        outbound = {}
        busy = {}
        executed = 0
        for sid in sorted(self.shards):
            exports, elapsed, fired = self.shards[sid].run_window(
                w_end, inbound.get(sid, ())
            )
            busy[sid] = elapsed
            executed += fired
            for dst, frames in exports.items():
                outbound.setdefault(dst, []).extend(frames)
        return outbound, busy, executed

    def finish(self):
        for sid in sorted(self.shards):
            self.shards[sid].finalize()
        return {sid: self.shards[sid].results() for sid in self.shards}

    def close(self):
        pass


class _ProcessWorker:
    """A spawned OS worker owning a subset of the shards."""

    def __init__(self, specs, context):
        self.specs = specs
        self.conn, child = multiprocessing.Pipe()
        self.process = context.Process(
            target=_worker_main, args=(child, specs), daemon=True
        )
        self.process.start()
        child.close()

    def _recv(self, expect):
        message = self.conn.recv()
        if message[0] == "error":
            raise RuntimeError(
                f"parallel worker failed:\n{message[1]}"
            )
        if message[0] != expect:
            raise RuntimeError(
                f"parallel worker protocol error: got {message[0]!r},"
                f" expected {expect!r}"
            )
        return message[1:]

    def ready(self):
        (nows,) = self._recv("ready")
        return nows

    def send_run(self, w_end, inbound):
        self.conn.send(("run", w_end, inbound))

    def recv_run(self):
        return self._recv("ran")

    def send_finish(self):
        self.conn.send(("finish",))

    def recv_finish(self):
        (results,) = self._recv("results")
        return results

    def close(self):
        try:
            self.conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=10)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=10)
        self.conn.close()


# ----------------------------------------------------------------------
# the runner
# ----------------------------------------------------------------------

class ParallelResult:
    """Outcome of one parallel (or sequential-sharded) run."""

    def __init__(self, specs, workers, lookahead, shard_results, windows,
                 window_busy, busy, executed, wall):
        self.specs = specs
        self.workers = workers
        self.lookahead = lookahead
        self.shard_results = shard_results
        self.windows = windows
        self.window_busy = window_busy  # [{shard_id: seconds}] per window
        self.busy = busy  # shard_id -> total seconds of compute
        self.executed = executed
        self.wall = wall

    def projected_wall(self, workers):
        """Ideal wall-clock for ``workers`` perfectly parallel workers.

        Per window, a worker's cost is the sum of its shards' measured
        compute; the window costs the slowest worker; barriers sum.
        Ignores IPC and OS scheduling — an upper bound on achievable
        speedup for this partition, computed from *measured* per-shard
        busy time, used by the benchmark gate on hosts whose core count
        cannot realize the parallelism physically.
        """
        assignments = assign_shards(self.specs, workers)
        total = 0.0
        for window in self.window_busy:
            total += max(
                sum(window.get(spec.shard_id, 0.0) for spec in group)
                for group in assignments
            )
        return total


class ParallelRunner:
    """Partition, synchronize, and execute a set of shards.

    ``workers=1`` runs every shard in the calling process (the reference
    execution); ``workers=N`` spawns ``min(N, len(specs))`` OS processes
    via the spawn-safe multiprocessing context and distributes shards
    with LPT weight balancing.  Either way the windowed barrier protocol
    is identical, so per-shard results are bit-identical across worker
    counts.
    """

    def __init__(self, specs, workers=1, start_method="spawn"):
        specs = list(specs)
        if not specs:
            raise SimulationError("no shards to run")
        ids = [spec.shard_id for spec in specs]
        if len(set(ids)) != len(ids):
            raise SimulationError(f"duplicate shard ids: {sorted(ids)}")
        known = set(ids)
        latencies = []
        for spec in specs:
            for link in spec.links:
                if link.remote_shard not in known:
                    raise SimulationError(
                        f"shard {spec.shard_id!r} links to unknown shard"
                        f" {link.remote_shard!r}"
                    )
                latencies.append(link.latency)
        self.specs = specs
        self.workers = max(1, int(workers))
        self.start_method = start_method
        self.lookahead = min(latencies) if latencies else None

    def run(self, duration):
        """Execute all shards for ``duration`` virtual seconds past the
        latest build-time clock, and collect their results."""
        start_wall = time.perf_counter()
        if self.workers == 1:
            workers = [_LocalWorker(self.specs)]
        else:
            context = multiprocessing.get_context(self.start_method)
            workers = [
                _ProcessWorker(group, context)
                for group in assign_shards(self.specs, self.workers)
            ]
        owner = {}
        for worker in workers:
            for spec in worker.specs:
                owner[spec.shard_id] = worker
        try:
            t0 = 0.0
            for worker in workers:
                t0 = max(t0, max(worker.ready().values()))
            until = t0 + duration
            now = t0
            pending = {}  # shard_id -> [frames]
            windows = 0
            window_busy = []
            busy = {}
            executed = 0
            while now < until:
                w_end = (
                    until if self.lookahead is None
                    else min(until, now + self.lookahead)
                )
                for worker in workers:
                    inbound = {
                        spec.shard_id: pending.pop(spec.shard_id)
                        for spec in worker.specs
                        if spec.shard_id in pending
                    }
                    if isinstance(worker, _LocalWorker):
                        worker._pending_reply = worker.run(w_end, inbound)
                    else:
                        worker.send_run(w_end, inbound)
                this_window = {}
                for worker in workers:
                    if isinstance(worker, _LocalWorker):
                        outbound, worker_busy, fired = worker._pending_reply
                    else:
                        outbound, worker_busy, fired = worker.recv_run()
                    executed += fired
                    for sid, seconds in worker_busy.items():
                        this_window[sid] = seconds
                        busy[sid] = busy.get(sid, 0.0) + seconds
                    for dst, frames in outbound.items():
                        pending.setdefault(dst, []).extend(frames)
                window_busy.append(this_window)
                windows += 1
                now = w_end
            shard_results = {}
            for worker in workers:
                if isinstance(worker, _LocalWorker):
                    shard_results.update(worker.finish())
                else:
                    worker.send_finish()
            for worker in workers:
                if not isinstance(worker, _LocalWorker):
                    shard_results.update(worker.recv_finish())
        finally:
            for worker in workers:
                worker.close()
        wall = time.perf_counter() - start_wall
        return ParallelResult(
            self.specs, len(workers), self.lookahead, shard_results,
            windows, window_busy, busy, executed, wall,
        )
