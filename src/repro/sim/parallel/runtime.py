"""Conservative parallel simulation runtime (Chandy–Misra-style windows).

The runtime executes a set of *shards* — independent simulation
universes declared by :class:`ShardSpec` — either sequentially in the
calling process (``workers=1``) or spread over OS worker processes
(``workers=N``, spawn-safe).  Shards interact only through declared
:class:`~repro.sim.parallel.boundary.BoundaryLink` edges, and execution
proceeds in global *adaptive* lookahead windows.

With ``L = min`` cross-shard link latency, any frame sent at local time
``t`` arrives no earlier than ``t + L``.  The classic fixed protocol
runs every shard in lockstep windows of width ``L``; that is safe but
wasteful when no cross-shard traffic is brewing.  Instead, each shard
reports at every barrier its **earliest next outbound-capable event
time** — the earliest instant at which anything that could cause a
cross-shard send can happen (see ``_ShardHost.next_outbound_time``).
The coordinator computes

    T = min(reported next-outbound times, pending frame arrivals)
    horizon = min(until, T + L)

and runs one window to the horizon.  Every send inside the window
happens at a time >= T, so every exported frame arrives at >= T + L,
i.e. at or after the next barrier — the protocol stays strictly
conservative while issuing windows far wider than ``L`` whenever the
boundary is quiet (during bursts ``T`` hugs the barrier and windows
fall back to width ``L``).  Because the horizon is a pure function of
shard state, ``workers=1`` and ``workers=N`` still execute identical
window sequences and produce bit-identical shard states.  Frames are
merged at barriers in the deterministic order
``(arrival_time, src_shard, seq)`` exactly as before.  A shard with no
links (a *closed* shard) reports no outbound-capable time and
free-runs to the horizon.

Cross-shard frame batches are encoded **once** in the sending worker,
routed through the coordinator as an opaque *handle*, and decoded once
in the receiving worker — the coordinator never re-pickles frame
payloads.  How the encoded bytes travel is a pluggable transport
(:mod:`repro.sim.parallel.transport`): the default ``shm`` transport
writes compact binary batches into per-worker shared-memory rings and
ships only tiny ring references over the control pipes, while the
``pipe`` transport (PR 6's pickle-blob-on-the-pipe) remains selectable
as the reference implementation for differential runs.  Each barrier
costs exactly one message pair per worker: frame delivery rides the
``run`` dispatch, and a worker whose window executed nothing
acknowledges with a tiny constant message.

Dynamic rebalancing (``rebalance=RebalanceConfig(...)``) migrates whole
shards between workers at barrier points using the per-window busy
accounting: every ``every`` windows the coordinator evaluates
:func:`~repro.sim.parallel.partition.rebalance_moves` (a pure function
of the accumulated busy stats and the current assignment) and moves
shards off the straggler worker.  Migration is *replay-based*: a shard
is rebuilt on the target worker from its spec and re-run through the
exact recorded window sequence with the exact recorded inbound frame
batches, which reproduces its state bit-for-bit (shard state is a pure
function of builder + params + window edges + injected frames).  The
runtime asserts the replay landed exactly — the rebuilt shard's
``next_outbound_time()`` must equal the original's — and because the
adaptive horizon is itself a pure function of shard state, placement
never affects results or window edges (see DESIGN.md §11 for the full
safety argument).

Scenario contract
-----------------
``ShardSpec.builder`` names a spawn-safe factory (top-level function or
``"module:function"`` string)::

    def build(shard_id, params, boundary):
        ... create Engine/Network/topology ...
        boundary.attach(network)      # once local endpoints exist
        return program

The returned *program* must expose ``engine`` and ``results()``
(picklable), and may override ``run_window(until)`` (default: the
engine's) — e.g. to interleave oracle checks — plus an optional
``finalize()`` hook that runs after the horizon.  Builders of shards
*with* cross-shard links must not send cross-shard traffic while
building (do timed setup via scheduled events); closed shards may
advance freely during build (e.g. to converge a topology).

A program may additionally define ``next_outbound_time() -> float|None``
to narrow the adaptive-lookahead bound below "earliest pending event
anywhere" (the sound default).  The contract is strict: *every* event
that can transitively cause a cross-shard send must be at or after the
reported time.  The usual implementation tags the outbound-capable
subsystem with ``Engine.scoped`` and returns
``engine.next_event_time(scope)``; inbound frames must then be injected
under the same scope (``boundary.inject_scope``).  The runtime verifies
the contract at every barrier: a frame arriving inside the window that
produced it fails the run loudly instead of corrupting determinism.
"""

import importlib
import multiprocessing
import time
import traceback

from repro.sim.engine import SimulationError
from repro.sim.parallel.boundary import ShardBoundary
from repro.sim.parallel.partition import assign_shards, rebalance_moves
from repro.sim.parallel.transport import (
    DEFAULT_RING_BYTES,
    TRANSPORT_KINDS,
    TransportContext,
    WorkerTransport,
    WorkerTransportSpec,
    handle_bytes,
)


class ShardSpec:
    """Picklable description of one shard."""

    def __init__(self, shard_id, builder, params=None, links=(), weight=1.0):
        self.shard_id = shard_id
        self.builder = builder
        self.params = dict(params or {})
        self.links = tuple(links)
        self.weight = weight

    def __repr__(self):
        return (
            f"<ShardSpec {self.shard_id!r} links={len(self.links)}"
            f" weight={self.weight}>"
        )


class RebalanceConfig:
    """Between-window shard migration policy.

    Every ``every`` windows the coordinator evaluates
    :func:`~repro.sim.parallel.partition.rebalance_moves` over the busy
    seconds accumulated so far and migrates up to ``max_moves`` shards
    whose move improves the projected makespan by more than ``min_gain``
    (a fraction).  ``force_moves`` is a test hook: a mapping of window
    index to explicit ``[(shard_id, worker_index), ...]`` moves applied
    instead of the policy at that barrier — it exercises the migration
    machinery even on perfectly balanced workloads.
    """

    def __init__(self, every=8, min_gain=0.05, max_moves=1,
                 force_moves=None):
        if every < 1:
            raise SimulationError(f"rebalance every= must be >= 1: {every}")
        self.every = int(every)
        self.min_gain = float(min_gain)
        self.max_moves = int(max_moves)
        self.force_moves = dict(force_moves or {})


def _resolve_builder(builder):
    if callable(builder):
        return builder
    module_name, _, attr = builder.partition(":")
    if not attr:
        raise SimulationError(
            f"builder {builder!r} must be callable or 'module:function'"
        )
    return getattr(importlib.import_module(module_name), attr)


class _ShardHost:
    """One built shard living inside a worker (or the local process)."""

    def __init__(self, spec):
        self.spec = spec
        self.boundary = ShardBoundary(spec.shard_id, spec.links)
        self.program = _resolve_builder(spec.builder)(
            spec.shard_id, spec.params, self.boundary
        )
        self.engine = self.program.engine
        if self.spec.links and self.boundary.network is None:
            raise SimulationError(
                f"shard {spec.shard_id!r} declares links but its builder"
                " never called boundary.attach(network)"
            )
        self._run_window = getattr(self.program, "run_window", None)
        self._next_outbound = getattr(self.program, "next_outbound_time", None)
        self.busy = 0.0
        self.executed = 0

    def next_outbound_time(self):
        """Earliest instant at which this shard could emit a cross-shard
        frame — ``None`` when it never can (closed shard, or nothing
        queued).  Programs narrow the sound default (earliest pending
        event anywhere) by defining ``next_outbound_time()``."""
        if not self.spec.links:
            return None
        if self._next_outbound is not None:
            return self._next_outbound()
        return self.engine.next_event_time()

    def run_window(self, until, inbound):
        start = time.perf_counter()
        if inbound:
            self.boundary.inject(self.engine, inbound)
        if self._run_window is not None:
            executed = self._run_window(until)
        else:
            executed = self.engine.run_window(until)
        executed = executed or 0
        self.executed += executed
        elapsed = time.perf_counter() - start
        self.busy += elapsed
        return self.boundary.drain(), elapsed, executed

    def finalize(self):
        hook = getattr(self.program, "finalize", None)
        if hook is not None:
            hook()

    def results(self):
        return self.program.results()


def _build_shards(specs):
    return {spec.shard_id: _ShardHost(spec) for spec in specs}


def _replay_shard(spec, window_edges, inbound_log, codec):
    """Rebuild a migrating shard bit-for-bit via deterministic replay.

    The shard's state at a barrier is a pure function of its builder,
    params, the window-edge sequence, and the frames injected at each
    barrier — so building it fresh and re-running the recorded windows
    with the recorded inbound batches reproduces the original exactly.
    Replay exports are discarded *before* encoding (downstream shards
    already received them from the original), which also leaves the
    adopting worker's encoder interning tables for this shard empty —
    matching the epoch bump that resets the downstream decoders.
    """
    host = _ShardHost(spec)
    for index in range(1, len(window_edges)):
        blobs = inbound_log.get(index - 1, ())
        frames = [
            frame for blob in blobs
            for frame in codec.decode_batch(blob, spec.shard_id)
        ]
        host.run_window(window_edges[index], frames)
    return host


# ----------------------------------------------------------------------
# worker protocol (shared by the in-process and spawned executors)
# ----------------------------------------------------------------------
#
#   -> ("run", w_end[, {shard_id: [handle, ...]}])  handles optional
#   <- ("idle",)                 nothing ran, nothing changed
#   <- ("quiet", eots)           nothing ran, but injections moved eots
#   <- ("ran", outbound, eots, busy, executed, tstats)
#        outbound = {dst_shard: (count, min_arrival, handle)}
#        tstats   = {"enc","dec","copy" per-window seconds;
#                    "wraps","overflow" cumulative counters}
#   -> ("drop", [shard_id, ...])          <- ("dropped",)
#   -> ("adopt", [(spec, edges, log, generation), ...])
#                                         <- ("adopted", {shard_id: eot})
#   -> ("finish",)  <- ("results", {shard_id: results})
#   -> ("stop",)
#
# A *handle* is a transport-staged encoded batch the coordinator routes
# opaquely: raw codec bytes on the pipe transport, a shared-memory ring
# reference ("r", worker, start, length) or inline-fallback ("i", bytes)
# on the shm transport, and the raw frame list in-process.


def _run_all(shards, w_end, inbound):
    """Run one window over every shard; collect outbound per dst shard.

    ``inbound`` maps shard_id to an already-decoded frame list.  Returns
    ``(outbound, eots, busy, executed)`` with ``outbound`` mapping
    dst shard to ``[frames, min_arrival]``.  Verifies the conservative
    invariant: every exported frame must arrive at or after the window
    end, else some shard's ``next_outbound_time()`` under-reported.
    """
    outbound = {}
    eots = {}
    busy = {}
    executed = 0
    for sid in sorted(shards):
        host = shards[sid]
        exports, elapsed, fired = host.run_window(w_end, inbound.get(sid, ()))
        eots[sid] = host.next_outbound_time()
        busy[sid] = elapsed
        executed += fired
        for dst, frames in exports.items():
            arrival = min(frame.arrival_time for frame in frames)
            if arrival < w_end:
                raise SimulationError(
                    f"shard {sid!r} exported a cross-shard frame arriving at"
                    f" {arrival:.6f}, inside its own window ending"
                    f" {w_end:.6f}: the shard's next_outbound_time()"
                    " under-reported the earliest outbound-capable event"
                    " (conservative adaptive lookahead violated)"
                )
            entry = outbound.get(dst)
            if entry is None:
                outbound[dst] = [list(frames), arrival]
            else:
                entry[0].extend(frames)
                if arrival < entry[1]:
                    entry[1] = arrival
    return outbound, eots, busy, executed


def _worker_main(conn, specs, transport_spec):
    """Entry point of a spawned worker: build shards, serve windows."""
    transport = None
    try:
        transport = WorkerTransport(transport_spec)
        codec = transport.codec
        shards = _build_shards(specs)
        conn.send(("ready", {
            sid: (host.engine.now, host.next_outbound_time())
            for sid, host in shards.items()
        }))
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "run":
                w_end = message[1]
                handles = message[2] if len(message) > 2 else None
                transport.rotate()
                tstats = {"enc": 0.0, "dec": 0.0, "copy": 0.0}
                inbound = {}
                if handles:
                    start = time.perf_counter()
                    raw = {
                        sid: [transport.fetch(handle) for handle in batch]
                        for sid, batch in handles.items()
                    }
                    tstats["copy"] += time.perf_counter() - start
                    start = time.perf_counter()
                    inbound = {
                        sid: [frame for blob in blobs
                              for frame in codec.decode_batch(blob, sid)]
                        for sid, blobs in raw.items()
                    }
                    tstats["dec"] += time.perf_counter() - start
                outbound, eots, busy, executed = _run_all(
                    shards, w_end, inbound
                )
                if executed == 0 and not outbound:
                    # empty window: a run of quiet virtual time is
                    # acknowledged with one constant-size message
                    conn.send(("quiet", eots) if inbound else ("idle",))
                    continue
                encoded = {}
                for dst, (frames, min_arrival) in outbound.items():
                    start = time.perf_counter()
                    blob = codec.encode_batch(dst, frames)
                    tstats["enc"] += time.perf_counter() - start
                    start = time.perf_counter()
                    handle = transport.stage(blob)
                    tstats["copy"] += time.perf_counter() - start
                    encoded[dst] = (len(frames), min_arrival, handle)
                tstats["wraps"] = transport.ring_wraps
                tstats["overflow"] = transport.inline_fallbacks
                conn.send(("ran", encoded, eots, busy, executed, tstats))
            elif kind == "drop":
                for sid in message[1]:
                    del shards[sid]
                    codec.drop_shard(sid)
                conn.send(("dropped",))
            elif kind == "adopt":
                adopted = {}
                for spec, edges, log, generation in message[1]:
                    codec.drop_shard(spec.shard_id)
                    codec.set_epoch(spec.shard_id, generation)
                    host = _replay_shard(spec, edges, log, codec)
                    shards[spec.shard_id] = host
                    adopted[spec.shard_id] = host.next_outbound_time()
                conn.send(("adopted", adopted))
            elif kind == "finish":
                for sid in sorted(shards):
                    shards[sid].finalize()
                conn.send(
                    ("results", {sid: shards[sid].results() for sid in shards})
                )
            elif kind == "stop":
                return
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):
            pass
    finally:
        if transport is not None:
            transport.close()
        conn.close()


class _LocalWorker:
    """The workers=1 executor: same protocol, direct calls, no encoding.

    ``dispatch`` only stages the window; the shards run inside
    ``collect`` so the coordinator's timing split buckets in-process
    compute under barrier-wait, mirroring where the process executor's
    time is spent.  Handles are the raw frame lists themselves.
    """

    def __init__(self, specs):
        self.specs = specs
        self.shards = _build_shards(specs)
        self._staged = None

    def ready(self):
        return {
            sid: (host.engine.now, host.next_outbound_time())
            for sid, host in self.shards.items()
        }

    def dispatch(self, w_end, inbound):
        self._staged = (w_end, inbound)

    def collect(self):
        w_end, batches = self._staged
        self._staged = None
        inbound = {
            sid: [frame for batch in shard_batches for frame in batch]
            for sid, shard_batches in batches.items()
        }
        outbound, eots, busy, executed = _run_all(self.shards, w_end, inbound)
        if executed == 0 and not outbound:
            return ("quiet", eots) if inbound else ("idle",)
        encoded = {
            dst: (len(frames), min_arrival, frames)
            for dst, (frames, min_arrival) in outbound.items()
        }
        return ("ran", encoded, eots, busy, executed,
                {"enc": 0.0, "dec": 0.0, "copy": 0.0,
                 "wraps": 0, "overflow": 0})

    def send_finish(self):
        for sid in sorted(self.shards):
            self.shards[sid].finalize()
        self._staged = {
            sid: self.shards[sid].results() for sid in self.shards
        }

    def recv_finish(self):
        results, self._staged = self._staged, None
        return results

    def close(self):
        pass


class _ProcessWorker:
    """A spawned OS worker owning a subset of the shards."""

    def __init__(self, specs, context, join_timeout=10.0,
                 transport_spec=None):
        if transport_spec is None:
            transport_spec = WorkerTransportSpec("pipe", 0)
        self.specs = specs
        self.join_timeout = join_timeout
        self.conn, child = multiprocessing.Pipe()
        self.process = context.Process(
            target=_worker_main, args=(child, specs, transport_spec),
            daemon=True,
        )
        self.process.start()
        child.close()

    def _recv(self, *expected):
        try:
            message = self.conn.recv()
        except (EOFError, ConnectionResetError, OSError):
            self.process.join(timeout=1)
            raise RuntimeError(
                "parallel worker died without reporting a traceback"
                f" (exit code {self.process.exitcode})"
            )
        if message[0] == "error":
            raise RuntimeError(
                f"parallel worker failed:\n{message[1]}"
            )
        if message[0] not in expected:
            raise RuntimeError(
                f"parallel worker protocol error: got {message[0]!r},"
                f" expected one of {expected!r}"
            )
        return message

    def ready(self):
        return self._recv("ready")[1]

    def dispatch(self, w_end, inbound):
        if inbound:
            self.conn.send(("run", w_end, inbound))
        else:
            self.conn.send(("run", w_end))

    def collect(self):
        return self._recv("idle", "quiet", "ran")

    def send_drop(self, sids):
        self.conn.send(("drop", list(sids)))
        self._recv("dropped")

    def send_adopt(self, payloads):
        self.conn.send(("adopt", payloads))
        return self._recv("adopted")[1]

    def send_finish(self):
        self.conn.send(("finish",))

    def recv_finish(self):
        return self._recv("results")[1]

    def close(self):
        try:
            self.conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=self.join_timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=self.join_timeout)
        self.conn.close()


# ----------------------------------------------------------------------
# the runner
# ----------------------------------------------------------------------

class ParallelResult:
    """Outcome of one parallel (or sequential-sharded) run.

    Per-window bookkeeping is aggregated on the fly: ``busy`` holds
    per-shard compute totals, ``projections`` holds the critical-path
    wall per candidate worker count (accumulated window by window during
    the run), ``window_edges`` records only the barrier instants
    (floats, ``windows + 1`` of them including the start), and
    ``timing`` splits the coordinator's wall into compute, barrier-wait,
    dispatch, encode/decode/ring-copy, and rebalance seconds so
    regressions in the window protocol are attributable.  ``transport``
    identifies the transport (``kind``/``in_process``) and counts
    frames, batches, encoded bytes, ring wraparounds, and full-ring
    inline fallbacks; ``migrations`` records every dynamic-rebalance
    move as ``(window_index, shard_id, from_worker, to_worker)``.
    """

    def __init__(self, specs, workers, lookahead, shard_results, windows,
                 window_edges, busy, executed, wall, projections, timing,
                 transport, migrations=()):
        self.specs = specs
        self.workers = workers
        self.lookahead = lookahead
        self.shard_results = shard_results
        self.windows = windows
        self.window_edges = window_edges  # [t0, barrier1, ..., horizon]
        self.busy = busy  # shard_id -> total seconds of compute
        self.executed = executed
        self.wall = wall
        self.projections = projections  # workers -> projected wall seconds
        self.timing = dict(timing)
        self.timing["compute_s"] = sum(busy.values())
        self.timing["wall_s"] = wall
        self.transport = transport
        self.migrations = list(migrations)

    def window_widths(self):
        """Virtual-time width of every window, in barrier order."""
        edges = self.window_edges
        return [edges[i + 1] - edges[i] for i in range(len(edges) - 1)]

    def wide_windows(self):
        """``(count, virtual_seconds)`` of adaptively widened windows —
        windows meaningfully wider than the static lookahead ``L``
        (busy-phase windows come out at ``L`` plus a serialization
        sliver, so the threshold is ``1.5 L``).  The virtual span they
        cover is the portion of the run the fixed protocol would have
        diced into ``span / L`` barriers."""
        if self.lookahead is None:
            return 0, 0.0
        threshold = self.lookahead * 1.5
        count, span = 0, 0.0
        for width in self.window_widths():
            if width > threshold:
                count += 1
                span += width
        return count, span

    def projected_wall(self, workers):
        """Ideal wall-clock for ``workers`` perfectly parallel workers.

        Per window, a worker's cost is the sum of its shards' measured
        compute; the window costs the slowest worker; barriers sum.
        Ignores IPC and OS scheduling — an upper bound on achievable
        speedup for this partition, computed from *measured* per-shard
        busy time, used by the benchmark gate on hosts whose core count
        cannot realize the parallelism physically.  Accumulated during
        the run for the counts in ``ParallelRunner.projection_workers``.
        """
        try:
            return self.projections[workers]
        except KeyError:
            raise SimulationError(
                f"no projection for workers={workers}: pass"
                f" projection_workers= to ParallelRunner (have"
                f" {sorted(self.projections)})"
            ) from None


class ParallelRunner:
    """Partition, synchronize, and execute a set of shards.

    ``workers=1`` runs every shard in the calling process (the reference
    execution); ``workers=N`` spawns ``min(N, len(specs))`` OS processes
    via the spawn-safe multiprocessing context and distributes shards
    with LPT weight balancing.  Either way the windowed barrier protocol
    is identical — the adaptive horizon is a pure function of shard
    state — so per-shard results are bit-identical across worker counts.

    ``transport`` picks how encoded frame batches travel between
    workers: ``"shm"`` (default — shared-memory rings + compact codec)
    or ``"pipe"`` (the pickle-over-pipe reference); workers=1 uses
    neither (in-process, no encoding).  ``rebalance`` enables dynamic
    shard migration between windows (see :class:`RebalanceConfig`);
    placement never affects results.  ``horizon_cap`` bounds the
    virtual-time width of every window — chiefly so scenarios without
    cross-shard links (whose natural horizon is the whole run) still
    hit barriers where rebalancing can act.

    ``projection_workers`` names the worker counts whose critical-path
    projection is accumulated during the run (default: powers of two up
    to the shard count, plus the shard count and the configured worker
    count).  ``worker_join_timeout`` bounds how long ``close()`` waits
    for a worker before terminating it.
    """

    def __init__(self, specs, workers=1, start_method="spawn",
                 projection_workers=None, worker_join_timeout=10.0,
                 transport="shm", rebalance=None, horizon_cap=None,
                 ring_capacity=DEFAULT_RING_BYTES):
        specs = list(specs)
        if not specs:
            raise SimulationError("no shards to run")
        ids = [spec.shard_id for spec in specs]
        if len(set(ids)) != len(ids):
            raise SimulationError(f"duplicate shard ids: {sorted(ids)}")
        known = set(ids)
        latencies = []
        for spec in specs:
            for link in spec.links:
                if link.remote_shard not in known:
                    raise SimulationError(
                        f"shard {spec.shard_id!r} links to unknown shard"
                        f" {link.remote_shard!r}"
                    )
                latencies.append(link.latency)
        if transport not in TRANSPORT_KINDS:
            raise SimulationError(
                f"unknown transport {transport!r} (expected one of"
                f" {TRANSPORT_KINDS})"
            )
        if horizon_cap is not None and horizon_cap <= 0:
            raise SimulationError(
                f"horizon_cap must be positive (got {horizon_cap})"
            )
        self.specs = specs
        self.workers = max(1, int(workers))
        self.start_method = start_method
        self.transport = transport
        self.rebalance = rebalance
        self.horizon_cap = horizon_cap
        self.ring_capacity = ring_capacity
        self.lookahead = min(latencies) if latencies else None
        if projection_workers is None:
            candidates = {1, 2, 4, 8, 16, 32, self.workers, len(specs)}
            projection_workers = sorted(
                count for count in candidates if 1 <= count <= len(specs)
            )
        self.projection_workers = tuple(projection_workers)
        self.worker_join_timeout = worker_join_timeout

    def _horizon(self, now, until, eots, pending_min):
        """The next conservative barrier.

        ``T = min`` over every shard's earliest outbound-capable event
        and every undelivered frame's arrival; nothing anywhere can send
        before ``T``, so nothing can *arrive* before ``T + L`` and every
        shard may safely run to ``min(until, T + L)``.  With no bound at
        all (closed shards, or a fully drained boundary) the horizon is
        the run's end.  ``horizon_cap`` only ever *narrows* a window, so
        it cannot weaken the conservative guarantee.
        """
        if self.lookahead is None:
            horizon = until
        else:
            t = pending_min
            for eot in eots.values():
                if eot is not None and (t is None or eot < t):
                    t = eot
            if t is None:
                horizon = until
            else:
                if t < now:
                    # linked shards whose builders advanced their clocks
                    # apart violate the scenario contract; clamp so
                    # barriers stay monotonic rather than rewinding a
                    # shard into its past
                    t = now
                horizon = min(until, t + self.lookahead)
        if self.horizon_cap is not None:
            horizon = min(horizon, now + self.horizon_cap)
        return horizon

    def _apply_rebalance(self, moves, workers, worker_sids, assignment,
                         generation, window_edges, inbound_log, windows,
                         migrations):
        """Migrate ``moves`` at a barrier via drop + replay-based adopt.

        The rebuilt shard must land exactly where the original stands:
        its post-replay ``next_outbound_time()`` is checked against the
        original's by the caller (via the returned eots), making replay
        divergence a loud failure instead of silent corruption.
        """
        adopted_eots = {}
        drops = {}
        adopts = {}
        for sid, to_index in moves:
            from_index = assignment[sid]
            if to_index == from_index or not (0 <= to_index < len(workers)):
                continue
            drops.setdefault(from_index, []).append(sid)
            generation[sid] = generation.get(sid, 0) + 1
            spec = next(s for s in self.specs if s.shard_id == sid)
            adopts.setdefault(to_index, []).append(
                (spec, list(window_edges), dict(inbound_log.get(sid, {})),
                 generation[sid])
            )
            assignment[sid] = to_index
            worker_sids[from_index].discard(sid)
            worker_sids[to_index].add(sid)
            migrations.append((windows, sid, from_index, to_index))
        for index in sorted(drops):
            workers[index].send_drop(sorted(drops[index]))
        for index in sorted(adopts):
            adopted_eots.update(workers[index].send_adopt(adopts[index]))
        return adopted_eots

    def run(self, duration):
        """Execute all shards for ``duration`` virtual seconds past the
        latest build-time clock, and collect their results."""
        start_wall = time.perf_counter()
        rebalance = self.rebalance if self.workers > 1 else None
        tctx = None
        if self.workers == 1:
            workers = [_LocalWorker(self.specs)]
            transport_kind = "in_process"
        else:
            context = multiprocessing.get_context(self.start_method)
            groups = assign_shards(self.specs, self.workers)
            tctx = TransportContext(
                self.transport, len(groups), self.ring_capacity
            )
            transport_kind = tctx.kind
            workers = [
                _ProcessWorker(group, context, self.worker_join_timeout,
                               tctx.worker_spec(index))
                for index, group in enumerate(groups)
            ]
        assignment = {
            spec.shard_id: index
            for index, worker in enumerate(workers)
            for spec in worker.specs
        }
        worker_sids = [
            {spec.shard_id for spec in worker.specs} for worker in workers
        ]
        try:
            eots = {}
            t0 = 0.0
            for worker in workers:
                for sid, (clock, eot) in worker.ready().items():
                    eots[sid] = eot
                    t0 = max(t0, clock)
            until = t0 + duration
            now = t0
            pending = {}  # shard_id -> [handle, ...] (opaque, staged)
            pending_min = None  # min arrival among pending frames
            windows = 0
            window_edges = [t0]
            busy = {}
            executed = 0
            migrations = []
            generation = {}
            inbound_log = {}  # sid -> {window_index: [raw batch bytes]}
            transport = {
                "kind": transport_kind,
                "in_process": transport_kind == "in_process",
                "frames": 0, "batches": 0, "bytes": 0,
                "overflow_batches": 0, "ring_wraps": 0,
            }
            worker_counters = {}
            timing = {
                "serialize_s": 0.0,
                "encode_s": 0.0,
                "decode_s": 0.0,
                "ring_copy_s": 0.0,
                "rebalance_s": 0.0,
                "barrier_send_s": 0.0,
                "barrier_wait_s": 0.0,
            }
            proj_groups = {
                count: [
                    [spec.shard_id for spec in group]
                    for group in assign_shards(self.specs, count)
                ]
                for count in self.projection_workers
            }
            projections = {count: 0.0 for count in proj_groups}
            while now < until:
                if (rebalance is not None and windows > 0
                        and windows % rebalance.every == 0):
                    stamp = time.perf_counter()
                    moves = rebalance.force_moves.get(windows)
                    if moves is None:
                        moves = rebalance_moves(
                            busy, assignment, len(workers),
                            min_gain=rebalance.min_gain,
                            max_moves=rebalance.max_moves,
                        )
                    if moves:
                        adopted = self._apply_rebalance(
                            moves, workers, worker_sids, assignment,
                            generation, window_edges, inbound_log,
                            windows, migrations,
                        )
                        for sid, eot in adopted.items():
                            if eot != eots[sid]:
                                raise SimulationError(
                                    f"shard {sid!r} replay diverged during"
                                    f" migration: next_outbound_time"
                                    f" {eot!r} != expected {eots[sid]!r}"
                                )
                    timing["rebalance_s"] += time.perf_counter() - stamp
                w_end = self._horizon(now, until, eots, pending_min)
                stamp = time.perf_counter()
                for index, worker in enumerate(workers):
                    inbound = {
                        sid: pending.pop(sid)
                        for sid in sorted(worker_sids[index])
                        if sid in pending
                    }
                    if rebalance is not None and tctx is not None:
                        for sid, handles in inbound.items():
                            inbound_log.setdefault(sid, {})[windows] = [
                                tctx.fetch(handle) for handle in handles
                            ]
                    worker.dispatch(w_end, inbound)
                timing["barrier_send_s"] += time.perf_counter() - stamp
                pending_min = None
                this_window = None
                stamp = time.perf_counter()
                for index, worker in enumerate(workers):
                    reply = worker.collect()
                    kind = reply[0]
                    if kind == "idle":
                        continue
                    if kind == "quiet":
                        eots.update(reply[1])
                        continue
                    _kind, outbound, worker_eots, worker_busy, fired, tstats \
                        = reply
                    eots.update(worker_eots)
                    executed += fired
                    timing["encode_s"] += tstats["enc"]
                    timing["decode_s"] += tstats["dec"]
                    timing["ring_copy_s"] += tstats["copy"]
                    worker_counters[index] = (
                        tstats["wraps"], tstats["overflow"]
                    )
                    for sid, seconds in worker_busy.items():
                        busy[sid] = busy.get(sid, 0.0) + seconds
                    if this_window is None:
                        this_window = dict(worker_busy)
                    else:
                        this_window.update(worker_busy)
                    for dst, (count, min_arrival, handle) in outbound.items():
                        pending.setdefault(dst, []).append(handle)
                        transport["frames"] += count
                        transport["batches"] += 1
                        if transport_kind != "in_process":
                            transport["bytes"] += handle_bytes(handle)
                        if pending_min is None or min_arrival < pending_min:
                            pending_min = min_arrival
                timing["barrier_wait_s"] += time.perf_counter() - stamp
                if this_window:
                    for count, groups in proj_groups.items():
                        projections[count] += max(
                            sum(this_window.get(sid, 0.0) for sid in group)
                            for group in groups
                        )
                windows += 1
                window_edges.append(w_end)
                now = w_end
            shard_results = {}
            for worker in workers:
                worker.send_finish()
            for worker in workers:
                shard_results.update(worker.recv_finish())
        finally:
            for worker in workers:
                worker.close()
            if tctx is not None:
                tctx.close()
        wall = time.perf_counter() - start_wall
        timing["serialize_s"] = timing["encode_s"] + timing["decode_s"]
        for wraps, overflow in worker_counters.values():
            transport["ring_wraps"] += wraps
            transport["overflow_batches"] += overflow
        return ParallelResult(
            self.specs, len(workers), self.lookahead, shard_results,
            windows, window_edges, busy, executed, wall, projections,
            timing, transport, migrations,
        )
