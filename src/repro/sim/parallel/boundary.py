"""Shard-boundary link adapters and cross-shard mailboxes.

A shard is an independent simulation universe (its own ``Engine`` and
``Network``).  The only way state crosses between shards is a declared
:class:`BoundaryLink`: a point-to-point edge whose far endpoint lives in
another shard.  Inside the local network the far endpoint is represented
by a *stub host* carrying the remote address; the fabric routes packets
to the stub exactly like any local host (link up/down, loss, bandwidth
serialization and queueing are all computed in the sending shard), but
instead of local delivery the stub's ``boundary_export`` hook captures
``(arrival_time, packet)`` into a per-destination-shard mailbox.

The mailboxes are drained at window barriers by the parallel runtime and
re-injected into the destination shard's engine in the deterministic
merge order ``(arrival_time, src_shard, seq)`` — see
:mod:`repro.sim.parallel.runtime` for the lookahead argument that makes
this conservative (no shard ever receives a frame in its past).

Payloads cross OS process boundaries, so they must be picklable.  All
wire objects in this repository (TCP segments, BFD control packets, RPC
frames, BGP bytes) are plain data and qualify.
"""

from collections import namedtuple

from repro.sim.engine import SimulationError

#: One exported packet.  ``seq`` is the per-source-shard export sequence
#: number; the triple ``(arrival_time, src_shard, seq)`` is the total
#: merge order at the destination.
CrossShardFrame = namedtuple(
    "CrossShardFrame", ("dst_shard", "arrival_time", "src_shard", "seq", "packet")
)

MERGE_KEY = lambda frame: (frame.arrival_time, frame.src_shard, frame.seq)  # noqa: E731


class BoundaryLink:
    """A declared cross-shard edge (picklable, part of a ShardSpec).

    ``local_addr`` must exist in this shard's network by the time the
    boundary is attached; ``remote_addr`` lives in ``remote_shard``.
    ``latency`` is the physical one-way latency of the edge and is the
    quantity the conservative lookahead is derived from — every frame
    sent at local time ``t`` arrives no earlier than ``t + latency``.
    """

    __slots__ = ("local_addr", "remote_addr", "remote_shard", "latency", "bandwidth")

    def __init__(self, local_addr, remote_addr, remote_shard, latency, bandwidth=10e9):
        if latency <= 0:
            raise SimulationError(
                f"cross-shard link needs positive latency (got {latency})"
            )
        self.local_addr = local_addr
        self.remote_addr = remote_addr
        self.remote_shard = remote_shard
        self.latency = latency
        self.bandwidth = bandwidth

    def __getstate__(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state):
        for slot, value in state.items():
            setattr(self, slot, value)

    def __repr__(self):
        return (
            f"<BoundaryLink {self.local_addr}<->{self.remote_addr}"
            f"@shard:{self.remote_shard} {self.latency * 1e3:.1f}ms>"
        )


class ShardBoundary:
    """The adapter set for one shard: stub hosts, outboxes, injection.

    Built by the runtime from a shard's declared links and handed to the
    scenario builder, which must call :meth:`attach` once its local
    endpoints exist.  The runtime then uses :meth:`drain` after each
    window and :meth:`inject` before the next.
    """

    def __init__(self, shard_id, links=()):
        self.shard_id = shard_id
        self.links = list(links)
        self.network = None
        self._outbox = {}  # dst_shard -> [CrossShardFrame]
        self._seq = 0
        self.frames_exported = 0
        self.frames_injected = 0
        #: Event scope (see ``Engine.scoped``) applied to injected frames.
        #: A program that narrows its ``next_outbound_time()`` to a scope
        #: must set this to the same token, so the causal closure of
        #: inbound cross-shard traffic stays inside the scope and the
        #: adaptive-lookahead safety argument holds (DESIGN.md §11).
        self.inject_scope = None

    def lookahead(self):
        """Minimum cross-shard latency, or None when the shard is closed
        (no links — it can free-run to the horizon in one window)."""
        if not self.links:
            return None
        return min(link.latency for link in self.links)

    # -- scenario-side wiring ------------------------------------------

    def attach(self, network):
        """Materialize stub hosts + physical edges in ``network``.

        Call after the local endpoints named by the links exist.  Safe
        with zero links (closed shard): does nothing.
        """
        self.network = network
        for link in self.links:
            local = network.host_by_address(link.local_addr)
            if local is None:
                raise SimulationError(
                    f"shard {self.shard_id!r}: boundary link's local address"
                    f" {link.local_addr} not found in the shard network"
                )
            stub = network.host_by_address(link.remote_addr)
            if stub is None:
                stub = network.add_host(
                    f"xshard:{link.remote_addr}", link.remote_addr
                )
                stub.boundary_export = self._exporter(link.remote_shard)
            elif stub.boundary_export is None:
                raise SimulationError(
                    f"shard {self.shard_id!r}: {link.remote_addr} exists locally"
                    " and cannot also be a cross-shard stub"
                )
            anchor = local.anchor()
            if network.link_between(anchor, stub) is None:
                network.connect(
                    anchor, stub, latency=link.latency, bandwidth=link.bandwidth
                )

    def _exporter(self, dst_shard):
        def export(packet, arrival_time):
            self._seq += 1
            self.frames_exported += 1
            self._outbox.setdefault(dst_shard, []).append(
                CrossShardFrame(
                    dst_shard, arrival_time, self.shard_id, self._seq, packet
                )
            )

        return export

    # -- runtime-side barrier protocol ---------------------------------

    def drain(self):
        """Take (and clear) the mailboxes: {dst_shard: [frames]}."""
        out = self._outbox
        self._outbox = {}
        return out

    def inject(self, engine, frames):
        """Merge inbound frames into the engine, deterministically.

        Frames are sorted by ``(arrival_time, src_shard, seq)`` and
        injected in that order, so the engine sequence numbers they get
        — and hence their interleaving with same-instant local events —
        are independent of worker placement and arrival batching.
        """
        if self.inject_scope is not None:
            with engine.scoped(self.inject_scope):
                for frame in sorted(frames, key=MERGE_KEY):
                    self.frames_injected += 1
                    engine.inject(frame.arrival_time, self._deliver, frame.packet)
            return
        for frame in sorted(frames, key=MERGE_KEY):
            self.frames_injected += 1
            engine.inject(frame.arrival_time, self._deliver, frame.packet)

    def _deliver(self, packet):
        host = self.network.host_by_address(packet.dst)
        if host is None or host.boundary_export is not None:
            # destination vanished (or is itself a stub — misrouted):
            # drop silently, like the fabric does for unknown addresses
            self.network.packets_dropped += 1
            return
        host.deliver(packet)
