"""Deterministic random streams.

Each consumer (loss model, workload generator, failure injector) gets its
own named stream derived from a root seed, so adding a new consumer never
perturbs the draws seen by existing ones — simulations stay reproducible
across code changes.
"""

import random
import zlib


class DeterministicRandom:
    """A tree of named, independently-seeded :class:`random.Random` streams."""

    def __init__(self, seed=0):
        self.seed = seed
        self._streams = {}

    def stream(self, name):
        """Return (creating if needed) the stream for ``name``."""
        if name not in self._streams:
            derived = (self.seed * 0x9E3779B1 + zlib.crc32(name.encode())) & 0xFFFFFFFF
            self._streams[name] = random.Random(derived)
        return self._streams[name]

    def fork(self, name):
        """Derive a child :class:`DeterministicRandom` namespace."""
        derived = (self.seed * 0x85EBCA77 + zlib.crc32(name.encode())) & 0xFFFFFFFF
        return DeterministicRandom(derived)
