"""Simulated network fabric: hosts, links, packet delivery.

The model is a small datacenter: physical hosts connected either by
dedicated point-to-point links (used for the peering-AS side, where the
paper's testbed has a 100 Gbps Ethernet) or through a non-blocking fabric
(used for the intra-cluster traffic between gateway servers, the agent and
the KV store).  Containers appear as :class:`Host` endpoints anchored to a
physical host; their reachability depends on the whole chain being up,
which is what lets the failure scenarios E2–E5 of the paper be expressed
naturally (kill a container, a machine, a virtual NIC or a physical NIC).

Bandwidth is modelled with per-direction transmit queues (a serialization
delay plus queueing behind earlier packets), which is what produces real
throughput caps in the Fig. 5(a) reproduction rather than a hand-wave.
"""

from repro.sim.engine import SimulationError
from repro.sim.rand import DeterministicRandom


class Packet:
    """A network packet.

    ``payload`` is an arbitrary object (TCP segments, BFD control packets,
    RPC frames).  ``size`` is the on-wire size in bytes and must account
    for headers; the payload object is never serialized by the fabric.
    """

    __slots__ = ("src", "dst", "protocol", "sport", "dport", "payload", "size")

    def __init__(self, src, dst, protocol, sport, dport, payload, size):
        self.src = src
        self.dst = dst
        self.protocol = protocol
        self.sport = sport
        self.dport = dport
        self.payload = payload
        self.size = size

    def __repr__(self):
        return (
            f"<Packet {self.protocol} {self.src}:{self.sport}->"
            f"{self.dst}:{self.dport} {self.size}B>"
        )


class _TxQueue:
    """One direction of a transmission pipe: serialization + queueing."""

    __slots__ = ("bandwidth", "busy_until")

    def __init__(self, bandwidth):
        self.bandwidth = bandwidth
        self.busy_until = 0.0

    def enqueue(self, now, size):
        """Return the instant the last bit of ``size`` bytes leaves the NIC."""
        tx_time = (size * 8.0) / self.bandwidth
        start = max(now, self.busy_until)
        self.busy_until = start + tx_time
        return self.busy_until


class Link:
    """A bidirectional point-to-point link between two physical hosts."""

    def __init__(self, a, b, latency, bandwidth, loss=0.0):
        self.a = a
        self.b = b
        self.latency = latency
        self.bandwidth = bandwidth
        self.loss = loss
        self.up = True
        self._tx = {a.name: _TxQueue(bandwidth), b.name: _TxQueue(bandwidth)}
        self.packets_carried = 0
        self.bytes_carried = 0

    def tx_queue(self, from_host_name):
        return self._tx[from_host_name]

    def fail(self):
        """Cut the link (paper failure class: link to the peering AS)."""
        self.up = False

    def repair(self):
        self.up = True

    def __repr__(self):
        state = "up" if self.up else "DOWN"
        return f"<Link {self.a.name}<->{self.b.name} {state}>"


class Host:
    """A network endpoint: a physical machine or a container namespace.

    A container endpoint passes ``anchor=<physical host>``; its packets
    traverse the physical host's connectivity.  ``up`` models the machine
    or container being alive; ``network_up`` models its (virtual) NIC.
    """

    def __init__(self, network, name, address, anchor=None):
        self.network = network
        self.name = name
        self.address = address
        self.anchor_host = anchor
        self.up = True
        self.network_up = True
        self._ports = {}
        self.rx_packets = 0
        self.tx_packets = 0
        self.dropped_unbound = 0
        # Shard-boundary adapter hook: when set (by
        # repro.sim.parallel.boundary), this host is a *stub* for an
        # endpoint living in another shard, and packets routed to it are
        # exported as ``boundary_export(packet, arrival_time)`` instead
        # of being delivered locally.  The path delay (link latency +
        # serialization + queueing) is still computed here, in the
        # sending shard, so bandwidth modelling stays deterministic.
        self.boundary_export = None

    # -- port table ---------------------------------------------------------

    def bind(self, protocol, port, handler):
        """Register ``handler(packet)`` for (protocol, port)."""
        key = (protocol, port)
        if key in self._ports:
            raise SimulationError(f"{self.name}: port {key} already bound")
        self._ports[key] = handler

    def unbind(self, protocol, port):
        self._ports.pop((protocol, port), None)

    def is_bound(self, protocol, port):
        return (protocol, port) in self._ports

    # -- reachability -------------------------------------------------------

    def anchor(self):
        """The physical host whose NIC carries this endpoint's traffic."""
        host = self
        while host.anchor_host is not None:
            host = host.anchor_host
        return host

    def reachable(self):
        """True when the endpoint and every hop down to the NIC are up."""
        host = self
        while host is not None:
            if not host.up or not host.network_up:
                return False
            host = host.anchor_host
        return True

    # -- failure levers (used by repro.failures) ----------------------------

    def fail(self):
        """Machine/container death: also silently drops anchored endpoints."""
        self.up = False

    def recover(self):
        self.up = True

    def fail_network(self):
        """NIC failure (paper E4 for containers, E5 for host machines)."""
        self.network_up = False

    def recover_network(self):
        self.network_up = True

    # -- I/O ----------------------------------------------------------------

    def send(self, packet):
        """Hand a packet to the fabric.  Returns False if we are down."""
        if not self.reachable():
            return False
        self.tx_packets += 1
        self.network.transmit(self, packet)
        return True

    def deliver(self, packet):
        if not self.reachable():
            return
        handler = self._ports.get((packet.protocol, packet.dport))
        if handler is None:
            # a protocol-wide wildcard (port None) models a whole stack
            # owning the protocol, e.g. TCP answering closed ports with RST
            handler = self._ports.get((packet.protocol, None))
        if handler is None:
            self.dropped_unbound += 1
            return
        self.rx_packets += 1
        handler(packet)

    def __repr__(self):
        return f"<Host {self.name!r} {self.address} up={self.up}>"


class Network:
    """The fabric: host registry, links, and the delivery scheduler."""

    #: latency for two endpoints anchored on the same physical host
    #: (veth/bridge hop — effectively a memory copy).
    LOCAL_LATENCY = 5e-6

    def __init__(self, engine, rng=None):
        self.engine = engine
        self.rng = (rng or DeterministicRandom(0)).stream("network.loss")
        self.hosts = {}
        self._links = {}
        self.fabric_latency = None
        self.fabric_bandwidth = None
        self._fabric_tx = {}
        #: administratively partitioned physical-host pairs (chaos lever)
        self._partitions = set()
        self.packets_sent = 0
        self.packets_dropped = 0
        self.taps = []

    # -- topology -----------------------------------------------------------

    def add_host(self, name, address, anchor=None, replace=False):
        """Create and register a host (or container endpoint).

        ``replace=True`` rebinds an existing address to the new endpoint —
        the underlay uses this when a service address moves to the backup
        container during NSR migration.
        """
        if address in self.hosts and not replace:
            raise SimulationError(f"duplicate address {address}")
        host = Host(self, name, address, anchor=anchor)
        self.hosts[address] = host
        return host

    def remove_host(self, host):
        self.hosts.pop(host.address, None)

    def host_by_address(self, address):
        return self.hosts.get(address)

    def connect(self, a, b, latency=100e-6, bandwidth=100e9, loss=0.0):
        """Create a dedicated point-to-point link between physical hosts."""
        key = frozenset((a.name, b.name))
        link = Link(a, b, latency, bandwidth, loss)
        self._links[key] = link
        return link

    def link_between(self, a, b):
        return self._links.get(frozenset((a.name, b.name)))

    def partition(self, a, b):
        """Drop all traffic between two physical hosts (both directions)."""
        self._partitions.add(frozenset((a.name, b.name)))

    def heal_partition(self, a, b):
        self._partitions.discard(frozenset((a.name, b.name)))

    def enable_fabric(self, latency=50e-6, bandwidth=25e9):
        """Enable the non-blocking switch fallback between physical hosts."""
        self.fabric_latency = latency
        self.fabric_bandwidth = bandwidth

    def tap(self, fn):
        """Register ``fn(packet, delivered)`` observing every transmit."""
        self.taps.append(fn)

    # -- delivery -----------------------------------------------------------

    def transmit(self, src_host, packet):
        """Schedule delivery of ``packet`` from ``src_host``.

        Drops silently (like a real network) when the destination is
        unknown/unreachable, the path is down, or the loss model fires.
        """
        self.packets_sent += 1
        dst_host = self.hosts.get(packet.dst)
        delivered = True
        if dst_host is None or not dst_host.reachable():
            delivered = False
        else:
            delay = self._path_delay(src_host.anchor(), dst_host.anchor(), packet.size)
            if delay is None:
                delivered = False
        if delivered:
            export = dst_host.boundary_export
            if export is not None:
                export(packet, self.engine.now + delay)
            else:
                self.engine.schedule(delay, dst_host.deliver, packet)
        else:
            self.packets_dropped += 1
        for tap in self.taps:
            tap(packet, delivered)
        return delivered

    def _path_delay(self, src_anchor, dst_anchor, size):
        """Latency+serialization for the physical path, or None if down/lost."""
        if src_anchor is dst_anchor:
            return self.LOCAL_LATENCY
        # fast path: the set is empty except while a chaos partition is
        # active, and membership checks never touch the loss rng
        if (self._partitions
                and frozenset((src_anchor.name, dst_anchor.name)) in self._partitions):
            return None
        link = self.link_between(src_anchor, dst_anchor)
        now = self.engine.now
        if link is not None:
            if not link.up:
                return None
            if link.loss and self.rng.random() < link.loss:
                return None
            link.packets_carried += 1
            link.bytes_carried += size
            done = link.tx_queue(src_anchor.name).enqueue(now, size)
            return (done - now) + link.latency
        if self.fabric_latency is None:
            raise SimulationError(
                f"no path between {src_anchor.name} and {dst_anchor.name}"
                " (no link, fabric disabled)"
            )
        tx = self._fabric_tx.get(src_anchor.name)
        if tx is None:
            tx = _TxQueue(self.fabric_bandwidth)
            self._fabric_tx[src_anchor.name] = tx
        done = tx.enqueue(now, size)
        return (done - now) + self.fabric_latency

    def __repr__(self):
        return f"<Network hosts={len(self.hosts)} links={len(self._links)}>"
