"""Calibrated constants, each tied to a quote or number from the paper.

Absolute durations in the paper come from Tencent's production testbed
(96-core Xeon, 400 GB RAM, 100 Gbps Ethernet, Redis, Docker/TKE).  This
module concentrates every constant we calibrate so the simulated system
reproduces the paper's *numbers*; the *shapes* of the results (who wins,
where crossovers happen) come from the simulated mechanisms themselves.

All times are seconds, sizes bytes, rates bits/second unless stated.
"""

# ---------------------------------------------------------------------------
# Testbed (§4: "each machine is equipped with a 96-core Intel Xeon CPU with
# 400 GB RAM ... connected via 100 Gbps Ethernet").
# ---------------------------------------------------------------------------

HOST_CORES = 96
HOST_MEMORY_BYTES = 400 * 2**30
PEERING_LINK_BANDWIDTH = 100e9
PEERING_LINK_LATENCY = 100e-6  # intra-facility one-way delay
CLUSTER_FABRIC_BANDWIDTH = 25e9
CLUSTER_FABRIC_LATENCY = 50e-6

# ---------------------------------------------------------------------------
# TCP (repro.tcpsim).  Fig. 5(a): "the maximum delays with no impact on the
# TCP throughput are 20 ms, 10 ms, 5 ms, 2 ms, and 2 ms for TCP connections
# with packet sizes of 100B, 200B, 500B, 1000B, and 2000B".
#
# The thresholds are consistent with a sender whose segment rate is CPU
# bound at R segments/s and a flow-control window W: baseline throughput is
# R*s (s = bytes per segment) and the delayed-ACK cap is W/(RTT+d), so the
# threshold is d* ~= W/(R*s).  Solving against the paper's thresholds gives
# W/R = 2e-3 s*bytes/segment; we pick W = 128 KiB, R = 64K segments/s:
#   d*(100B)  = 131072/(65536*100)  = 20 ms   (paper: 20 ms)
#   d*(1000B) = 131072/(65536*1000) = 2 ms    (paper: 2 ms)
#   d*(2000B) = same as 1000B because MSS splits a 2000 B write into two
#               segments averaging 1000 B    (paper: 2 ms)
# ---------------------------------------------------------------------------

TCP_MSS = 1460
TCP_RECEIVE_WINDOW = 131072
TCP_SENDER_SEGMENT_RATE = 65536.0  # segments/second (CPU bound)
TCP_INITIAL_CWND_SEGMENTS = 10
TCP_MIN_RTO = 0.2
TCP_MAX_RTO = 60.0
TCP_HEADER_BYTES = 54  # Ethernet+IP+TCP headers on the wire
TCP_DELAYED_ACK_TIMEOUT = 0.0  # receivers ack every segment by default
TCP_USER_TIMEOUT = 120.0  # give-up threshold for retransmissions

# ---------------------------------------------------------------------------
# Packet-interception technologies (§5 "Alternative designs": "an
# alternative is to rely on eBPF which has demonstrated better performance
# over Netfilter [Miano et al.]; we leave further implementation and
# comparison as future work" — implemented here).  NFQUEUE pays a
# kernel->userspace copy plus a verdict round trip per held packet; an
# eBPF map-based hold stays in the kernel.
# ---------------------------------------------------------------------------

NETFILTER_QUEUE_DELAY = 15e-6  # packet copy to the userspace consumer
NETFILTER_VERDICT_DELAY = 15e-6  # verdict syscall back into the kernel
EBPF_QUEUE_DELAY = 1.5e-6  # map update + ring-buffer notification
EBPF_VERDICT_DELAY = 1.0e-6  # map-driven release, no context switch

# ---------------------------------------------------------------------------
# KV store (repro.kvstore).  Fig. 5(b): "The time to read one record only
# takes less than 500 us, and the time to write one record takes roughly
# 1 ms ... the write operation takes approximately 2.5x longer than the
# read ... less than 1 ms to read roughly 70 records, and 200 ms for up to
# 10K records.  For writing records, it takes less than 2 ms for 10
# records, and ~500 ms for 10K packets."
#
# Model: a batched operation of n records costs base + n * per_record on
# the server, plus one network round trip.  base+1*per+RTT reproduces the
# single-record numbers; the linear term reproduces the 10K-record totals.
# ---------------------------------------------------------------------------

KV_READ_BASE = 300e-6
KV_READ_PER_RECORD = 19e-6  # 10K reads ~= 190 ms + base (paper: ~200 ms)
KV_WRITE_BASE = 850e-6
KV_WRITE_PER_RECORD = 48e-6  # 10K writes ~= 480 ms + base (paper: ~500 ms)
KV_KEY_BYTES = 90  # "a 90B key": 16B VRF prefix + 36B four-tuple + 38B ids
KV_VALUE_BYTES_MAX = 4096  # "maximum size limit of 4 KB" per BGP message
KV_REPLICATION_FACTOR = 2  # primary + one sync replica

# ---------------------------------------------------------------------------
# BGP daemon processing profiles (repro.baselines / repro.core).
# Fig. 6(a): ~40 ms floor at 100 updates; linear past ~10K updates; FRR
# fastest, GoBGP ~ BIRD, TENSOR slowest ("at least 5 seconds for any
# open-sourced implementation" at 500K updates; TENSOR's overhead "less
# than one second to receive tens of thousands of routing updates").
# Per-update CPU costs below put FRR at 5.0 s / 500K and TENSOR's *CPU*
# at 7.0 s / 500K before replication stalls, which the simulation adds.
# ---------------------------------------------------------------------------

BGP_SESSION_SETUP_COST = 0.035  # connection + OPEN exchange + first run
RECEIVE_COST_PER_UPDATE = {
    "frr": 10.0e-6,
    "bird": 12.5e-6,
    "gobgp": 13.0e-6,
    "tensor": 14.0e-6,  # + replication (DB writes, delayed ACKs) in-sim
}
# Fig. 6(b): sending is cheaper and near-identical across implementations
# (GoBGP modestly slower even to a single peer).
SEND_COST_PER_UPDATE = {
    "frr": 7.5e-6,
    "bird": 8.0e-6,
    "gobgp": 12.0e-6,
    "tensor": 8.5e-6,  # + one pipelined DB write per message in-sim
}
# Fig. 6(c): update packing ("the BGP update message for many peers will be
# largely the same except for the header information").  A packed copy for
# an extra peer only costs a header rewrite; GoBGP regenerates per peer at
# full SEND_COST_PER_UPDATE, which is what produces its >=5x gap.
PACKED_COPY_COST_PER_UPDATE = {
    "frr": 1.0e-6,
    "bird": 0.9e-6,
    "tensor": 1.0e-6,
}
# Per-peer session bookkeeping during fan-out.  With 100 updates per peer:
#   FRR    0.07 ms + 100*1.0 us = 0.17 ms/peer
#   BIRD   0.10 ms + 100*0.9 us = 0.19 ms/peer (+ superlinear term below)
#   TENSOR 0.14 ms + 100*1.0 us = 0.24 ms/peer
#   GoBGP  0.20 ms + 100*12  us = 1.40 ms/peer  (~8x FRR: ">=5x" per paper)
PER_PEER_SESSION_COST = {
    "frr": 0.07e-3,
    "bird": 0.10e-3,
    "gobgp": 0.20e-3,
    "tensor": 0.14e-3,
}
# BIRD's per-peer bookkeeping grows with the total peer count; the quadratic
# term overtakes TENSOR's flat 0.05 ms/peer premium at n = 0.05e-3/8.3e-8
# ~= 600 peers — the Fig. 6(c) crossover.
BIRD_PER_PEER_SUPERLINEAR = 8.3e-8  # seconds per peer^2

# ---------------------------------------------------------------------------
# Containers (repro.containers).  §3.2.1: config loading dominates boot:
# "~10K or ~100K [configurations] ... may take up to ~20 minutes" for a
# monolithic gateway; containerized boot is "~20 seconds".
# Fig. 6(d): "Supporting 100 containers only costs 25 GB of memory and
# 5.6% of the CPU" => 250 MB and 0.056% per container, linear.
# ---------------------------------------------------------------------------

CONFIG_LOAD_TIME_PER_ENTRY = 12e-3  # 100K entries -> 1200 s (~20 min)
CONTAINER_BASE_BOOT_TIME = 1.0  # image start + namespaces + veth plumbing
CONTAINER_PREHEAT_RESUME_TIME = 0.35  # preheated: processes up, state stale
CONTAINER_MEMORY_BASE = 18 * 2**20
CONTAINER_MEMORY_PER_CONFIG = 230 * 2**10  # ~1000 configs -> ~250 MB total
CONTAINER_CPU_FRACTION = 0.056 / 100  # of one host, per container (idle)

# ---------------------------------------------------------------------------
# BFD (repro.bfd).  §3.3.2: "its timeout interval is usually less than 1
# second -- 100 ms x 3 is adopted in Tencent's cloud gateway."
# ---------------------------------------------------------------------------

BFD_TX_INTERVAL = 0.1
BFD_DETECT_MULT = 3

# ---------------------------------------------------------------------------
# Controller / failure localization (repro.control).  §3.3.3 and Table 1.
# ---------------------------------------------------------------------------

APP_MONITOR_INTERVAL = 0.01  # in-container supervisor poll (detect ~0.01 s)
DOCKER_MONITOR_INTERVAL = 0.25  # host process monitor (container detect ~0.3 s)
GRPC_HEARTBEAT_INTERVAL = 0.1
GRPC_HEARTBEAT_TIMEOUT = 0.3
IPSLA_PROBE_INTERVAL = 0.1
IPSLA_PROBE_TIMEOUT = 0.25
HOST_FAILURE_CONFIRM_TIMER = 3.0  # "a 3-second timer will be given"
CONTROLLER_DECISION_TIME = 0.1  # "Initiates NSR Migration" ~0.1-0.2 s

# Table 1 recovery-phase calibration for TENSOR (simulated mechanisms must
# land near these; see benchmarks/bench_table1_failure_recovery.py):
#   application: 0.01 / 0.10 / 1.09 / 1.06 / 2.26
#   container:   0.31 / 0.10 / 1.19 / 1.01 / 2.61
#   host:        3.30 / 0.20 / 4.50 / 1.05 / 9.05
#   host net:    3.30 / 0.21 / 4.45 / 1.21 / 9.17
APP_RESTART_TIME = 1.08  # restart BGP+BFD processes inside the container
PROCESS_START_TIME = 0.8  # start BGP+BFD inside a freshly booted container
TCP_REPAIR_RESUME_TIME = 1.0  # socket repair + BGP table download + resync
HOST_MIGRATION_STAGGER = 0.15  # per-container serialization on mass move
CONTROLLER_DECISION_TIME_MACHINE = 0.2  # planning a whole-machine migration

# Recovery watchdog: a migration that has not completed this long after
# the decision is abandoned and detection is re-armed (the per-entry
# config-load term is added by the controller for full-table pairs, so a
# legitimately slow cold boot is never falsely abandoned).  Generously
# above the worst Table-1 recovery total (~9.2 s) plus confirm timers.
RECOVERY_DEADLINE = 30.0

# Replicated controller panel (DESIGN.md §15).
PANEL_TICK = 0.5  # leadership-lease maintenance cadence
PANEL_LIE_INTERVAL = 0.9  # corrupted-monitor fabrication cadence

# Baseline (FRR/GoBGP/BIRD, Table 1 bracketed numbers): manual operations.
BASELINE_MANUAL_DETECT = {"application": 1.0, "host_machine": 15.0, "host_network": 5.0}
BASELINE_MANUAL_REBOOT = {"application": 20.0, "host_machine": 200.0, "host_network": 5.0}
BASELINE_TCP_RECONNECT = {"application": 1.0, "host_machine": 5.0, "host_network": 5.0}
BASELINE_BGP_RECOVERY = {"application": 5.0, "host_machine": 10.0, "host_network": 10.0}

# Failure mix (Table 1 "Frequency" column).
FAILURE_FREQUENCIES = {
    "application": 0.03,
    "container": 0.13,
    "host_machine": 0.19,
    "host_network": 0.65,
}

# ---------------------------------------------------------------------------
# Operational model (Fig. 7).  §4.4: mean per-link throughput > 37 Gbps,
# median ~64 Mbps, "Over 30% of the links ... carry over 1 Gb of data per
# second"; "roughly 34 TB of data is impacted every month" pre-TENSOR.
#
# A single lognormal cannot satisfy (median 64 Mbps, mean 37 Gbps, P[>1G] >
# 0.3) simultaneously, so we use a two-component lognormal mixture:
# 60% "small" links (median ~17 Mbps, sigma 1.5) and 40% "large" links
# (median 5.3 Gbps, sigma 2.4).  Checks:
#   P[>1G]  = 0.4*P(Z > -0.70) + 0.6*P(Z > 2.35) ~= 0.303 + 0.006 = 0.31
#   mean    = 0.4*5.3e9*e^(2.4^2/2) + tiny      ~= 37.7 Gbps
#   median: P[<64M] = 0.6*P(Z < 0.88) + 0.4*P(Z < -1.84) ~= 0.50
# ---------------------------------------------------------------------------

TRAFFIC_MIX_SMALL_WEIGHT = 0.60
TRAFFIC_SMALL_MEDIAN_BPS = 17.1e6
TRAFFIC_SMALL_SIGMA = 1.5
TRAFFIC_LARGE_MEDIAN_BPS = 5.3e9
TRAFFIC_LARGE_SIGMA = 2.4

FLEET_SERVERS = 400  # "a fleet of 400 servers"
FLEET_BGP_CONNECTIONS = 31000  # "over 31,000 BGP peering connections"
FLEET_PEERING_ASES = 6000  # "span over 6,000 ASes"
FLEET_ENTERPRISE_CLIENTS = 3000

# ---------------------------------------------------------------------------
# Cost models (Table 2).
# ---------------------------------------------------------------------------

SOLUTION_COSTS = {
    "frr/gobgp/bird": {
        "recovery": "(Offline) Tens of Seconds to Minutes",
        "dev_time_months": 0,
        "dev_labor_man_months": 0,
        "loc": "70K-418K",
        "deploy_cost_usd": 3000,
        "maintenance_man_hours_per_month": 72,
    },
    "nsr_router": {
        "recovery": "(Online) Seconds",
        "dev_time_months": 50,
        "dev_labor_man_months": 500,
        "loc": "+50K",
        "deploy_cost_usd": 15000,
        "maintenance_man_hours_per_month": 110,
    },
    "tensor": {
        "recovery": "(Online) Seconds",
        "dev_time_months": 12,
        "dev_labor_man_months": 25,
        "loc": "+8K",
        "deploy_cost_usd": 3000,
        "maintenance_man_hours_per_month": 10,
    },
}
