"""Datagram sockets and a request/response RPC layer.

The KV-store protocol, the controller's gRPC-style channels and the IP SLA
probes all need the same primitive: send a request to an address, get a
reply or a timeout.  This module provides it over the simulated fabric.
Everything is callback-based (the simulator has no coroutines), and every
exchange really crosses the network, so failures of hosts, NICs and links
produce timeouts exactly where the paper's failure-localization logic
expects them.
"""

import itertools

from repro.sim.engine import SimulationError
from repro.sim.network import Packet
from repro.trace.tracer import tracer_of


class DatagramSocket:
    """A connectionless socket bound to (protocol, port) on a host."""

    def __init__(self, host, port, protocol="udp"):
        self.host = host
        self.port = port
        self.protocol = protocol
        self.on_receive = None
        host.bind(protocol, port, self._deliver)
        self._closed = False

    def sendto(self, dst_addr, dst_port, payload, size=256, src_override=None):
        """Send a datagram.  Returns False when the local stack is down.

        ``src_override`` spoofs the source address — the agent server's
        BFD relay uses it to transmit keepalives that appear to come from
        the (down) primary's service address, which the shared VXLAN
        underlay makes legitimate in the real deployment.
        """
        if self._closed:
            raise SimulationError("sendto on closed socket")
        packet = Packet(
            src=src_override or self.host.address,
            dst=dst_addr,
            protocol=self.protocol,
            sport=self.port,
            dport=dst_port,
            payload=payload,
            size=size,
        )
        return self.host.send(packet)

    def _deliver(self, packet):
        if self.on_receive is not None:
            self.on_receive(packet.src, packet.sport, packet.payload)

    def close(self):
        if not self._closed:
            self.host.unbind(self.protocol, self.port)
            self._closed = True


class _RpcFrame:
    """Wire frame for the RPC layer.

    ``trace`` carries the caller's trace context — the serializable
    ``(trace_id, span_id)`` reference of the span ambient at ``call``
    time — across the process boundary, the way a real RPC layer ships
    trace ids in request metadata.
    """

    __slots__ = ("kind", "req_id", "method", "body", "trace")

    def __init__(self, kind, req_id, method, body, trace=None):
        self.kind = kind  # "req" | "rep" | "refused"
        self.req_id = req_id
        self.method = method
        self.body = body
        self.trace = trace


class RefusalResponder:
    """Models the OS answering a closed port with a reset.

    A request to a host whose server process has *exited* (socket
    unbound) should fail fast with a connection-refused error rather
    than a timeout — the distinction the KV failover client logic needs
    to tell a dead-but-reachable endpoint from a partition.  Installed
    as the protocol-wide wildcard handler, so it only sees requests that
    no bound socket claimed first.
    """

    def __init__(self, engine, host, protocol="rpc"):
        self.engine = engine
        self.host = host
        self.protocol = protocol
        self.refusals = 0
        host.bind(protocol, None, self._on_packet)

    def _on_packet(self, packet):
        frame = packet.payload
        if not isinstance(frame, _RpcFrame) or frame.kind != "req":
            return
        self.refusals += 1
        reply = _RpcFrame("refused", frame.req_id, frame.method, None)
        self.host.send(Packet(
            src=self.host.address,
            dst=packet.src,
            protocol=self.protocol,
            sport=packet.dport,
            dport=packet.sport,
            payload=reply,
            size=64,
        ))


class RpcServer:
    """Serves requests on (host, port).

    ``handler(method, body) -> reply_body`` runs application logic; a
    ``service_time(method, body) -> seconds`` hook models server-side
    processing cost (the KV store uses it for its calibrated op costs).
    """

    def __init__(self, engine, host, port, handler, service_time=None, protocol="rpc"):
        self.engine = engine
        self.host = host
        self.port = port
        self.handler = handler
        self.service_time = service_time
        self.socket = DatagramSocket(host, port, protocol=protocol)
        self.socket.on_receive = self._on_frame
        self.requests_served = 0

    def _on_frame(self, src_addr, src_port, frame):
        if frame.kind != "req":
            return
        delay = 0.0
        if self.service_time is not None:
            delay = self.service_time(frame.method, frame.body)
        self.engine.schedule(
            delay, self._finish, src_addr, src_port, frame, self.engine.now
        )

    def _finish(self, src_addr, src_port, frame, received_at):
        tracer = tracer_of(self.engine)
        if tracer.enabled:
            span = tracer.begin_from(
                frame.trace, "rpc.server." + frame.method, port=self.port
            )
            span.begin = received_at  # service time counts as server work
            with tracer.activate(span):
                reply_body = self.handler(frame.method, frame.body)
            span.finish()
        else:
            reply_body = self.handler(frame.method, frame.body)
        self.requests_served += 1
        reply = _RpcFrame("rep", frame.req_id, frame.method, reply_body)
        self.socket.sendto(src_addr, src_port, reply, size=_body_size(reply_body))

    def close(self):
        self.socket.close()


class AsyncRpcServer:
    """Like :class:`RpcServer`, but the handler replies asynchronously.

    ``handler(method, body, respond)`` must eventually call
    ``respond(reply_body)`` exactly once — possibly after further network
    round trips (the KV store's synchronous replication uses this to reply
    only after its replica has confirmed the write).
    """

    def __init__(self, engine, host, port, handler, service_time=None, protocol="rpc"):
        self.engine = engine
        self.host = host
        self.port = port
        self.handler = handler
        self.service_time = service_time
        self.socket = DatagramSocket(host, port, protocol=protocol)
        self.socket.on_receive = self._on_frame
        self.requests_served = 0

    def _on_frame(self, src_addr, src_port, frame):
        if frame.kind != "req":
            return
        delay = 0.0
        if self.service_time is not None:
            delay = self.service_time(frame.method, frame.body)
        self.engine.schedule(
            delay, self._dispatch, src_addr, src_port, frame, self.engine.now
        )

    def _dispatch(self, src_addr, src_port, frame, received_at):
        tracer = tracer_of(self.engine)
        span = None
        if tracer.enabled:
            span = tracer.begin_from(
                frame.trace, "rpc.server." + frame.method, port=self.port
            )
            span.begin = received_at

        def respond(reply_body):
            if span is not None:
                span.finish()
            if self.socket._closed:
                return  # server exited mid-request (e.g. failover demotion)
            self.requests_served += 1
            reply = _RpcFrame("rep", frame.req_id, frame.method, reply_body)
            self.socket.sendto(src_addr, src_port, reply, size=_body_size(reply_body))

        if span is not None:
            # The handler (and any replica round trip it schedules, e.g.
            # the KV store's synchronous replication) runs under the
            # propagated context.
            with tracer.activate(span):
                self.handler(frame.method, frame.body, respond)
        else:
            self.handler(frame.method, frame.body, respond)

    def close(self):
        self.socket.close()


class RpcClient:
    """Issues requests to a fixed server address.

    ``call(method, body, on_reply, on_timeout=..., timeout=...)`` — the
    reply callback receives the reply body; the timeout callback fires if
    no reply arrives in time (lost packets, dead server, partition).
    """

    def __init__(self, engine, host, server_addr, server_port, protocol="rpc"):
        self.engine = engine
        self.host = host
        self.server_addr = server_addr
        self.server_port = server_port
        # engine-scoped allocation: a client's port must not depend on
        # which other simulations share this OS process (determinism
        # across parallel-runtime worker placements)
        port = engine.next_id("rpc.client_port", 40000)
        self.socket = DatagramSocket(host, port, protocol=protocol)
        self.socket.on_receive = self._on_frame
        self._req_counter = itertools.count(1)
        self._pending = {}
        self.timeouts = 0
        self.replies = 0
        self.refusals = 0

    def call(self, method, body, on_reply, on_timeout=None, timeout=1.0,
             on_refused=None):
        """Fire a request.  Exactly one of the callbacks will run.

        ``on_refused`` fires when the endpoint actively refuses the
        request (a :class:`RefusalResponder` answered for a closed
        port, or :meth:`retarget` abandoned the old endpoint); without
        it, refusals fall back to ``on_timeout``.
        """
        req_id = next(self._req_counter)
        tracer = tracer_of(self.engine)
        if tracer.enabled:
            span = tracer.begin("rpc." + method, server=self.server_addr)
            frame = _RpcFrame(
                "req", req_id, method, body,
                trace=(span.trace_id, span.span_id),
            )
        else:
            frame = _RpcFrame("req", req_id, method, body)
            span = None
        timer = self.engine.schedule(timeout, self._expire, req_id)
        self._pending[req_id] = (on_reply, on_timeout, on_refused, timer, span)
        self.socket.sendto(
            self.server_addr, self.server_port, frame, size=_body_size(body)
        )
        return req_id

    def _on_frame(self, src_addr, src_port, frame):
        if frame.kind == "refused":
            self._refuse(frame.req_id)
            return
        if frame.kind != "rep":
            return
        entry = self._pending.pop(frame.req_id, None)
        if entry is None:
            return  # reply after timeout: drop
        on_reply, _on_timeout, _on_refused, timer, span = entry
        timer.cancel()
        self.replies += 1
        if span is not None:
            span.finish(outcome="reply")
        on_reply(frame.body)

    def _expire(self, req_id):
        entry = self._pending.pop(req_id, None)
        if entry is None:
            return
        _on_reply, on_timeout, _on_refused, _timer, span = entry
        self.timeouts += 1
        if span is not None:
            span.finish(outcome="timeout")
        if on_timeout is not None:
            on_timeout()

    def _refuse(self, req_id):
        entry = self._pending.pop(req_id, None)
        if entry is None:
            return
        on_reply_, on_timeout, on_refused, timer, span = entry
        timer.cancel()
        self.refusals += 1
        if span is not None:
            span.finish(outcome="refused")
        if on_refused is not None:
            on_refused()
        elif on_timeout is not None:
            on_timeout()

    def retarget(self, server_addr, server_port=None):
        """Point the client at a different endpoint (failover repoint).

        Every in-flight request to the old endpoint is failed through
        its refused/timeout callback *now* — silently cancelling them
        would wedge callers (a write coalescer's in-flight flag, a held
        ACK) waiting on a callback that never comes.
        """
        self.server_addr = server_addr
        if server_port is not None:
            self.server_port = server_port
        abandoned = list(self._pending)
        for req_id in abandoned:
            self._refuse(req_id)

    def cancel_all(self):
        """Drop all in-flight requests without firing callbacks."""
        for _on_reply, _on_timeout, _on_refused, timer, span in self._pending.values():
            timer.cancel()
            if span is not None:
                span.finish(outcome="cancelled")
        self._pending.clear()

    def close(self):
        self.cancel_all()
        self.socket.close()


def _body_size(body, default=256):
    """Estimate the wire size of an RPC body."""
    if isinstance(body, (bytes, bytearray)):
        return 64 + len(body)
    if isinstance(body, dict):
        total = 64
        for key, value in body.items():
            total += len(str(key))
            if isinstance(value, (bytes, bytearray, str)):
                total += len(value)
            else:
                total += 8
        return total
    return default
