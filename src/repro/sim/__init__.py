"""Discrete-event simulation substrate.

Every other subsystem in this reproduction (TCP, BGP, BFD, the key-value
store, containers, the controller) runs on top of this package.  The engine
provides a virtual clock so that the durations the paper reports — failure
detection times, migration times, update-processing times — are measured
deterministically instead of depending on host load.

Public surface:

- :class:`~repro.sim.engine.Engine` — the event loop and virtual clock.
- :class:`~repro.sim.process.Process` / :class:`~repro.sim.process.Timer` —
  simulated processes and restartable timers.
- :class:`~repro.sim.network.Network`, :class:`~repro.sim.network.Host`,
  :class:`~repro.sim.network.Link` — the simulated network fabric.
- :mod:`~repro.sim.rpc` — a datagram/request-response layer used by the KV
  store, controller channels and IP SLA probes.
- :mod:`~repro.sim.calibration` — every constant calibrated to the paper.
"""

from repro.sim.engine import Engine, Event, SimulationError
from repro.sim.process import Process, Timer
from repro.sim.network import Host, Link, Network, Packet
from repro.sim.rand import DeterministicRandom

__all__ = [
    "Engine",
    "Event",
    "SimulationError",
    "Process",
    "Timer",
    "Host",
    "Link",
    "Network",
    "Packet",
    "DeterministicRandom",
]
