"""The discrete-event engine and virtual clock.

The engine is a classic priority-queue event loop.  Time is a float in
seconds.  Events scheduled for the same instant fire in scheduling order
(FIFO), which keeps every simulation in this repository deterministic.
"""

import contextlib
import heapq
import itertools
import math


class SimulationError(Exception):
    """Raised for invalid uses of the simulation engine."""


class Event:
    """A scheduled callback.

    Instances are returned by :meth:`Engine.schedule` and can be cancelled.
    Cancellation is O(1): the event is flagged and skipped when popped.

    Events that land on an instant already present in the queue are
    chained onto the existing heap entry (``members``) instead of being
    pushed separately — the dominant same-delay workloads (per-peer
    keepalive ticks, per-update CPU charges, RPC timeout timers armed in
    one batch) then cost an O(1) list append instead of a heap push, and
    one heap pop fires the whole slot.  FIFO order at an instant is
    preserved exactly: members are appended (and fired) in sequence
    order, and once a slot starts firing it is retired, so late arrivals
    for the same instant open a fresh, later slot.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "members",
                 "ctx", "scope", "fired")

    def __init__(self, time, seq, callback, args):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.members = None  # later events chained onto this heap slot
        self.ctx = None  # ambient trace span captured at schedule time
        self.scope = None  # ambient event scope captured at schedule time
        self.fired = False

    def cancel(self):
        """Prevent the event from firing.  Safe to call multiple times."""
        self.cancelled = True

    def __lt__(self, other):
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self):
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} {state} {self.callback!r}>"


class Engine:
    """Discrete-event loop with a virtual clock.

    Usage::

        engine = Engine()
        engine.schedule(1.5, handler, arg1, arg2)
        engine.run(until=10.0)
        assert engine.now <= 10.0
    """

    def __init__(self):
        self._queue = []
        self._counter = itertools.count()
        self._now = 0.0
        self._running = False
        self._stopped = False
        self._slots = {}  # time -> open (not yet firing) heap Event
        self._trace_hook = None  # a repro.trace.Tracer when tracing is on
        self._named_counters = {}  # name -> itertools.count (see next_id)
        self._ambient_scope = None  # event scope applied to new schedules
        self._scope_heaps = {}  # scope -> [Event] heap of tagged events

    def next_id(self, name, start=0):
        """Next value of the named monotonic counter scoped to *this* engine.

        Protocol layers (TCP ISNs, BFD discriminators, ephemeral ports)
        need unique-per-simulation identifiers.  Module-level counters
        would leak allocation state between simulations co-hosted in one
        OS process, making a shard's identifiers depend on which other
        shards share its worker — engine-scoped counters keep every
        simulation bit-identical regardless of process placement.
        """
        counter = self._named_counters.get(name)
        if counter is None:
            counter = self._named_counters[name] = itertools.count(start)
        return next(counter)

    def set_trace_hook(self, hook):
        """Install a trace hook (``hook.current`` is the ambient span).

        With a hook installed, :meth:`schedule` captures the ambient span
        onto each event and the run loop restores it around the callback,
        so trace causality follows every scheduling hop.  ``None``
        uninstalls.
        """
        self._trace_hook = hook

    @property
    def now(self):
        """Current virtual time in seconds."""
        return self._now

    def schedule(self, delay, callback, *args):
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        Returns the :class:`Event`, which may be cancelled.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        if not math.isfinite(delay):
            raise SimulationError(f"delay must be finite (delay={delay})")
        time = self._now + delay
        event = Event(time, next(self._counter), callback, args)
        hook = self._trace_hook
        if hook is not None and hook.current is not None:
            event.ctx = hook.current
        scope = self._ambient_scope
        if scope is not None:
            event.scope = scope
            heap = self._scope_heaps.get(scope)
            if heap is None:
                heap = self._scope_heaps[scope] = []
            heapq.heappush(heap, event)
        head = self._slots.get(time)
        if head is not None:
            # Same instant already queued: chain onto its slot (O(1)).
            if head.members is None:
                head.members = [event]
            else:
                head.members.append(event)
        else:
            self._slots[time] = event
            heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, when, callback, *args):
        """Schedule ``callback(*args)`` at absolute virtual time ``when``."""
        return self.schedule(when - self._now, callback, *args)

    def call_soon(self, callback, *args):
        """Schedule ``callback(*args)`` at the current instant (after the
        currently-firing event and anything already queued for now)."""
        return self.schedule(0.0, callback, *args)

    @contextlib.contextmanager
    def scoped(self, scope):
        """Tag every event scheduled inside the ``with`` block with ``scope``.

        Scopes propagate transitively: when a scoped event fires, the
        scope becomes ambient again, so events its callback schedules are
        tagged too.  The closure of a scope is therefore everything
        causally downstream of the schedules made under it (plus any
        later explicit ``scoped`` blocks).  Used by the parallel runtime
        to track the *outbound-capable* subset of a shard's events — see
        :meth:`next_event_time` and ``repro.sim.parallel``.
        """
        previous = self._ambient_scope
        self._ambient_scope = scope
        try:
            yield
        finally:
            self._ambient_scope = previous

    def next_event_time(self, scope=None):
        """Earliest pending event time, or ``None`` when nothing is queued.

        With ``scope=None`` this peeks the global queue (skipping events
        that are cancelled and carry no live slot members, exactly like
        the run loop's lazy pop).  With a scope token it answers for the
        events tagged by :meth:`scoped` only — the earliest instant at
        which anything inside that scope can happen.  Both forms are
        O(amortized 1): stale heap heads are discarded as they are seen.
        """
        if scope is not None:
            heap = self._scope_heaps.get(scope)
            while heap:
                head = heap[0]
                if head.fired or head.cancelled:
                    heapq.heappop(heap)
                    continue
                return head.time
            return None
        queue = self._queue
        slots = self._slots
        while queue:
            head = queue[0]
            if head.cancelled and head.members is None:
                heapq.heappop(queue)
                if slots.get(head.time) is head:
                    del slots[head.time]
                continue
            return head.time
        return None

    def stop(self):
        """Stop a running :meth:`run` loop after the current event."""
        self._stopped = True

    def pending(self):
        """Number of non-cancelled events still queued."""
        total = 0
        for event in self._queue:
            if not event.cancelled:
                total += 1
            if event.members:
                total += sum(1 for m in event.members if not m.cancelled)
        return total

    def run(self, until=None, max_events=None):
        """Run events until the queue drains, ``until`` passes, or
        ``max_events`` events have fired.

        Returns the number of events executed.  The clock is advanced to
        ``until`` when it is provided and the queue drains early, so that
        time-based assertions hold regardless of event density.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        entry_scope = self._ambient_scope
        executed = 0
        try:
            while self._queue:
                if self._stopped:
                    break
                if max_events is not None and executed >= max_events:
                    break
                event = self._queue[0]
                slots = self._slots
                if event.cancelled and event.members is None:
                    heapq.heappop(self._queue)
                    if slots.get(event.time) is event:
                        del slots[event.time]
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._queue)
                # Retire the slot before firing: same-instant events
                # scheduled by the callbacks below open a fresh slot that
                # pops after the remaining members (their seq is higher).
                if slots.get(event.time) is event:
                    del slots[event.time]
                self._now = event.time
                if not event.cancelled:
                    event.fired = True
                    self._ambient_scope = event.scope
                    hook = self._trace_hook
                    if hook is not None and event.ctx is not None:
                        hook.current = event.ctx
                        event.callback(*event.args)
                        hook.current = None
                    else:
                        event.callback(*event.args)
                    executed += 1
                members = event.members
                if members:
                    index = 0
                    while index < len(members):
                        if self._stopped or (
                            max_events is not None and executed >= max_events
                        ):
                            self._requeue_members(members, index)
                            break
                        member = members[index]
                        index += 1
                        if member.cancelled:
                            continue
                        member.fired = True
                        self._ambient_scope = member.scope
                        hook = self._trace_hook
                        if hook is not None and member.ctx is not None:
                            hook.current = member.ctx
                            member.callback(*member.args)
                            hook.current = None
                        else:
                            member.callback(*member.args)
                        executed += 1
        finally:
            self._running = False
            # fired events made their scope ambient; don't leak the last
            # one into schedules made after the loop (e.g. at barriers)
            self._ambient_scope = entry_scope
        if until is not None and self._now < until and not self._stopped:
            self._now = until
        return executed

    def _requeue_members(self, members, start):
        """Push unfired slot members back when a run() is interrupted."""
        rest = members[start:]
        head = rest[0]
        head.members = rest[1:] if len(rest) > 1 else None
        heapq.heappush(self._queue, head)
        if head.time not in self._slots:
            self._slots[head.time] = head

    def inject(self, when, callback, *args):
        """Schedule ``callback(*args)`` from *outside* the simulation at
        absolute virtual time ``when``.

        The entry point the parallel runtime uses to merge cross-shard
        frames between conservative windows: injections happen at window
        barriers, in the deterministic merge order ``(time, shard, seq)``,
        and their engine sequence numbers are assigned in injection order
        — so the interleaving with locally scheduled events is a pure
        function of the merge, not of worker placement.  ``when`` must
        not lie in the past (the lookahead bound guarantees this for
        conservative synchronization).
        """
        if when < self._now:
            raise SimulationError(
                f"inject into the past (when={when} < now={self._now})"
            )
        return self.schedule(when - self._now, callback, *args)

    def run_window(self, until):
        """Run one conservative window: fire every event with
        ``time <= until`` and land the clock exactly on ``until``.

        Identical to ``run(until=until)`` except that a backwards window
        is rejected rather than silently ignored — the parallel runtime
        calls this repeatedly with monotonically increasing barriers and
        relies on every shard's clock sitting exactly on the barrier
        when the window returns.  Returns the number of events executed.
        """
        if until < self._now:
            raise SimulationError(
                f"window ends in the past (until={until} < now={self._now})"
            )
        return self.run(until=until)

    def run_until_idle(self, max_events=10_000_000):
        """Run until no events remain.  Guards against runaway loops."""
        executed = self.run(max_events=max_events)
        if executed >= max_events:
            raise SimulationError(
                f"simulation did not converge within {max_events} events"
            )
        return executed

    def advance(self, duration):
        """Run for ``duration`` seconds of virtual time."""
        return self.run(until=self._now + duration)

    def run_stepped(self, until, on_step, quantum=0.05):
        """Run to ``until`` in ``quantum``-sized slices, calling
        ``on_step(now)`` after each slice.

        The continuous-checking driver for invariant oracles: the oracle
        callback observes the system at a bounded virtual-time granularity
        without wiring itself into every event.  ``on_step`` may call
        :meth:`stop` to abort the run early (e.g. on the first violation).
        Returns the number of events executed.
        """
        if quantum <= 0:
            raise SimulationError(f"quantum must be positive (quantum={quantum})")
        executed = 0
        while self._now < until:
            slice_end = min(self._now + quantum, until)
            executed += self.run(until=slice_end)
            on_step(self._now)
            if self._stopped:
                break
        return executed

    def __repr__(self):
        return f"<Engine t={self._now:.6f} pending={self.pending()}>"
