"""The discrete-event engine and virtual clock.

The engine is a classic priority-queue event loop.  Time is a float in
seconds.  Events scheduled for the same instant fire in scheduling order
(FIFO), which keeps every simulation in this repository deterministic.
"""

import heapq
import itertools
import math


class SimulationError(Exception):
    """Raised for invalid uses of the simulation engine."""


class Event:
    """A scheduled callback.

    Instances are returned by :meth:`Engine.schedule` and can be cancelled.
    Cancellation is O(1): the event is flagged and skipped when popped.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time, seq, callback, args):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self):
        """Prevent the event from firing.  Safe to call multiple times."""
        self.cancelled = True

    def __lt__(self, other):
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self):
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} {state} {self.callback!r}>"


class Engine:
    """Discrete-event loop with a virtual clock.

    Usage::

        engine = Engine()
        engine.schedule(1.5, handler, arg1, arg2)
        engine.run(until=10.0)
        assert engine.now <= 10.0
    """

    def __init__(self):
        self._queue = []
        self._counter = itertools.count()
        self._now = 0.0
        self._running = False
        self._stopped = False

    @property
    def now(self):
        """Current virtual time in seconds."""
        return self._now

    def schedule(self, delay, callback, *args):
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        Returns the :class:`Event`, which may be cancelled.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        if not math.isfinite(delay):
            raise SimulationError(f"delay must be finite (delay={delay})")
        event = Event(self._now + delay, next(self._counter), callback, args)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, when, callback, *args):
        """Schedule ``callback(*args)`` at absolute virtual time ``when``."""
        return self.schedule(when - self._now, callback, *args)

    def call_soon(self, callback, *args):
        """Schedule ``callback(*args)`` at the current instant (after the
        currently-firing event and anything already queued for now)."""
        return self.schedule(0.0, callback, *args)

    def stop(self):
        """Stop a running :meth:`run` loop after the current event."""
        self._stopped = True

    def pending(self):
        """Number of non-cancelled events still queued."""
        return sum(1 for e in self._queue if not e.cancelled)

    def run(self, until=None, max_events=None):
        """Run events until the queue drains, ``until`` passes, or
        ``max_events`` events have fired.

        Returns the number of events executed.  The clock is advanced to
        ``until`` when it is provided and the queue drains early, so that
        time-based assertions hold regardless of event density.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        executed = 0
        try:
            while self._queue:
                if self._stopped:
                    break
                if max_events is not None and executed >= max_events:
                    break
                event = self._queue[0]
                if event.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._queue)
                self._now = event.time
                event.callback(*event.args)
                executed += 1
        finally:
            self._running = False
        if until is not None and self._now < until and not self._stopped:
            self._now = until
        return executed

    def run_until_idle(self, max_events=10_000_000):
        """Run until no events remain.  Guards against runaway loops."""
        executed = self.run(max_events=max_events)
        if executed >= max_events:
            raise SimulationError(
                f"simulation did not converge within {max_events} events"
            )
        return executed

    def advance(self, duration):
        """Run for ``duration`` seconds of virtual time."""
        return self.run(until=self._now + duration)

    def __repr__(self):
        return f"<Engine t={self._now:.6f} pending={self.pending()}>"
