"""Multiprotocol BGP (RFC 4760): IPv6 NLRI in MP_REACH/MP_UNREACH.

IPv4 routes travel in the classic UPDATE NLRI fields; IPv6 routes travel
inside the MP_REACH_NLRI / MP_UNREACH_NLRI path attributes.  The paper's
deployment identifies connections by "a 36B four-tuple identification
for IPv6-based TCP connection", i.e. the production peerings are v6 —
this module lets the reproduction carry v6 reachability end to end.
"""

from repro.bgp.attributes import (
    FLAG_OPTIONAL,
    TYPE_MP_REACH_NLRI,
    TYPE_MP_UNREACH_NLRI,
    _encode_attr,
)
from repro.bgp.capabilities import SAFI_UNICAST
from repro.bgp.errors import BgpError, NotificationCode, UpdateSubcode
from repro.bgp.prefixes import Prefix


class MpReach:
    """Decoded MP_REACH_NLRI: (afi, safi, next_hop, nlri)."""

    __slots__ = ("afi", "safi", "next_hop", "nlri")

    def __init__(self, afi, safi, next_hop, nlri):
        self.afi = afi
        self.safi = safi
        self.next_hop = next_hop  # Prefix-style address value (int)
        self.nlri = tuple(nlri)

    def __eq__(self, other):
        return isinstance(other, MpReach) and (
            self.afi, self.safi, self.next_hop, self.nlri
        ) == (other.afi, other.safi, other.next_hop, other.nlri)

    def __repr__(self):
        return f"<MpReach afi={self.afi} +{len(self.nlri)}>"


class MpUnreach:
    """Decoded MP_UNREACH_NLRI: (afi, safi, withdrawn)."""

    __slots__ = ("afi", "safi", "withdrawn")

    def __init__(self, afi, safi, withdrawn):
        self.afi = afi
        self.safi = safi
        self.withdrawn = tuple(withdrawn)

    def __eq__(self, other):
        return isinstance(other, MpUnreach) and (
            self.afi, self.safi, self.withdrawn
        ) == (other.afi, other.safi, other.withdrawn)

    def __repr__(self):
        return f"<MpUnreach afi={self.afi} -{len(self.withdrawn)}>"


def encode_mp_reach(next_hop_v6, nlri, safi=SAFI_UNICAST):
    """Encode an MP_REACH_NLRI attribute for IPv6 unicast.

    ``next_hop_v6`` is a 128-bit int (use Prefix.parse("...") .value);
    ``nlri`` is an iterable of v6 :class:`~repro.bgp.prefixes.Prefix`.
    """
    body = bytearray()
    body += (Prefix.AFI_IPV6).to_bytes(2, "big")
    body.append(safi)
    body.append(16)  # next-hop length
    body += next_hop_v6.to_bytes(16, "big")
    body.append(0)  # reserved (SNPA count)
    for prefix in nlri:
        if prefix.afi != Prefix.AFI_IPV6:
            raise ValueError(f"{prefix} is not IPv6")
        body += prefix.to_wire()
    return _encode_attr(FLAG_OPTIONAL, TYPE_MP_REACH_NLRI, bytes(body))


def encode_mp_unreach(withdrawn, safi=SAFI_UNICAST):
    """Encode an MP_UNREACH_NLRI attribute for IPv6 unicast."""
    body = bytearray()
    body += (Prefix.AFI_IPV6).to_bytes(2, "big")
    body.append(safi)
    for prefix in withdrawn:
        if prefix.afi != Prefix.AFI_IPV6:
            raise ValueError(f"{prefix} is not IPv6")
        body += prefix.to_wire()
    return _encode_attr(FLAG_OPTIONAL, TYPE_MP_UNREACH_NLRI, bytes(body))


def decode_mp_reach(value):
    """Decode an MP_REACH_NLRI attribute body."""
    if len(value) < 5:
        raise BgpError(NotificationCode.UPDATE_MESSAGE_ERROR,
                       UpdateSubcode.OPTIONAL_ATTRIBUTE_ERROR,
                       message="short MP_REACH_NLRI")
    afi = int.from_bytes(value[0:2], "big")
    safi = value[2]
    nh_len = value[3]
    offset = 4
    if offset + nh_len + 1 > len(value):
        raise BgpError(NotificationCode.UPDATE_MESSAGE_ERROR,
                       UpdateSubcode.OPTIONAL_ATTRIBUTE_ERROR,
                       message="truncated MP_REACH next hop")
    next_hop = int.from_bytes(value[offset : offset + nh_len], "big")
    offset += nh_len
    offset += 1  # reserved
    nlri = []
    while offset < len(value):
        prefix, offset = Prefix.from_wire(value, offset, afi=afi)
        nlri.append(prefix)
    return MpReach(afi, safi, next_hop, nlri)


def decode_mp_unreach(value):
    """Decode an MP_UNREACH_NLRI attribute body."""
    if len(value) < 3:
        raise BgpError(NotificationCode.UPDATE_MESSAGE_ERROR,
                       UpdateSubcode.OPTIONAL_ATTRIBUTE_ERROR,
                       message="short MP_UNREACH_NLRI")
    afi = int.from_bytes(value[0:2], "big")
    safi = value[2]
    offset = 3
    withdrawn = []
    while offset < len(value):
        prefix, offset = Prefix.from_wire(value, offset, afi=afi)
        withdrawn.append(prefix)
    return MpUnreach(afi, safi, withdrawn)


def mp_routes_of(attributes):
    """Extract (MpReach|None, MpUnreach|None) from unknown-attr passthrough.

    MP attributes are optional non-transitive in the RFC; we carry them
    as optional attributes through the generic unknown tuple so the core
    attribute class stays lean.
    """
    reach = None
    unreach = None
    for _flags, attr_type, value in attributes.unknown:
        if attr_type == TYPE_MP_REACH_NLRI:
            reach = decode_mp_reach(value)
        elif attr_type == TYPE_MP_UNREACH_NLRI:
            unreach = decode_mp_unreach(value)
    return reach, unreach


def attach_mp_reach(attributes, next_hop_v6, nlri, safi=SAFI_UNICAST):
    """Return a copy of ``attributes`` carrying the given v6 NLRI."""
    wire = encode_mp_reach(next_hop_v6, nlri, safi)
    # strip the generic attr header: flags, type, length
    header_len = 4 if len(wire) - 3 > 255 else 3
    value = wire[header_len:]
    unknown = tuple(
        entry for entry in attributes.unknown
        if entry[1] != TYPE_MP_REACH_NLRI
    ) + ((FLAG_OPTIONAL, TYPE_MP_REACH_NLRI, value),)
    return attributes.replace(unknown=unknown)
