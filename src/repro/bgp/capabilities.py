"""BGP capabilities (RFC 5492) carried in OPEN optional parameters.

We implement the capabilities the paper's environment depends on:
multiprotocol (IPv4/IPv6 unicast — the paper's key layout uses
"IPv6-based TCP connection"s), route refresh, 4-octet AS numbers, and
graceful restart (§2.1 discusses GR as the *planned*-restart mechanism
that NSR complements).
"""

CAP_MULTIPROTOCOL = 1
CAP_ROUTE_REFRESH = 2
CAP_GRACEFUL_RESTART = 64
CAP_FOUR_OCTET_AS = 65

SAFI_UNICAST = 1


class Capabilities:
    """The capability set announced in an OPEN message."""

    def __init__(
        self,
        afis=((1, SAFI_UNICAST),),
        route_refresh=True,
        four_octet_as=None,
        graceful_restart_time=None,
    ):
        self.afis = tuple(afis)  # (afi, safi) pairs for multiprotocol
        self.route_refresh = route_refresh
        self.four_octet_as = four_octet_as  # the 4-byte ASN, or None
        self.graceful_restart_time = graceful_restart_time  # seconds or None

    def to_wire(self):
        """Encode as one OPEN optional parameter (type 2, capabilities)."""
        caps = bytearray()
        for afi, safi in self.afis:
            value = afi.to_bytes(2, "big") + b"\x00" + bytes([safi])
            caps += bytes([CAP_MULTIPROTOCOL, len(value)]) + value
        if self.route_refresh:
            caps += bytes([CAP_ROUTE_REFRESH, 0])
        if self.four_octet_as is not None:
            caps += bytes([CAP_FOUR_OCTET_AS, 4]) + self.four_octet_as.to_bytes(4, "big")
        if self.graceful_restart_time is not None:
            value = (min(self.graceful_restart_time, 0xFFF)).to_bytes(2, "big")
            caps += bytes([CAP_GRACEFUL_RESTART, len(value)]) + value
        if not caps:
            return b""
        return bytes([2, len(caps)]) + bytes(caps)

    @classmethod
    def from_wire(cls, data):
        """Decode from the OPEN optional-parameters blob."""
        afis = []
        route_refresh = False
        four_octet_as = None
        graceful_restart_time = None
        offset = 0
        while offset + 2 <= len(data):
            param_type = data[offset]
            param_len = data[offset + 1]
            body = data[offset + 2 : offset + 2 + param_len]
            offset += 2 + param_len
            if param_type != 2:
                continue  # non-capability optional parameter: ignored
            inner = 0
            while inner + 2 <= len(body):
                cap_code = body[inner]
                cap_len = body[inner + 1]
                value = body[inner + 2 : inner + 2 + cap_len]
                inner += 2 + cap_len
                if cap_code == CAP_MULTIPROTOCOL and len(value) == 4:
                    afis.append((int.from_bytes(value[:2], "big"), value[3]))
                elif cap_code == CAP_ROUTE_REFRESH:
                    route_refresh = True
                elif cap_code == CAP_FOUR_OCTET_AS and len(value) == 4:
                    four_octet_as = int.from_bytes(value, "big")
                elif cap_code == CAP_GRACEFUL_RESTART and len(value) >= 2:
                    graceful_restart_time = int.from_bytes(value[:2], "big") & 0xFFF
        return cls(
            afis=tuple(afis) or ((1, SAFI_UNICAST),),
            route_refresh=route_refresh,
            four_octet_as=four_octet_as,
            graceful_restart_time=graceful_restart_time,
        )

    def __eq__(self, other):
        return isinstance(other, Capabilities) and (
            self.afis,
            self.route_refresh,
            self.four_octet_as,
            self.graceful_restart_time,
        ) == (
            other.afis,
            other.route_refresh,
            other.four_octet_as,
            other.graceful_restart_time,
        )

    def __repr__(self):
        return (
            f"<Capabilities afis={self.afis} rr={self.route_refresh}"
            f" as4={self.four_octet_as} gr={self.graceful_restart_time}>"
        )
