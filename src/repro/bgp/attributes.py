"""BGP path attributes (RFC 4271 §4.3, §5) with wire encode/decode.

Attributes are carried in UPDATE messages and drive the decision process.
We implement the well-known and common optional attributes, 4-octet AS
paths throughout (both ends of every simulated session negotiate the
4-octet AS capability), and opaque passthrough for unknown optional
transitive attributes.
"""

import enum

from repro.bgp.errors import BgpError, NotificationCode, UpdateSubcode

FLAG_OPTIONAL = 0x80
FLAG_TRANSITIVE = 0x40
FLAG_PARTIAL = 0x20
FLAG_EXTENDED = 0x10

TYPE_ORIGIN = 1
TYPE_AS_PATH = 2
TYPE_NEXT_HOP = 3
TYPE_MED = 4
TYPE_LOCAL_PREF = 5
TYPE_ATOMIC_AGGREGATE = 6
TYPE_AGGREGATOR = 7
TYPE_COMMUNITIES = 8
TYPE_MP_REACH_NLRI = 14
TYPE_MP_UNREACH_NLRI = 15

SEGMENT_SET = 1
SEGMENT_SEQUENCE = 2


def ipv4_to_int(text):
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"bad IPv4 address {text!r}")
    value = 0
    for part in parts:
        value = (value << 8) | (int(part) & 0xFF)
    return value


def int_to_ipv4(value):
    return ".".join(str(b) for b in value.to_bytes(4, "big"))


class Origin(enum.IntEnum):
    IGP = 0
    EGP = 1
    INCOMPLETE = 2


class AsPath:
    """An AS_PATH: an ordered list of (segment_type, asns) segments."""

    __slots__ = ("segments", "_path_length", "_first_as")

    def __init__(self, segments=()):
        self.segments = tuple(
            (seg_type, tuple(asns)) for seg_type, asns in segments
        )
        # Immutable, so the two decision-process projections are
        # precomputed: both sit on the Loc-RIB offer hot path.
        total = 0
        first = None
        for seg_type, asns in self.segments:
            total += len(asns) if seg_type == SEGMENT_SEQUENCE else 1
            if first is None and asns:
                first = asns[0]
        self._path_length = total
        self._first_as = first

    @classmethod
    def sequence(cls, *asns):
        """The common case: one AS_SEQUENCE segment."""
        if not asns:
            return cls()
        return cls([(SEGMENT_SEQUENCE, asns)])

    def prepend(self, asn, count=1):
        """Return a new path with ``asn`` prepended ``count`` times."""
        segments = list(self.segments)
        if segments and segments[0][0] == SEGMENT_SEQUENCE:
            head_type, head_asns = segments[0]
            segments[0] = (head_type, (asn,) * count + head_asns)
        else:
            segments.insert(0, (SEGMENT_SEQUENCE, (asn,) * count))
        return AsPath(segments)

    def path_length(self):
        """Decision-process length: an AS_SET counts as one hop."""
        return self._path_length

    def contains(self, asn):
        """Loop detection."""
        return any(asn in asns for _seg_type, asns in self.segments)

    def first_as(self):
        """The neighbouring AS (leftmost AS of the path), or None."""
        return self._first_as

    def as_list(self):
        return [asn for _t, asns in self.segments for asn in asns]

    def to_wire(self):
        out = bytearray()
        for seg_type, asns in self.segments:
            out.append(seg_type)
            out.append(len(asns))
            for asn in asns:
                out += asn.to_bytes(4, "big")
        return bytes(out)

    @classmethod
    def from_wire(cls, data):
        segments = []
        offset = 0
        while offset < len(data):
            if offset + 2 > len(data):
                raise BgpError(
                    NotificationCode.UPDATE_MESSAGE_ERROR,
                    UpdateSubcode.MALFORMED_AS_PATH,
                )
            seg_type = data[offset]
            count = data[offset + 1]
            offset += 2
            end = offset + 4 * count
            if end > len(data):
                raise BgpError(
                    NotificationCode.UPDATE_MESSAGE_ERROR,
                    UpdateSubcode.MALFORMED_AS_PATH,
                )
            asns = tuple(
                int.from_bytes(data[i : i + 4], "big") for i in range(offset, end, 4)
            )
            segments.append((seg_type, asns))
            offset = end
        return cls(segments)

    def __eq__(self, other):
        return isinstance(other, AsPath) and self.segments == other.segments

    def __hash__(self):
        return hash(self.segments)

    def __repr__(self):
        return f"AsPath({self.as_list()})"


class PathAttributes:
    """The attribute set of a route; hashable so packing can group by it.

    Instances MUST be treated as immutable once constructed: the wire
    encoding, the packing key and the hash are all computed lazily and
    cached on the instance, and identical attribute sets may be interned
    into shared flyweight objects (see :meth:`intern`).  Derive modified
    attribute sets with :meth:`replace`, never by assigning to fields.
    """

    __slots__ = (
        "origin",
        "as_path",
        "next_hop",
        "med",
        "local_pref",
        "atomic_aggregate",
        "aggregator",
        "communities",
        "unknown",
        "_wire",
        "_key",
        "_hash",
    )

    #: Flyweight table: wire bytes -> canonical instance.  Bounded so a
    #: pathological workload of unique attribute sets cannot grow it
    #: without limit; clearing only costs re-encoding, never correctness.
    _intern_table = {}
    _INTERN_LIMIT = 65536

    def __init__(
        self,
        origin=Origin.IGP,
        as_path=None,
        next_hop=None,
        med=None,
        local_pref=None,
        atomic_aggregate=False,
        aggregator=None,
        communities=(),
        unknown=(),
    ):
        self.origin = Origin(origin)
        self.as_path = as_path if as_path is not None else AsPath()
        self.next_hop = next_hop  # dotted-quad string or None
        self.med = med
        self.local_pref = local_pref
        self.atomic_aggregate = atomic_aggregate
        self.aggregator = aggregator  # (asn, dotted-quad) or None
        self.communities = tuple(communities)
        self.unknown = tuple(unknown)  # raw (flags, type, value) passthrough
        self._wire = None
        self._key = None
        self._hash = None

    def key(self):
        """Identity for update packing: routes sharing a key share UPDATEs."""
        key = self._key
        if key is None:
            key = self._key = (
                self.origin,
                self.as_path,
                self.next_hop,
                self.med,
                self.local_pref,
                self.atomic_aggregate,
                self.aggregator,
                self.communities,
                self.unknown,
            )
        return key

    @classmethod
    def intern(cls, attributes):
        """Return the canonical instance for this attribute set.

        Attribute sets are flyweighted by their wire encoding: the first
        instance seen for a given encoding becomes canonical and later
        equal sets resolve to it, so a table of a million routes sharing
        a few thousand attribute sets stores (and re-encodes) each set
        once.  Safe because instances are immutable by contract.
        """
        table = cls._intern_table
        if len(table) > cls._INTERN_LIMIT:
            table.clear()
        return table.setdefault(attributes.to_wire(), attributes)

    def replace(self, **overrides):
        """Return a modified copy (policy actions use this)."""
        fields = {
            "origin": self.origin,
            "as_path": self.as_path,
            "next_hop": self.next_hop,
            "med": self.med,
            "local_pref": self.local_pref,
            "atomic_aggregate": self.atomic_aggregate,
            "aggregator": self.aggregator,
            "communities": self.communities,
            "unknown": self.unknown,
        }
        fields.update(overrides)
        return PathAttributes(**fields)

    # -- wire format ---------------------------------------------------------

    def to_wire(self):
        wire = self._wire
        if wire is None:
            wire = self._wire = self._encode()
        return wire

    def _encode(self):
        out = bytearray()
        out += _encode_attr(FLAG_TRANSITIVE, TYPE_ORIGIN, bytes([self.origin]))
        out += _encode_attr(FLAG_TRANSITIVE, TYPE_AS_PATH, self.as_path.to_wire())
        if self.next_hop is not None:
            out += _encode_attr(
                FLAG_TRANSITIVE, TYPE_NEXT_HOP, ipv4_to_int(self.next_hop).to_bytes(4, "big")
            )
        if self.med is not None:
            out += _encode_attr(FLAG_OPTIONAL, TYPE_MED, self.med.to_bytes(4, "big"))
        if self.local_pref is not None:
            out += _encode_attr(
                FLAG_TRANSITIVE, TYPE_LOCAL_PREF, self.local_pref.to_bytes(4, "big")
            )
        if self.atomic_aggregate:
            out += _encode_attr(FLAG_TRANSITIVE, TYPE_ATOMIC_AGGREGATE, b"")
        if self.aggregator is not None:
            asn, addr = self.aggregator
            value = asn.to_bytes(4, "big") + ipv4_to_int(addr).to_bytes(4, "big")
            out += _encode_attr(
                FLAG_OPTIONAL | FLAG_TRANSITIVE, TYPE_AGGREGATOR, value
            )
        if self.communities:
            value = b"".join(c.to_bytes(4, "big") for c in self.communities)
            out += _encode_attr(
                FLAG_OPTIONAL | FLAG_TRANSITIVE, TYPE_COMMUNITIES, value
            )
        for flags, attr_type, value in self.unknown:
            out += _encode_attr(flags, attr_type, value)
        return bytes(out)

    @classmethod
    def from_wire(cls, data, intern=True):
        """Decode ``data``; with ``intern`` (the default) equal attribute
        sets decoded repeatedly resolve to one shared flyweight instance,
        which makes the receive hot path O(1) per already-seen set."""
        if intern:
            cached = cls._intern_table.get(data)
            if cached is not None:
                return cached
        decoded = cls._decode(data)
        return cls.intern(decoded) if intern else decoded

    @classmethod
    def _decode(cls, data):
        fields = {}
        unknown = []
        offset = 0
        while offset < len(data):
            flags, attr_type, value, offset = _decode_attr(data, offset)
            if attr_type == TYPE_ORIGIN:
                if len(value) != 1 or value[0] > 2:
                    raise BgpError(
                        NotificationCode.UPDATE_MESSAGE_ERROR,
                        UpdateSubcode.INVALID_ORIGIN_ATTRIBUTE,
                    )
                fields["origin"] = Origin(value[0])
            elif attr_type == TYPE_AS_PATH:
                fields["as_path"] = AsPath.from_wire(value)
            elif attr_type == TYPE_NEXT_HOP:
                if len(value) != 4:
                    raise BgpError(
                        NotificationCode.UPDATE_MESSAGE_ERROR,
                        UpdateSubcode.INVALID_NEXT_HOP_ATTRIBUTE,
                    )
                fields["next_hop"] = int_to_ipv4(int.from_bytes(value, "big"))
            elif attr_type == TYPE_MED:
                fields["med"] = int.from_bytes(value, "big")
            elif attr_type == TYPE_LOCAL_PREF:
                fields["local_pref"] = int.from_bytes(value, "big")
            elif attr_type == TYPE_ATOMIC_AGGREGATE:
                fields["atomic_aggregate"] = True
            elif attr_type == TYPE_AGGREGATOR:
                asn = int.from_bytes(value[:4], "big")
                fields["aggregator"] = (asn, int_to_ipv4(int.from_bytes(value[4:8], "big")))
            elif attr_type == TYPE_COMMUNITIES:
                fields["communities"] = tuple(
                    int.from_bytes(value[i : i + 4], "big")
                    for i in range(0, len(value), 4)
                )
            elif flags & FLAG_OPTIONAL and flags & FLAG_TRANSITIVE:
                unknown.append((flags, attr_type, value))
            elif flags & FLAG_OPTIONAL:
                # optional non-transitive: normally dropped when unknown,
                # but the multiprotocol attributes (RFC 4760) are known to
                # this implementation and carried through the same slot
                if attr_type in (TYPE_MP_REACH_NLRI, TYPE_MP_UNREACH_NLRI):
                    unknown.append((flags, attr_type, value))
            else:
                raise BgpError(
                    NotificationCode.UPDATE_MESSAGE_ERROR,
                    UpdateSubcode.UNRECOGNIZED_WELLKNOWN_ATTRIBUTE,
                    data=bytes([attr_type]),
                )
        fields["unknown"] = tuple(unknown)
        return cls(**fields)

    def __eq__(self, other):
        if self is other:
            return True
        return isinstance(other, PathAttributes) and self.key() == other.key()

    def __hash__(self):
        value = self._hash
        if value is None:
            value = self._hash = hash(self.key())
        return value

    def __repr__(self):
        return (
            f"<PathAttributes path={self.as_path.as_list()} nh={self.next_hop}"
            f" lp={self.local_pref} med={self.med}>"
        )


def _encode_attr(flags, attr_type, value):
    if len(value) > 255:
        flags |= FLAG_EXTENDED
        header = bytes([flags, attr_type]) + len(value).to_bytes(2, "big")
    else:
        header = bytes([flags, attr_type, len(value)])
    return header + value


def _decode_attr(data, offset):
    if offset + 3 > len(data):
        raise BgpError(
            NotificationCode.UPDATE_MESSAGE_ERROR,
            UpdateSubcode.ATTRIBUTE_LENGTH_ERROR,
        )
    flags = data[offset]
    attr_type = data[offset + 1]
    if flags & FLAG_EXTENDED:
        if offset + 4 > len(data):
            raise BgpError(
                NotificationCode.UPDATE_MESSAGE_ERROR,
                UpdateSubcode.ATTRIBUTE_LENGTH_ERROR,
            )
        length = int.from_bytes(data[offset + 2 : offset + 4], "big")
        offset += 4
    else:
        length = data[offset + 2]
        offset += 3
    end = offset + length
    if end > len(data):
        raise BgpError(
            NotificationCode.UPDATE_MESSAGE_ERROR,
            UpdateSubcode.ATTRIBUTE_LENGTH_ERROR,
        )
    return flags, attr_type, bytes(data[offset:end]), end
