"""Update packing (§4.2, citing Zhang & Bartell).

"Because the BGP update message for many peers will be largely the same
except for the header information, it is possible to speed up the process
by copying the messages.  This is referred to as 'update packing'."

Two distinct economies fall out of packing:

1. **Per-message packing** — routes sharing a ``PathAttributes`` set are
   grouped into as few UPDATE messages as fit in 4096 bytes
   (:func:`pack_routes`).
2. **Cross-peer copying** — a packed UPDATE built for one peer is reused
   for other peers whose export policy produced identical attributes; only
   the "header information" is rewritten, at
   ``PACKED_COPY_COST_PER_UPDATE`` instead of full generation cost.  GoBGP
   famously lacks this, which is what Fig. 6(c) shows.
"""

from repro.bgp.messages import HEADER_SIZE, MAX_MESSAGE_SIZE, UpdateMessage


def pack_routes(routes, max_message_size=MAX_MESSAGE_SIZE):
    """Group (prefix, attributes) pairs into minimal UPDATE messages.

    Routes with equal attributes share messages; each message stays within
    ``max_message_size`` on the wire.  Returns a list of
    :class:`UpdateMessage`.
    """
    groups = {}
    order = []
    for prefix, attributes in routes:
        key = attributes.key()
        if key not in groups:
            groups[key] = (attributes, [])
            order.append(key)
        groups[key][1].append(prefix)

    messages = []
    for key in order:
        attributes, prefixes = groups[key]
        attrs_wire_len = len(attributes.to_wire())
        budget = max_message_size - HEADER_SIZE - 4 - attrs_wire_len
        batch = []
        used = 0
        for prefix in prefixes:
            size = prefix.wire_size
            if batch and used + size > budget:
                messages.append(UpdateMessage(attributes=attributes, nlri=batch))
                batch = []
                used = 0
            batch.append(prefix)
            used += size
        if batch:
            messages.append(UpdateMessage(attributes=attributes, nlri=batch))
    return messages


def pack_withdrawals(prefixes, max_message_size=MAX_MESSAGE_SIZE):
    """Group withdrawn prefixes into minimal UPDATE messages."""
    messages = []
    budget = max_message_size - HEADER_SIZE - 4
    batch = []
    used = 0
    for prefix in prefixes:
        size = prefix.wire_size
        if batch and used + size > budget:
            messages.append(UpdateMessage(withdrawn=batch))
            batch = []
            used = 0
        batch.append(prefix)
        used += size
    if batch:
        messages.append(UpdateMessage(withdrawn=batch))
    return messages
