"""A from-scratch BGP-4 implementation (RFC 4271).

This is the "base BGP program" TENSOR builds on: wire-format message
encoding/decoding for all five message types, path attributes, the
session FSM, Adj-RIB-In / Loc-RIB / Adj-RIB-Out, the decision process,
routing policy, VRFs (§3.1.2 uses one VRF per peering AS), and update
packing (§4.2).  BGP messages stream as real bytes over the simulated TCP,
so the cumulative byte counts that TENSOR's ACK-number inference relies on
are genuine.
"""

from repro.bgp.prefixes import Prefix, PrefixTrie
from repro.bgp.radix import DictPrefixStore, RadixTrie
from repro.bgp.aggregation import ExportAggregator
from repro.bgp.attributes import (
    AsPath,
    Origin,
    PathAttributes,
)
from repro.bgp.messages import (
    BGP_PORT,
    KeepaliveMessage,
    MessageDecoder,
    NotificationMessage,
    OpenMessage,
    RouteRefreshMessage,
    UpdateMessage,
)
from repro.bgp.errors import BgpError, NotificationCode
from repro.bgp.rib import AdjRibIn, AdjRibOut, LocRib, Route
from repro.bgp.decision import best_path
from repro.bgp.policy import PolicyAction, RouteMap, RouteMapEntry
from repro.bgp.vrf import Vrf
from repro.bgp.packing import pack_routes
from repro.bgp.peer import PeerConfig, PeerSession
from repro.bgp.speaker import BgpSpeaker, SpeakerConfig

__all__ = [
    "Prefix",
    "PrefixTrie",
    "RadixTrie",
    "DictPrefixStore",
    "ExportAggregator",
    "AsPath",
    "Origin",
    "PathAttributes",
    "BGP_PORT",
    "MessageDecoder",
    "OpenMessage",
    "UpdateMessage",
    "NotificationMessage",
    "KeepaliveMessage",
    "RouteRefreshMessage",
    "BgpError",
    "NotificationCode",
    "Route",
    "AdjRibIn",
    "LocRib",
    "AdjRibOut",
    "best_path",
    "RouteMap",
    "RouteMapEntry",
    "PolicyAction",
    "Vrf",
    "pack_routes",
    "PeerConfig",
    "PeerSession",
    "BgpSpeaker",
    "SpeakerConfig",
]
