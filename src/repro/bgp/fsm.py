"""BGP session FSM states and legal transitions (RFC 4271 §8).

We implement the operationally meaningful subset: IDLE -> CONNECT ->
OPEN_SENT -> OPEN_CONFIRM -> ESTABLISHED, with failure edges back to
IDLE.  (The RFC's ACTIVE state models the passive-side connect race; our
sessions are configured unambiguously active or passive, so the race
cannot occur and ACTIVE collapses into CONNECT.)
"""

import enum


class SessionState(enum.Enum):
    IDLE = "Idle"
    CONNECT = "Connect"
    OPEN_SENT = "OpenSent"
    OPEN_CONFIRM = "OpenConfirm"
    ESTABLISHED = "Established"


_LEGAL_TRANSITIONS = {
    SessionState.IDLE: {SessionState.CONNECT},
    SessionState.CONNECT: {SessionState.OPEN_SENT, SessionState.IDLE},
    SessionState.OPEN_SENT: {SessionState.OPEN_CONFIRM, SessionState.IDLE},
    SessionState.OPEN_CONFIRM: {SessionState.ESTABLISHED, SessionState.IDLE},
    SessionState.ESTABLISHED: {SessionState.IDLE},
}


class FsmViolation(Exception):
    """An illegal state transition was attempted — a programming error."""


def transition(current, target):
    """Validate and return the new state."""
    if target is current:
        return current
    if target not in _LEGAL_TRANSITIONS[current]:
        raise FsmViolation(f"illegal BGP FSM transition {current.value} -> {target.value}")
    return target
