"""BGP message wire formats (RFC 4271 §4) and the stream decoder.

All five message types are encoded to and decoded from real bytes.  The
:class:`MessageDecoder` consumes a TCP byte stream incrementally and
reports the *byte count consumed per message*, which is exactly what
TENSOR's main thread needs to infer ACK numbers ("adding the initial SEQ
number and the cumulative size of all the previously received messages",
§3.1.2).
"""

from repro.bgp.attributes import PathAttributes
from repro.bgp.capabilities import Capabilities
from repro.bgp.errors import BgpError, HeaderSubcode, NotificationCode
from repro.bgp.prefixes import Prefix

BGP_PORT = 179
MARKER = b"\xff" * 16
HEADER_SIZE = 19
MAX_MESSAGE_SIZE = 4096

TYPE_OPEN = 1
TYPE_UPDATE = 2
TYPE_NOTIFICATION = 3
TYPE_KEEPALIVE = 4
TYPE_ROUTE_REFRESH = 5

#: RFC 4893: 2-octet AS field placeholder when the real ASN needs 4 octets.
AS_TRANS = 23456


def _header(msg_type, body_len):
    return MARKER + (HEADER_SIZE + body_len).to_bytes(2, "big") + bytes([msg_type])


class OpenMessage:
    """OPEN: version, ASN, hold time, BGP identifier, capabilities."""

    msg_type = TYPE_OPEN

    def __init__(self, asn, hold_time, bgp_id, capabilities=None, version=4):
        self.version = version
        self.asn = asn
        self.hold_time = hold_time
        self.bgp_id = bgp_id  # 32-bit int
        self.capabilities = capabilities or Capabilities(four_octet_as=asn)

    def to_wire(self):
        params = self.capabilities.to_wire()
        wire_asn = self.asn if self.asn <= 0xFFFF else AS_TRANS
        body = (
            bytes([self.version])
            + wire_asn.to_bytes(2, "big")
            + self.hold_time.to_bytes(2, "big")
            + self.bgp_id.to_bytes(4, "big")
            + bytes([len(params)])
            + params
        )
        return _header(self.msg_type, len(body)) + body

    @classmethod
    def from_body(cls, body):
        if len(body) < 10:
            raise BgpError(NotificationCode.OPEN_MESSAGE_ERROR, message="short OPEN")
        version = body[0]
        asn = int.from_bytes(body[1:3], "big")
        hold_time = int.from_bytes(body[3:5], "big")
        bgp_id = int.from_bytes(body[5:9], "big")
        params_len = body[9]
        capabilities = Capabilities.from_wire(bytes(body[10 : 10 + params_len]))
        if capabilities.four_octet_as is not None:
            asn = capabilities.four_octet_as
        return cls(asn, hold_time, bgp_id, capabilities, version)

    def __eq__(self, other):
        return isinstance(other, OpenMessage) and (
            self.version,
            self.asn,
            self.hold_time,
            self.bgp_id,
            self.capabilities,
        ) == (other.version, other.asn, other.hold_time, other.bgp_id, other.capabilities)

    def __repr__(self):
        return f"<Open as={self.asn} hold={self.hold_time} id={self.bgp_id}>"


class UpdateMessage:
    """UPDATE: withdrawn prefixes, path attributes, NLRI.

    Treated as immutable after construction: the wire encoding is
    memoized so the pack-once fan-out can hand one message object to
    hundreds of peers and only serialize it the first time.
    """

    msg_type = TYPE_UPDATE

    __slots__ = ("withdrawn", "attributes", "nlri", "_wire", "_pack_key")

    def __init__(self, withdrawn=(), attributes=None, nlri=()):
        self.withdrawn = tuple(withdrawn)
        self.attributes = attributes  # PathAttributes or None (pure withdraw)
        self.nlri = tuple(nlri)
        self._wire = None
        self._pack_key = None  # speaker's cross-peer generation-cache key

    def to_wire(self):
        wire = self._wire
        if wire is None:
            wire = self._wire = self._encode()
        return wire

    def _encode(self):
        withdrawn_wire = b"".join(p.to_wire() for p in self.withdrawn)
        attrs_wire = self.attributes.to_wire() if self.attributes else b""
        nlri_wire = b"".join(p.to_wire() for p in self.nlri)
        body = (
            len(withdrawn_wire).to_bytes(2, "big")
            + withdrawn_wire
            + len(attrs_wire).to_bytes(2, "big")
            + attrs_wire
            + nlri_wire
        )
        wire = _header(self.msg_type, len(body)) + body
        if len(wire) > MAX_MESSAGE_SIZE:
            raise BgpError(
                NotificationCode.MESSAGE_HEADER_ERROR,
                HeaderSubcode.BAD_MESSAGE_LENGTH,
                message=f"UPDATE too large ({len(wire)}B); pack fewer routes",
            )
        return wire

    @classmethod
    def from_body(cls, body):
        withdrawn_len = int.from_bytes(body[0:2], "big")
        offset = 2
        withdrawn = []
        end = offset + withdrawn_len
        while offset < end:
            prefix, offset = Prefix.from_wire(body, offset)
            withdrawn.append(prefix)
        attrs_len = int.from_bytes(body[offset : offset + 2], "big")
        offset += 2
        attributes = None
        if attrs_len:
            attributes = PathAttributes.from_wire(bytes(body[offset : offset + attrs_len]))
            offset += attrs_len
        nlri = []
        while offset < len(body):
            prefix, offset = Prefix.from_wire(body, offset)
            nlri.append(prefix)
        return cls(withdrawn, attributes, nlri)

    def route_count(self):
        """Routing updates carried: announcements plus withdrawals."""
        return len(self.nlri) + len(self.withdrawn)

    def __eq__(self, other):
        return isinstance(other, UpdateMessage) and (
            self.withdrawn,
            self.attributes,
            self.nlri,
        ) == (other.withdrawn, other.attributes, other.nlri)

    def __repr__(self):
        return f"<Update +{len(self.nlri)} -{len(self.withdrawn)}>"


class NotificationMessage:
    """NOTIFICATION: fatal error report; the sender closes the session."""

    msg_type = TYPE_NOTIFICATION

    def __init__(self, code, subcode=0, data=b""):
        self.code = code
        self.subcode = subcode
        self.data = data

    def to_wire(self):
        body = bytes([int(self.code), int(self.subcode)]) + self.data
        return _header(self.msg_type, len(body)) + body

    @classmethod
    def from_body(cls, body):
        if len(body) < 2:
            raise BgpError(NotificationCode.MESSAGE_HEADER_ERROR, message="short NOTIFICATION")
        return cls(NotificationCode(body[0]), body[1], bytes(body[2:]))

    def __eq__(self, other):
        return isinstance(other, NotificationMessage) and (
            self.code,
            self.subcode,
            self.data,
        ) == (other.code, other.subcode, other.data)

    def __repr__(self):
        return f"<Notification {int(self.code)}/{self.subcode}>"


class KeepaliveMessage:
    """KEEPALIVE: header only (the wire image is a shared constant)."""

    msg_type = TYPE_KEEPALIVE

    __slots__ = ()

    _WIRE = None  # filled in below, after _header is usable

    def to_wire(self):
        return KeepaliveMessage._WIRE

    def __eq__(self, other):
        return isinstance(other, KeepaliveMessage)

    def __repr__(self):
        return "<Keepalive>"


KeepaliveMessage._WIRE = _header(TYPE_KEEPALIVE, 0)


class RouteRefreshMessage:
    """ROUTE-REFRESH (RFC 2918): ask the peer to re-advertise an AFI/SAFI."""

    msg_type = TYPE_ROUTE_REFRESH

    def __init__(self, afi=1, safi=1):
        self.afi = afi
        self.safi = safi

    def to_wire(self):
        body = self.afi.to_bytes(2, "big") + b"\x00" + bytes([self.safi])
        return _header(self.msg_type, len(body)) + body

    @classmethod
    def from_body(cls, body):
        if len(body) != 4:
            raise BgpError(NotificationCode.MESSAGE_HEADER_ERROR, message="bad ROUTE-REFRESH")
        return cls(int.from_bytes(body[0:2], "big"), body[3])

    def __eq__(self, other):
        return isinstance(other, RouteRefreshMessage) and (self.afi, self.safi) == (
            other.afi,
            other.safi,
        )

    def __repr__(self):
        return f"<RouteRefresh {self.afi}/{self.safi}>"


_BODY_DECODERS = {
    TYPE_OPEN: OpenMessage.from_body,
    TYPE_UPDATE: UpdateMessage.from_body,
    TYPE_NOTIFICATION: NotificationMessage.from_body,
    TYPE_KEEPALIVE: lambda body: KeepaliveMessage(),
    TYPE_ROUTE_REFRESH: RouteRefreshMessage.from_body,
}


def decode_message(wire):
    """Decode exactly one whole message from ``wire`` bytes."""
    messages = list(MessageDecoder().feed(wire))
    if len(messages) != 1:
        raise BgpError(
            NotificationCode.MESSAGE_HEADER_ERROR,
            HeaderSubcode.BAD_MESSAGE_LENGTH,
            message=f"expected 1 message, decoded {len(messages)}",
        )
    return messages[0][0]


class MessageDecoder:
    """Incremental decoder over a TCP byte stream.

    ``feed(data)`` yields ``(message, wire_size)`` pairs.  ``wire_size`` is
    the exact on-stream byte count of each message — the quantity TENSOR
    accumulates to infer the TCP ACK number for each message boundary.
    Partial trailing bytes are buffered until the next feed.
    """

    def __init__(self):
        self._buffer = bytearray()
        self.messages_decoded = 0
        self.bytes_consumed = 0

    @property
    def pending_bytes(self):
        """Bytes buffered that do not yet form a complete message."""
        return len(self._buffer)

    def pending_data(self):
        """The buffered partial-message bytes (TENSOR replicates these)."""
        return bytes(self._buffer)

    def prime(self, data):
        """Preload buffered bytes (recovery restores the partial tail).

        The bytes must not complete a message (they were pending when
        snapshotted); priming with completable bytes is a logic error.
        """
        leftovers = list(self.feed(data))
        if leftovers:
            raise ValueError("primed bytes completed a message")

    def feed(self, data):
        self._buffer.extend(data)
        while True:
            message, size = self._try_decode_one()
            if message is None:
                return
            self.messages_decoded += 1
            self.bytes_consumed += size
            yield message, size

    def _try_decode_one(self):
        buf = self._buffer
        if len(buf) < HEADER_SIZE:
            return None, 0
        if bytes(buf[:16]) != MARKER:
            raise BgpError(
                NotificationCode.MESSAGE_HEADER_ERROR,
                HeaderSubcode.CONNECTION_NOT_SYNCHRONIZED,
                message="bad marker",
            )
        length = int.from_bytes(buf[16:18], "big")
        if not HEADER_SIZE <= length <= MAX_MESSAGE_SIZE:
            raise BgpError(
                NotificationCode.MESSAGE_HEADER_ERROR,
                HeaderSubcode.BAD_MESSAGE_LENGTH,
                data=buf[16:18],
            )
        if len(buf) < length:
            return None, 0
        msg_type = buf[18]
        decoder = _BODY_DECODERS.get(msg_type)
        if decoder is None:
            raise BgpError(
                NotificationCode.MESSAGE_HEADER_ERROR,
                HeaderSubcode.BAD_MESSAGE_TYPE,
                data=bytes([msg_type]),
            )
        body = bytes(buf[HEADER_SIZE:length])
        del buf[:length]
        return decoder(body), length
