"""The BGP decision process (RFC 4271 §9.1 tie-breaking).

Deterministic and order-independent: given the same candidate set in any
order, the same route wins (property-tested in
tests/test_bgp_decision.py).
"""

DEFAULT_LOCAL_PREF = 100


def _peer_tiebreak_key(route):
    """Final deterministic tie-break: lowest peer identifier."""
    return str(route.peer_id)


def best_path(candidates):
    """Select the best route from ``candidates`` (non-empty list)."""
    if not candidates:
        return None
    best = candidates[0]
    for challenger in candidates[1:]:
        if _prefer(challenger, best):
            best = challenger
    return best


def prefer(challenger, incumbent):
    """True when ``challenger`` beats ``incumbent``.

    Public entry point for the Loc-RIB's incremental re-selection: a
    newly offered candidate is appended to the prefix's candidate order,
    so comparing it against the current best is exactly the last step of
    the :func:`best_path` linear scan.
    """
    return _prefer(challenger, incumbent)


def _prefer(a, b):
    """True when route ``a`` beats route ``b``."""
    # 1. Highest LOCAL_PREF.
    lp_a = a.attributes.local_pref if a.attributes.local_pref is not None else DEFAULT_LOCAL_PREF
    lp_b = b.attributes.local_pref if b.attributes.local_pref is not None else DEFAULT_LOCAL_PREF
    if lp_a != lp_b:
        return lp_a > lp_b
    # 2. Shortest AS_PATH.
    len_a = a.attributes.as_path.path_length()
    len_b = b.attributes.as_path.path_length()
    if len_a != len_b:
        return len_a < len_b
    # 3. Lowest ORIGIN (IGP < EGP < INCOMPLETE).
    if a.attributes.origin != b.attributes.origin:
        return a.attributes.origin < b.attributes.origin
    # 4. Lowest MED, compared only between routes from the same first AS.
    first_a = a.attributes.as_path.first_as()
    first_b = b.attributes.as_path.first_as()
    if first_a is not None and first_a == first_b:
        med_a = a.attributes.med if a.attributes.med is not None else 0
        med_b = b.attributes.med if b.attributes.med is not None else 0
        if med_a != med_b:
            return med_a < med_b
    # 5. eBGP over iBGP.
    rank = {"ebgp": 0, "local": 0, "ibgp": 1}
    if rank[a.source_kind] != rank[b.source_kind]:
        return rank[a.source_kind] < rank[b.source_kind]
    # 6. Deterministic peer tie-break (stands in for router-ID comparison;
    #    peer identifiers embed the peer address).
    return _peer_tiebreak_key(a) < _peer_tiebreak_key(b)
