"""The BGP decision process (RFC 4271 §9.1 tie-breaking).

Deterministic and order-independent: given the same candidate set in any
order, the same route wins (property-tested in
tests/test_bgp_rib_decision.py).
"""

DEFAULT_LOCAL_PREF = 100


def _peer_tiebreak_key(route):
    """Final deterministic tie-break: lowest peer identifier."""
    return str(route.peer_id)


def med_group(route):
    """MED comparison group: the neighboring (first) AS.

    RFC 4271 §9.1.2.2 c) compares MED only between routes learned from
    the same neighboring AS; ``None`` (empty AS path, locally
    originated) never participates in a MED comparison.
    """
    return route.attributes.as_path.first_as()


def best_path(candidates):
    """Select the best route from ``candidates`` (non-empty list).

    Pairwise preference is *not transitive* once MED is in play — MED
    compares only inside a neighboring-AS group, so a route can lose to
    a same-group rival on MED while beating the cross-group incumbent
    on a later step — and a bare linear scan over such a comparator is
    order-dependent.  Selection is therefore deterministic-MED: the
    best route of each neighboring-AS group is chosen first (MED
    applies inside a group, where :func:`_prefer` is a total order),
    then the group winners are compared with the MED step inert (it
    never matches across groups, so that pass is a total order too).
    The result is independent of candidate order.
    """
    if not candidates:
        return None
    groups = {}
    finalists = []
    for route in candidates:
        group = med_group(route)
        if group is None:
            finalists.append(route)
        else:
            groups.setdefault(group, []).append(route)
    for members in groups.values():
        finalists.append(_scan(members))
    return _scan(finalists)


def _scan(candidates):
    best = candidates[0]
    for challenger in candidates[1:]:
        if _prefer(challenger, best):
            best = challenger
    return best


def prefer(challenger, incumbent):
    """True when ``challenger`` beats ``incumbent`` pairwise.

    Public entry point for the Loc-RIB's incremental re-selection.
    Only decisive when the challenger shares no MED group with another
    candidate for the prefix — the Loc-RIB falls back to a full
    :func:`best_path` re-scan otherwise, because a same-group rival can
    displace a group winner without beating the incumbent pairwise.
    """
    return _prefer(challenger, incumbent)


def _prefer(a, b):
    """True when route ``a`` beats route ``b``."""
    # 1. Highest LOCAL_PREF.
    lp_a = a.attributes.local_pref if a.attributes.local_pref is not None else DEFAULT_LOCAL_PREF
    lp_b = b.attributes.local_pref if b.attributes.local_pref is not None else DEFAULT_LOCAL_PREF
    if lp_a != lp_b:
        return lp_a > lp_b
    # 2. Shortest AS_PATH.
    len_a = a.attributes.as_path.path_length()
    len_b = b.attributes.as_path.path_length()
    if len_a != len_b:
        return len_a < len_b
    # 3. Lowest ORIGIN (IGP < EGP < INCOMPLETE).
    if a.attributes.origin != b.attributes.origin:
        return a.attributes.origin < b.attributes.origin
    # 4. Lowest MED, compared only between routes from the same first AS.
    first_a = a.attributes.as_path.first_as()
    first_b = b.attributes.as_path.first_as()
    if first_a is not None and first_a == first_b:
        med_a = a.attributes.med if a.attributes.med is not None else 0
        med_b = b.attributes.med if b.attributes.med is not None else 0
        if med_a != med_b:
            return med_a < med_b
    # 5. eBGP over iBGP.
    rank = {"ebgp": 0, "local": 0, "ibgp": 1}
    if rank[a.source_kind] != rank[b.source_kind]:
        return rank[a.source_kind] < rank[b.source_kind]
    # 6. Deterministic peer tie-break (stands in for router-ID comparison;
    #    peer identifiers embed the peer address).
    return _peer_tiebreak_key(a) < _peer_tiebreak_key(b)
