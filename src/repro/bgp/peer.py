"""Peer configuration and the per-peer session runtime.

A :class:`PeerSession` owns one TCP connection, the stream decoder, the
hold/keepalive timers and the per-peer RIBs.  All message processing is
dispatched through the owning speaker's CPU model, and all sends go
through speaker hooks so the TENSOR subclass can interpose replication.
"""

from repro.bgp import fsm
from repro.bgp.errors import NotificationCode, OpenSubcode
from repro.bgp.messages import (
    BGP_PORT,
    KeepaliveMessage,
    MessageDecoder,
    NotificationMessage,
    OpenMessage,
    RouteRefreshMessage,
    UpdateMessage,
)
from repro.bgp.policy import PERMIT_ALL
from repro.bgp.rib import AdjRibIn, AdjRibOut, Route
from repro.sim.process import Timer

CONNECT_RETRY_INTERVAL = 5.0


class PeerConfig:
    """Static configuration for one BGP neighbour."""

    def __init__(
        self,
        remote_addr,
        remote_as,
        vrf_name="default",
        mode="active",
        remote_port=BGP_PORT,
        hold_time=90,
        keepalive_interval=30,
        import_policy=None,
        export_policy=None,
        graceful_restart_time=None,
        mrai=None,
    ):
        if mode not in ("active", "passive"):
            raise ValueError(f"bad session mode {mode!r}")
        self.remote_addr = remote_addr
        self.remote_as = remote_as
        self.vrf_name = vrf_name
        self.mode = mode
        self.remote_port = remote_port
        self.hold_time = hold_time
        self.keepalive_interval = keepalive_interval
        self.import_policy = import_policy or PERMIT_ALL
        self.export_policy = export_policy or PERMIT_ALL
        self.graceful_restart_time = graceful_restart_time
        #: Per-peer MRAI override, effective when the owning speaker runs
        #: in a per-peer mode (``SpeakerConfig.mrai_mode != "per_speaker"``);
        #: ``None`` inherits the speaker-level interval.
        self.mrai = mrai

    @property
    def peer_id(self):
        return f"{self.vrf_name}:{self.remote_addr}"


class PeerSession:
    """Runtime state of one BGP neighbour relationship."""

    def __init__(self, speaker, config):
        self.speaker = speaker
        self.config = config
        self.engine = speaker.engine
        self.state = fsm.SessionState.IDLE
        self.conn = None
        self.decoder = MessageDecoder()
        self.adj_rib_in = AdjRibIn(config.peer_id)
        self.adj_rib_out = AdjRibOut(config.peer_id)
        self.negotiated_hold_time = config.hold_time
        self.peer_open = None

        self.hold_timer = Timer(self.engine, self._on_hold_expired, "bgp-hold")
        self.keepalive_timer = Timer(self.engine, self._on_keepalive_due, "bgp-ka")
        self.retry_timer = Timer(self.engine, self._retry_connect, "bgp-retry")
        self.gr_timer = Timer(self.engine, self._on_gr_expired, "bgp-gr")

        # Stream accounting for TENSOR's ACK inference.
        self.initial_seq = None  # our iss (from TCP repair at connect)
        self.initial_ack = None  # peer's iss + 1
        self.cumulative_received = 0  # whole-message bytes consumed
        self.cumulative_sent = 0

        # Tracing: when the bytes of the message currently being decoded
        # started arriving (spans TCP segment reassembly), and the arrival
        # instant of the message most recently handed to dispatch.
        self._trace_rx_since = None
        self.last_rx_began = None

        # Statistics
        self.messages_received = 0
        self.messages_sent = 0
        self.updates_received = 0
        self.updates_sent = 0
        self.routes_learned = 0
        self.established_at = None
        self.last_down_at = None
        self.session_drops = 0

    # ------------------------------------------------------------------
    # identity / properties
    # ------------------------------------------------------------------

    @property
    def peer_id(self):
        return self.config.peer_id

    @property
    def vrf(self):
        return self.speaker.vrfs[self.config.vrf_name]

    @property
    def source_kind(self):
        return "ibgp" if self.config.remote_as == self.speaker.config.local_as else "ebgp"

    @property
    def established(self):
        return self.state is fsm.SessionState.ESTABLISHED

    def _set_state(self, target):
        self.state = fsm.transition(self.state, target)

    # ------------------------------------------------------------------
    # bring-up
    # ------------------------------------------------------------------

    def start(self):
        if self.config.mode == "active":
            self._connect()
        # passive sessions wait for the speaker's listener to attach a conn

    def _connect(self):
        self._set_state(fsm.SessionState.CONNECT)
        self.conn = self.speaker.stack.connect(
            self.config.remote_addr,
            self.config.remote_port,
            on_established=self._on_tcp_established,
        )
        self._wire_conn_callbacks()

    def _retry_connect(self):
        if self.state is fsm.SessionState.IDLE and self.speaker.running:
            self._connect()

    def attach_connection(self, conn):
        """Passive side: the listener accepted a connection from our peer."""
        self._set_state(fsm.SessionState.CONNECT)
        self.conn = conn
        self._wire_conn_callbacks()
        self._on_tcp_established(conn)

    def _wire_conn_callbacks(self):
        self.conn.on_data = self._on_bytes
        self.conn.on_reset = self._on_tcp_reset
        self.conn.on_close = self._on_tcp_closed

    def _on_tcp_established(self, conn):
        # TCP_REPAIR at connect time: learn initial SEQ/ACK numbers
        # ("we use the TCP_REPAIR option to obtain the initial SEQ and ACK
        #  numbers along with other necessary information", §3.1.2).
        self.initial_seq = conn.iss + 1
        self.initial_ack = conn.irs + 1
        self.decoder = MessageDecoder()
        self.cumulative_received = 0
        self.cumulative_sent = 0
        self.speaker.tcp_established(self)
        self._set_state(fsm.SessionState.OPEN_SENT)
        self.send_message(
            OpenMessage(
                self.speaker.config.local_as,
                self.config.hold_time,
                self.speaker.config.router_id_int,
                self.speaker.make_capabilities(self.config),
            )
        )

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------

    def _on_bytes(self, _conn, data):
        if self.hold_timer.armed:
            self.hold_timer.restart(self.negotiated_hold_time)
        tracing = self.engine._trace_hook is not None
        if tracing and self._trace_rx_since is None:
            # First bytes of a fresh message (multi-segment messages keep
            # the mark from the segment that started them).
            self._trace_rx_since = self.engine.now
        for message, size in self.decoder.feed(data):
            self.cumulative_received += size
            self.messages_received += 1
            if tracing:
                self.last_rx_began = self._trace_rx_since
                # any further message in this batch arrived with this segment
                self._trace_rx_since = self.engine.now
            self.speaker.dispatch_received(self, message, size)
        if tracing and self.decoder.pending_bytes == 0:
            self._trace_rx_since = None
        self.speaker.stream_progress(self)

    @property
    def inferred_ack_number(self):
        """The TCP ACK number covering every whole message received.

        initial peer SEQ + 1 (SYN) + cumulative whole-message bytes —
        the paper's inference, computed without reading TCP headers.
        """
        if self.initial_ack is None:
            return None
        return self.initial_ack + self.cumulative_received

    def handle_message(self, message, size):
        """Apply one decoded message (runs after the CPU-cost charge)."""
        if isinstance(message, OpenMessage):
            self._handle_open(message)
        elif isinstance(message, KeepaliveMessage):
            self._handle_keepalive()
        elif isinstance(message, UpdateMessage):
            self._handle_update(message)
        elif isinstance(message, NotificationMessage):
            self.speaker.log(f"{self.peer_id}: NOTIFICATION {message!r}")
            self._drop_session(notify_peer=False)
        elif isinstance(message, RouteRefreshMessage):
            self.speaker.readvertise(self)

    def _handle_open(self, message):
        if message.asn != self.config.remote_as:
            self.send_message(
                NotificationMessage(
                    NotificationCode.OPEN_MESSAGE_ERROR, OpenSubcode.BAD_PEER_AS
                )
            )
            self._drop_session(notify_peer=False)
            return
        self.peer_open = message
        self.negotiated_hold_time = min(self.config.hold_time, message.hold_time)
        self._set_state(fsm.SessionState.OPEN_CONFIRM)
        self.send_message(KeepaliveMessage())

    def _handle_keepalive(self):
        if self.state is fsm.SessionState.OPEN_CONFIRM:
            self._set_state(fsm.SessionState.ESTABLISHED)
            self.established_at = self.engine.now
            self.gr_timer.stop()
            if self.negotiated_hold_time:
                self.hold_timer.start(self.negotiated_hold_time)
                self.keepalive_timer.start(self._keepalive_interval())
            self.speaker.session_established(self)

    def _handle_update(self, message):
        if not self.established:
            return
        vrf = self.vrf
        changes = []
        for prefix in message.withdrawn:
            removed = self.adj_rib_in.withdraw(prefix)
            if removed is not None:
                old, new = vrf.loc_rib.retract(prefix, self.peer_id)
                changes.append((prefix, old, new))
        if message.nlri:
            self.updates_received += len(message.nlri)
            attributes = message.attributes
            # eBGP loop detection: our AS in the path means reject.  The
            # check is scoped to eBGP sessions per RFC 4271 — iBGP paths
            # legitimately circulate inside the AS.
            if (self.source_kind == "ebgp"
                    and attributes.as_path.contains(self.speaker.config.local_as)):
                return
            for prefix in message.nlri:
                imported = self.config.import_policy.evaluate(prefix, attributes)
                if imported is None:
                    continue
                route = Route(prefix, imported, self.peer_id, self.source_kind)
                self.adj_rib_in.update(route)
                self.routes_learned += 1
                old, new = vrf.loc_rib.offer(route)
                changes.append((prefix, old, new))
        self.updates_received += len(message.withdrawn)
        changes.extend(self._handle_mp_routes(message, vrf))
        if changes:
            self.speaker.best_paths_changed(self, changes)

    def _handle_mp_routes(self, message, vrf):
        """IPv6 reachability carried in MP_REACH/MP_UNREACH (RFC 4760)."""
        if message.attributes is None or not message.attributes.unknown:
            return []
        from repro.bgp.multiprotocol import mp_routes_of

        reach, unreach = mp_routes_of(message.attributes)
        changes = []
        if unreach is not None:
            for prefix in unreach.withdrawn:
                removed = self.adj_rib_in.withdraw(prefix)
                if removed is not None:
                    old, new = vrf.loc_rib.retract(prefix, self.peer_id)
                    changes.append((prefix, old, new))
            self.updates_received += len(unreach.withdrawn)
        if reach is not None:
            attributes = message.attributes
            if not (self.source_kind == "ebgp"
                    and attributes.as_path.contains(self.speaker.config.local_as)):
                for prefix in reach.nlri:
                    imported = self.config.import_policy.evaluate(prefix, attributes)
                    if imported is None:
                        continue
                    route = Route(prefix, imported, self.peer_id, self.source_kind)
                    self.adj_rib_in.update(route)
                    self.routes_learned += 1
                    old, new = vrf.loc_rib.offer(route)
                    changes.append((prefix, old, new))
                self.updates_received += len(reach.nlri)
        return changes

    # ------------------------------------------------------------------
    # send path
    # ------------------------------------------------------------------

    def send_message(self, message):
        """Serialize and send through the speaker's (hookable) send path."""
        self.speaker.dispatch_send(self, message)

    def transmit_wire(self, message, wire):
        """The final leg: put bytes on the TCP connection."""
        if self.conn is None or not self.conn.state.can_send_data():
            return
        if isinstance(message, OpenMessage) and self.state is fsm.SessionState.CONNECT:
            self._set_state(fsm.SessionState.OPEN_SENT)
        self.cumulative_sent += len(wire)
        self.messages_sent += 1
        if isinstance(message, UpdateMessage):
            self.updates_sent += message.route_count()
        self.conn.send(wire)

    def _keepalive_interval(self):
        configured = self.config.keepalive_interval
        return min(configured, max(self.negotiated_hold_time / 3.0, 1.0))

    def _on_keepalive_due(self):
        if self.established:
            self.speaker.keepalive_due(self)
            self.keepalive_timer.start(self._keepalive_interval())

    # ------------------------------------------------------------------
    # failure edges
    # ------------------------------------------------------------------

    def _on_hold_expired(self):
        self.speaker.log(f"{self.peer_id}: hold timer expired")
        self.send_message(NotificationMessage(NotificationCode.HOLD_TIMER_EXPIRED))
        self._drop_session(notify_peer=False)

    def _on_tcp_reset(self, _conn, reason):
        self.speaker.log(f"{self.peer_id}: TCP reset ({reason})")
        self._drop_session(notify_peer=False)

    def _on_tcp_closed(self, _conn):
        if self.state is not fsm.SessionState.IDLE:
            self._drop_session(notify_peer=False)

    def _drop_session(self, notify_peer=True):
        """Session teardown: withdraw learned routes (or hold under GR)."""
        if notify_peer and self.conn is not None:
            self.send_message(NotificationMessage(NotificationCode.CEASE))
        was_established = self.established
        if was_established:
            self.session_drops += 1
            self.last_down_at = self.engine.now
        self.state = fsm.SessionState.IDLE
        self.hold_timer.stop()
        self.keepalive_timer.stop()
        if self.conn is not None:
            conn, self.conn = self.conn, None
            conn.on_data = conn.on_reset = conn.on_close = None
            conn.abort()
        if was_established:
            gr_time = self._effective_gr_time()
            if gr_time:
                # Graceful restart: keep routes stale, purge only on expiry.
                self.gr_timer.start(gr_time)
            else:
                self._purge_learned_routes()
            self.speaker.session_down(self)
        if self.config.mode == "active" and self.speaker.running:
            self.retry_timer.start(CONNECT_RETRY_INTERVAL)

    def _effective_gr_time(self):
        if self.config.graceful_restart_time is None:
            return None
        if self.peer_open is None or self.peer_open.capabilities.graceful_restart_time is None:
            return None  # peer did not negotiate GR
        return self.config.graceful_restart_time

    def _on_gr_expired(self):
        if not self.established:
            self._purge_learned_routes()

    def _purge_learned_routes(self):
        vrf = self.vrf
        changes = []
        for prefix in self.adj_rib_in.clear():
            old, new = vrf.loc_rib.retract(prefix, self.peer_id)
            changes.append((prefix, old, new))
        if changes:
            self.speaker.best_paths_changed(self, changes)

    def force_resume(self, conn, initial_seq, initial_ack,
                     cumulative_received, cumulative_sent, peer_open=None):
        """Adopt a repaired TCP connection directly in ESTABLISHED.

        This is the NSR takeover path: the backup container inherits a
        live, synchronized connection, so the RFC FSM bring-up never runs
        (the remote peer must not observe any session event).
        """
        self.conn = conn
        self._wire_conn_callbacks()
        self.initial_seq = initial_seq
        self.initial_ack = initial_ack
        self.decoder = MessageDecoder()
        self.cumulative_received = cumulative_received
        self.cumulative_sent = cumulative_sent
        self.peer_open = peer_open
        self.state = fsm.SessionState.ESTABLISHED
        self.established_at = self.engine.now
        if self.negotiated_hold_time:
            self.hold_timer.start(self.negotiated_hold_time)
            self.keepalive_timer.start(self._keepalive_interval())

    def stop(self, notify_peer=True):
        """Administrative stop."""
        self.retry_timer.stop()
        self.gr_timer.stop()
        if self.state is not fsm.SessionState.IDLE:
            self._drop_session(notify_peer=notify_peer)

    def __repr__(self):
        return f"<PeerSession {self.peer_id} {self.state.value}>"
