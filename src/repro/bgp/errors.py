"""BGP error codes (RFC 4271 §4.5) and exceptions."""

import enum


class NotificationCode(enum.IntEnum):
    MESSAGE_HEADER_ERROR = 1
    OPEN_MESSAGE_ERROR = 2
    UPDATE_MESSAGE_ERROR = 3
    HOLD_TIMER_EXPIRED = 4
    FSM_ERROR = 5
    CEASE = 6


class HeaderSubcode(enum.IntEnum):
    CONNECTION_NOT_SYNCHRONIZED = 1
    BAD_MESSAGE_LENGTH = 2
    BAD_MESSAGE_TYPE = 3


class OpenSubcode(enum.IntEnum):
    UNSUPPORTED_VERSION = 1
    BAD_PEER_AS = 2
    BAD_BGP_IDENTIFIER = 3
    UNSUPPORTED_OPTIONAL_PARAMETER = 4
    UNACCEPTABLE_HOLD_TIME = 6


class UpdateSubcode(enum.IntEnum):
    MALFORMED_ATTRIBUTE_LIST = 1
    UNRECOGNIZED_WELLKNOWN_ATTRIBUTE = 2
    MISSING_WELLKNOWN_ATTRIBUTE = 3
    ATTRIBUTE_FLAGS_ERROR = 4
    ATTRIBUTE_LENGTH_ERROR = 5
    INVALID_ORIGIN_ATTRIBUTE = 6
    INVALID_NEXT_HOP_ATTRIBUTE = 8
    OPTIONAL_ATTRIBUTE_ERROR = 9
    INVALID_NETWORK_FIELD = 10
    MALFORMED_AS_PATH = 11


class CeaseSubcode(enum.IntEnum):
    ADMIN_SHUTDOWN = 2
    PEER_DECONFIGURED = 3
    ADMIN_RESET = 4
    CONNECTION_REJECTED = 5


class BgpError(Exception):
    """A protocol error that maps to a NOTIFICATION message."""

    def __init__(self, code, subcode=0, data=b"", message=""):
        super().__init__(message or f"BGP error {code}/{subcode}")
        self.code = NotificationCode(code)
        self.subcode = int(subcode)
        self.data = data
