"""Path-compressed binary radix (Patricia) trie keyed by :class:`Prefix`.

The Loc-RIB's prefix store.  A flat dict answers exact-match queries but
nothing else; real tables need the order-dependent queries too:
longest-prefix match (which candidate covers a destination), covered
walks (every more-specific under an aggregate — the DRAGON aggregation
engine lives on this), covering chains (every less-specific over a
route), and deterministic sorted iteration for snapshot export.

Structure
---------
One root per AFI at position ``(value=0, length=0)``.  Every node sits
at a bit position — a (masked value, length) pair — and its two children
extend that position by at least one bit, branching on the first bit
past the parent's length.  Path compression: chain nodes with a single
child and no entry are never materialized, so the trie holds at most
``2n - 1`` nodes for ``n`` entries and descent is bounded by the AFI
width, not the entry count.

The hot exact-match path (offer/retract runs once per BGP update) never
walks the tree: an intrusive ``prefix -> node`` index dict gives O(1)
lookup, and nodes carry parent pointers so removal prunes locally.

Iteration order is pre-order (node, 0-child, 1-child), which for this
bit layout is exactly ascending ``(value, length)`` — a parent's value
is its child's value with trailing bits cleared, so the parent sorts
first, and the 0-subtree's values all precede the 1-subtree's.  Walking
AFIs in ascending order makes the full walk equal ``sorted(prefixes)``
under :meth:`Prefix.__lt__`; the Loc-RIB's snapshot determinism rides
on this (property-tested against sorted() in test_radix_properties.py).

:class:`DictPrefixStore` is the seed-equivalent flat-dict backend with
the same interface (linear scans for the tree queries); differential
tests run both in lockstep to pin behavior.
"""

from repro.bgp.prefixes import Prefix


class RadixNode:
    """One trie position; carries an entry only when ``has_entry``."""

    __slots__ = ("prefix", "parent", "children", "entry", "has_entry")

    def __init__(self, prefix, parent=None):
        self.prefix = prefix
        self.parent = parent
        self.children = [None, None]
        self.entry = None
        self.has_entry = False

    def __repr__(self):
        mark = "*" if self.has_entry else ""
        return f"<RadixNode {self.prefix}{mark}>"


class RadixTrie:
    """Prefix -> value map with LPM, covered/covering walks, sorted order."""

    def __init__(self):
        self._roots = {
            Prefix.AFI_IPV4: RadixNode(Prefix(0, 0, Prefix.AFI_IPV4)),
            Prefix.AFI_IPV6: RadixNode(Prefix(0, 0, Prefix.AFI_IPV6)),
        }
        self._index = {}  # prefix -> RadixNode (entry-bearing nodes only)

    # -- exact-match surface (the hot path; all O(1) via the index) ---------

    def __len__(self):
        return len(self._index)

    def __contains__(self, prefix):
        return prefix in self._index

    def __iter__(self):
        return (prefix for prefix, _value in self.walk())

    def get(self, prefix, default=None):
        node = self._index.get(prefix)
        return node.entry if node is not None else default

    def insert(self, prefix, value):
        """Insert or replace; returns the node holding the entry."""
        node = self._index.get(prefix)
        if node is None:
            node = self._attach(prefix)
            node.has_entry = True
            self._index[prefix] = node
        node.entry = value
        return node

    def remove(self, prefix):
        """Remove an exact entry; returns True if it existed."""
        node = self._index.pop(prefix, None)
        if node is None:
            return False
        node.entry = None
        node.has_entry = False
        self._prune(node)
        return True

    # -- structural insert/remove ------------------------------------------

    def _attach(self, prefix):
        """Find or create the node at ``prefix``'s position."""
        node = self._roots[prefix.afi]
        while True:
            # Invariant: node's position covers prefix.
            if node.prefix.length == prefix.length:
                return node
            bit = prefix.bit_at(node.prefix.length)
            child = node.children[bit]
            if child is None:
                leaf = RadixNode(prefix, node)
                node.children[bit] = leaf
                return leaf
            common = child.prefix.common_prefix_len(prefix)
            if common == child.prefix.length:
                # child still covers prefix: keep descending.
                node = child
                continue
            # Diverged inside the compressed edge: split at the fork.
            mid = RadixNode(Prefix(prefix.value, common, prefix.afi), node)
            node.children[bit] = mid
            mid.children[child.prefix.bit_at(common)] = child
            child.parent = mid
            if common == prefix.length:
                # prefix *is* the fork position (it covers child).
                return mid
            leaf = RadixNode(prefix, mid)
            mid.children[prefix.bit_at(common)] = leaf
            return leaf

    def _prune(self, node):
        """Splice out now-useless chain nodes after an entry removal."""
        while node.parent is not None and not node.has_entry:
            kids = [child for child in node.children if child is not None]
            if len(kids) == 2:
                return  # still a fork point
            parent = node.parent
            slot = 0 if parent.children[0] is node else 1
            if kids:
                kids[0].parent = parent
                parent.children[slot] = kids[0]
            else:
                parent.children[slot] = None
            node.parent = None
            node = parent

    # -- tree queries -------------------------------------------------------

    def longest_match(self, prefix):
        """Most specific entry covering ``prefix`` (itself included).

        Returns ``(stored_prefix, value)`` or None.
        """
        node = self._roots[prefix.afi]
        best = None
        while True:
            if node.has_entry:
                best = node
            if node.prefix.length >= prefix.length:
                break
            child = node.children[prefix.bit_at(node.prefix.length)]
            if child is None or not child.prefix.contains(prefix):
                break
            node = child
        if best is None:
            return None
        return best.prefix, best.entry

    def covering(self, prefix):
        """Entries covering ``prefix`` (itself included), shortest first."""
        node = self._roots[prefix.afi]
        while True:
            if node.has_entry:
                yield node.prefix, node.entry
            if node.prefix.length >= prefix.length:
                return
            child = node.children[prefix.bit_at(node.prefix.length)]
            if child is None or not child.prefix.contains(prefix):
                return
            node = child

    def covered(self, prefix):
        """Entries within ``prefix`` (itself included), in sorted order."""
        top = self._subtree_top(prefix)
        if top is not None:
            yield from self._walk_from(top)

    def covered_nodes(self, prefix):
        """Entry-bearing nodes within ``prefix`` (aggregation engine)."""
        top = self._subtree_top(prefix)
        if top is None:
            return
        stack = [top]
        while stack:
            node = stack.pop()
            if node.has_entry:
                yield node
            if node.children[1] is not None:
                stack.append(node.children[1])
            if node.children[0] is not None:
                stack.append(node.children[0])

    def _subtree_top(self, prefix):
        """The shallowest node whose subtree holds exactly the entries
        covered by ``prefix`` — or None when no entry is covered."""
        node = self._roots[prefix.afi]
        while node.prefix.length < prefix.length:
            child = node.children[prefix.bit_at(node.prefix.length)]
            if child is None:
                return None
            if child.prefix.length >= prefix.length:
                # Jumped past prefix's position along a compressed edge:
                # the whole child subtree is covered iff the edge stayed
                # inside prefix.
                return child if prefix.contains(child.prefix) else None
            if not child.prefix.contains(prefix):
                return None
            node = child
        return node

    # -- iteration ----------------------------------------------------------

    def walk(self):
        """All ``(prefix, value)`` entries in ascending Prefix order."""
        for afi in sorted(self._roots):
            yield from self._walk_from(self._roots[afi])

    @staticmethod
    def _walk_from(top):
        # Iterative pre-order: entry before children, 0-subtree before
        # 1-subtree.  Recursion would be fine for IPv4 depth but an
        # explicit stack keeps IPv6 worst cases off the interpreter
        # stack and is faster in CPython anyway.
        stack = [top]
        while stack:
            node = stack.pop()
            if node.has_entry:
                yield node.prefix, node.entry
            if node.children[1] is not None:
                stack.append(node.children[1])
            if node.children[0] is not None:
                stack.append(node.children[0])


class DictPrefixStore:
    """Flat-dict prefix store: the seed Loc-RIB's data layout.

    Same interface as :class:`RadixTrie`; the tree queries fall back to
    linear scans (and :meth:`walk` to a sort), so it is only suitable
    for small tables — chaos/fuzz scenarios and differential tests that
    pin the trie against the original dict semantics.
    """

    def __init__(self):
        self._entries = {}

    def __len__(self):
        return len(self._entries)

    def __contains__(self, prefix):
        return prefix in self._entries

    def __iter__(self):
        return iter(sorted(self._entries))

    def get(self, prefix, default=None):
        return self._entries.get(prefix, default)

    def insert(self, prefix, value):
        self._entries[prefix] = value

    def remove(self, prefix):
        return self._entries.pop(prefix, None) is not None

    def longest_match(self, prefix):
        best = None
        for stored, value in self._entries.items():
            if stored.contains(prefix):
                if best is None or stored.length > best[0].length:
                    best = (stored, value)
        return best

    def covering(self, prefix):
        found = [
            (stored, value)
            for stored, value in self._entries.items()
            if stored.contains(prefix)
        ]
        found.sort(key=lambda kv: kv[0].length)
        yield from found

    def covered(self, prefix):
        found = [
            (stored, value)
            for stored, value in self._entries.items()
            if prefix.contains(stored)
        ]
        found.sort(key=lambda kv: kv[0])
        yield from found

    def walk(self):
        for prefix in sorted(self._entries):
            yield prefix, self._entries[prefix]
