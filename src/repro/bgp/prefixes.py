"""IP prefixes and a binary trie for longest-prefix matching.

Prefixes are the NLRI currency of BGP.  We support IPv4 and IPv6; the
wire encoding (RFC 4271 §4.3) is a length octet followed by the minimum
number of prefix octets.
"""


class Prefix:
    """An immutable IP prefix (network address + mask length + AFI)."""

    __slots__ = ("value", "length", "afi")

    AFI_IPV4 = 1
    AFI_IPV6 = 2

    def __init__(self, value, length, afi=AFI_IPV4):
        bits = 32 if afi == self.AFI_IPV4 else 128
        if not 0 <= length <= bits:
            raise ValueError(f"prefix length {length} out of range for afi {afi}")
        mask = ((1 << length) - 1) << (bits - length) if length else 0
        self.value = value & mask
        self.length = length
        self.afi = afi

    @property
    def bits(self):
        return 32 if self.afi == self.AFI_IPV4 else 128

    # -- construction -------------------------------------------------------

    @classmethod
    def parse(cls, text):
        """Parse ``"10.1.0.0/16"`` or ``"2001:db8::/32"``."""
        if "/" in text:
            addr, _slash, length_text = text.partition("/")
            length = int(length_text)
        else:
            addr = text
            length = 128 if ":" in text else 32
        if ":" in addr:
            return cls(_parse_v6(addr), length, cls.AFI_IPV6)
        return cls(_parse_v4(addr), length, cls.AFI_IPV4)

    @classmethod
    def from_wire(cls, data, offset, afi=AFI_IPV4):
        """Decode one wire prefix; returns (prefix, new_offset)."""
        length = data[offset]
        offset += 1
        octets = (length + 7) // 8
        bits = 32 if afi == cls.AFI_IPV4 else 128
        if length > bits:
            raise ValueError(f"prefix length {length} exceeds AFI width {bits}")
        raw = bytes(data[offset : offset + octets])
        if len(raw) < octets:
            raise ValueError("truncated prefix")
        value = int.from_bytes(raw + b"\x00" * (bits // 8 - octets), "big")
        return cls(value, length, afi), offset + octets

    # -- encoding -----------------------------------------------------------

    def to_wire(self):
        octets = (self.length + 7) // 8
        raw = self.value.to_bytes(self.bits // 8, "big")[:octets]
        return bytes([self.length]) + raw

    @property
    def wire_size(self):
        return 1 + (self.length + 7) // 8

    # -- relations ----------------------------------------------------------

    def contains(self, other):
        """True when ``other`` (Prefix of same AFI) is within this prefix."""
        if self.afi != other.afi or other.length < self.length:
            return False
        if self.length == 0:
            # The default route covers every same-AFI prefix; the shift
            # compare below would shift by the full width, which is legal
            # but pointless (both sides collapse to 0 anyway).
            return True
        shift = self.bits - self.length
        return (self.value >> shift) == (other.value >> shift)

    def bit_at(self, index):
        """The prefix bit at position ``index`` (0 = most significant).

        ``index`` must be in ``[0, bits)``.  Out-of-range indices raise
        IndexError — a negative index would silently read the wrong bit
        and an index past the AFI width used to surface as a cryptic
        negative-shift ValueError deep inside trie descent.
        """
        if not 0 <= index < self.bits:
            raise IndexError(
                f"bit index {index} out of range for {self.bits}-bit prefix"
            )
        return (self.value >> (self.bits - 1 - index)) & 1

    def common_prefix_len(self, other, limit=None):
        """Length of the longest common leading bit-run with ``other``.

        Capped at both prefix lengths (mask bits beyond a prefix's
        length are not part of its identity) and optionally ``limit``.
        Both prefixes must share an AFI.
        """
        cap = self.length if self.length < other.length else other.length
        if limit is not None and limit < cap:
            cap = limit
        diff = self.value ^ other.value
        if not diff:
            return cap
        shared = self.bits - diff.bit_length()
        return shared if shared < cap else cap

    # -- dunder --------------------------------------------------------------

    def __eq__(self, other):
        return (
            isinstance(other, Prefix)
            and self.value == other.value
            and self.length == other.length
            and self.afi == other.afi
        )

    def __hash__(self):
        return hash((self.value, self.length, self.afi))

    def __lt__(self, other):
        return (self.afi, self.value, self.length) < (
            other.afi,
            other.value,
            other.length,
        )

    def __str__(self):
        if self.afi == self.AFI_IPV4:
            addr = ".".join(str(b) for b in self.value.to_bytes(4, "big"))
        else:
            raw = self.value.to_bytes(16, "big")
            groups = [f"{(raw[i] << 8) | raw[i + 1]:x}" for i in range(0, 16, 2)]
            addr = ":".join(groups)
        return f"{addr}/{self.length}"

    def __repr__(self):
        return f"Prefix({str(self)!r})"


def _parse_v4(addr):
    parts = addr.split(".")
    if len(parts) != 4:
        raise ValueError(f"bad IPv4 address {addr!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"bad IPv4 octet {part!r}")
        value = (value << 8) | octet
    return value


def _parse_v6(addr):
    if addr.count("::") > 1:
        raise ValueError(f"bad IPv6 address {addr!r} (multiple '::')")
    if "::" in addr:
        head_text, _sep, tail_text = addr.partition("::")
        head = [int(g, 16) for g in head_text.split(":") if g]
        tail = [int(g, 16) for g in tail_text.split(":") if g]
        groups = head + [0] * (8 - len(head) - len(tail)) + tail
    else:
        groups = [int(g, 16) for g in addr.split(":")]
    if len(groups) != 8 or any(not 0 <= g <= 0xFFFF for g in groups):
        raise ValueError(f"bad IPv6 address {addr!r}")
    value = 0
    for group in groups:
        value = (value << 16) | group
    return value


class _TrieNode:
    __slots__ = ("children", "entry", "has_entry")

    def __init__(self):
        self.children = [None, None]
        self.entry = None
        self.has_entry = False


class PrefixTrie:
    """A binary trie mapping prefixes to values, with longest-prefix match.

    Used by the forwarding-plane examples (FIB lookups) and by policy
    prefix-lists; the RIBs themselves use exact-match dicts for speed.
    """

    def __init__(self):
        self._roots = {Prefix.AFI_IPV4: _TrieNode(), Prefix.AFI_IPV6: _TrieNode()}
        self._count = 0

    def insert(self, prefix, value):
        node = self._roots[prefix.afi]
        for i in range(prefix.length):
            bit = prefix.bit_at(i)
            if node.children[bit] is None:
                node.children[bit] = _TrieNode()
            node = node.children[bit]
        if not node.has_entry:
            self._count += 1
        node.entry = value
        node.has_entry = True

    def remove(self, prefix):
        """Remove an exact prefix; returns True if it existed."""
        node = self._roots[prefix.afi]
        for i in range(prefix.length):
            node = node.children[prefix.bit_at(i)]
            if node is None:
                return False
        if node.has_entry:
            node.has_entry = False
            node.entry = None
            self._count -= 1
            return True
        return False

    def exact(self, prefix):
        node = self._roots[prefix.afi]
        for i in range(prefix.length):
            node = node.children[prefix.bit_at(i)]
            if node is None:
                return None
        return node.entry if node.has_entry else None

    def longest_match(self, prefix):
        """The most specific stored entry covering ``prefix``.

        Returns (matched_length, value) or None.
        """
        node = self._roots[prefix.afi]
        best = None
        if node.has_entry:
            best = (0, node.entry)
        for i in range(prefix.length):
            node = node.children[prefix.bit_at(i)]
            if node is None:
                break
            if node.has_entry:
                best = (i + 1, node.entry)
        return best

    def __len__(self):
        return self._count
