"""Routing information bases: Adj-RIB-In, Loc-RIB, Adj-RIB-Out.

Per RFC 4271 §3.2: routes learned from each peer land in that peer's
Adj-RIB-In; the decision process selects one best route per prefix into
the Loc-RIB; per-peer Adj-RIB-Out holds what has been advertised.
"""

from repro.bgp.decision import best_path


class Route:
    """One path for one prefix, learned from (or destined to) a peer."""

    __slots__ = ("prefix", "attributes", "peer_id", "source_kind")

    def __init__(self, prefix, attributes, peer_id, source_kind="ebgp"):
        self.prefix = prefix
        self.attributes = attributes
        self.peer_id = peer_id
        self.source_kind = source_kind  # "ebgp" | "ibgp" | "local"

    def __eq__(self, other):
        return isinstance(other, Route) and (
            self.prefix,
            self.attributes,
            self.peer_id,
            self.source_kind,
        ) == (other.prefix, other.attributes, other.peer_id, other.source_kind)

    def __repr__(self):
        return f"<Route {self.prefix} via {self.peer_id} ({self.source_kind})>"


class AdjRibIn:
    """Routes received from one peer, post-inbound-policy."""

    def __init__(self, peer_id):
        self.peer_id = peer_id
        self._routes = {}  # prefix -> Route

    def update(self, route):
        """Insert/replace; returns the displaced route or None."""
        old = self._routes.get(route.prefix)
        self._routes[route.prefix] = route
        return old

    def withdraw(self, prefix):
        """Remove; returns the removed route or None."""
        return self._routes.pop(prefix, None)

    def get(self, prefix):
        return self._routes.get(prefix)

    def prefixes(self):
        return self._routes.keys()

    def routes(self):
        return self._routes.values()

    def clear(self):
        doomed = list(self._routes.keys())
        self._routes.clear()
        return doomed

    def __len__(self):
        return len(self._routes)


class LocRib:
    """The selected best route per prefix, plus all candidate paths."""

    def __init__(self, local_as=0, router_id=0):
        self.local_as = local_as
        self.router_id = router_id
        self._best = {}  # prefix -> Route
        self._candidates = {}  # prefix -> {peer_id: Route}
        self.decision_runs = 0

    def offer(self, route):
        """Add/replace a candidate path and re-run selection for its prefix.

        Returns (old_best, new_best); identical values mean no change.
        """
        candidates = self._candidates.setdefault(route.prefix, {})
        candidates[route.peer_id] = route
        return self._reselect(route.prefix)

    def retract(self, prefix, peer_id):
        """Drop a peer's candidate and re-run selection for the prefix."""
        candidates = self._candidates.get(prefix)
        if not candidates or peer_id not in candidates:
            return self._best.get(prefix), self._best.get(prefix)
        del candidates[peer_id]
        if not candidates:
            del self._candidates[prefix]
        return self._reselect(prefix)

    def _reselect(self, prefix):
        self.decision_runs += 1
        old = self._best.get(prefix)
        candidates = self._candidates.get(prefix)
        new = best_path(list(candidates.values())) if candidates else None
        if new is None:
            self._best.pop(prefix, None)
        else:
            self._best[prefix] = new
        return old, new

    def best(self, prefix):
        return self._best.get(prefix)

    def best_routes(self):
        return self._best.values()

    def prefixes(self):
        return self._best.keys()

    def candidates(self, prefix):
        return dict(self._candidates.get(prefix, {}))

    def __len__(self):
        return len(self._best)

    # -- snapshot support (TENSOR backs the table up in the database) ------

    def export_entries(self):
        """Serializable view of every candidate path (sorted for determinism)."""
        entries = []
        for prefix in sorted(self._candidates):
            for peer_id, route in sorted(self._candidates[prefix].items(), key=lambda kv: str(kv[0])):
                entries.append(
                    {
                        "prefix": str(prefix),
                        "peer_id": peer_id,
                        "source_kind": route.source_kind,
                        "attributes": route.attributes.to_wire(),
                    }
                )
        return entries

    @classmethod
    def import_entries(cls, entries, local_as=0, router_id=0):
        """Rebuild a LocRib from :meth:`export_entries` output."""
        from repro.bgp.attributes import PathAttributes
        from repro.bgp.prefixes import Prefix

        rib = cls(local_as=local_as, router_id=router_id)
        for entry in entries:
            route = Route(
                Prefix.parse(entry["prefix"]),
                PathAttributes.from_wire(entry["attributes"]),
                entry["peer_id"],
                entry["source_kind"],
            )
            rib.offer(route)
        return rib


class AdjRibOut:
    """What has been advertised to one peer."""

    def __init__(self, peer_id):
        self.peer_id = peer_id
        self._routes = {}  # prefix -> PathAttributes as advertised

    def advertised(self, prefix):
        return self._routes.get(prefix)

    def record_advertise(self, prefix, attributes):
        self._routes[prefix] = attributes

    def record_withdraw(self, prefix):
        self._routes.pop(prefix, None)

    def prefixes(self):
        return self._routes.keys()

    def __len__(self):
        return len(self._routes)
