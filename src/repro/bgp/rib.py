"""Routing information bases: Adj-RIB-In, Loc-RIB, Adj-RIB-Out.

Per RFC 4271 §3.2: routes learned from each peer land in that peer's
Adj-RIB-In; the decision process selects one best route per prefix into
the Loc-RIB; per-peer Adj-RIB-Out holds what has been advertised.

The Loc-RIB keys its per-prefix state (candidates, MED-group counts)
by a pluggable prefix store — a path-compressed radix trie by default
(:class:`repro.bgp.radix.RadixTrie`), which adds longest-prefix match,
covered-subtree walks and sorted iteration on top of the original
exact-match surface.  ``use_prefix_store`` swaps the backend (e.g. the
seed-equivalent flat dict) for differential testing.
"""

import contextlib

from repro.bgp.decision import best_path, med_group, prefer
from repro.bgp.prefixes import Prefix
from repro.bgp.radix import DictPrefixStore, RadixTrie

__all__ = [
    "Route", "AdjRibIn", "LocRib", "AdjRibOut",
    "use_prefix_store", "default_prefix_store",
    "RadixTrie", "DictPrefixStore",
]

_store_factory = RadixTrie


def default_prefix_store():
    """Construct a prefix store with the currently-selected backend."""
    return _store_factory()


@contextlib.contextmanager
def use_prefix_store(factory):
    """Temporarily back new Loc-RIBs with ``factory`` (e.g.
    :class:`repro.bgp.radix.DictPrefixStore` for differential runs
    against the seed dict semantics)."""
    global _store_factory
    previous = _store_factory
    _store_factory = factory
    try:
        yield
    finally:
        _store_factory = previous


class _PrefixSlot:
    """Per-prefix Loc-RIB state, stored as the prefix store's value.

    ``best`` mirrors the LocRib-level ``_best`` dict so trie queries
    (LPM, covered walks) can answer with the selected route without a
    second lookup; the dict stays authoritative for iteration order.
    """

    __slots__ = ("candidates", "best", "med_counts")

    def __init__(self):
        self.candidates = {}  # peer_id -> Route
        self.best = None
        # first_as -> member count; lets offer/retract decide in O(1)
        # whether MED is in play for a candidate (None groups — no AS
        # path — never compare MED and are not counted).
        self.med_counts = {}


class Route:
    """One path for one prefix, learned from (or destined to) a peer."""

    __slots__ = ("prefix", "attributes", "peer_id", "source_kind")

    def __init__(self, prefix, attributes, peer_id, source_kind="ebgp"):
        self.prefix = prefix
        self.attributes = attributes
        self.peer_id = peer_id
        self.source_kind = source_kind  # "ebgp" | "ibgp" | "local"

    def __eq__(self, other):
        return isinstance(other, Route) and (
            self.prefix,
            self.attributes,
            self.peer_id,
            self.source_kind,
        ) == (other.prefix, other.attributes, other.peer_id, other.source_kind)

    def __hash__(self):
        # Defining __eq__ alone would set __hash__ to None and make
        # routes silently unusable in sets/dicts; hash by the same value
        # identity __eq__ compares.
        return hash((self.prefix, self.attributes, self.peer_id, self.source_kind))

    def __repr__(self):
        return f"<Route {self.prefix} via {self.peer_id} ({self.source_kind})>"


class AdjRibIn:
    """Routes received from one peer, post-inbound-policy."""

    def __init__(self, peer_id):
        self.peer_id = peer_id
        self._routes = {}  # prefix -> Route

    def update(self, route):
        """Insert/replace; returns the displaced route or None."""
        old = self._routes.get(route.prefix)
        self._routes[route.prefix] = route
        return old

    def withdraw(self, prefix):
        """Remove; returns the removed route or None."""
        return self._routes.pop(prefix, None)

    def get(self, prefix):
        return self._routes.get(prefix)

    def prefixes(self):
        return self._routes.keys()

    def routes(self):
        return self._routes.values()

    def clear(self):
        doomed = list(self._routes.keys())
        self._routes.clear()
        return doomed

    def __len__(self):
        return len(self._routes)


class LocRib:
    """The selected best route per prefix, plus all candidate paths."""

    def __init__(self, local_as=0, router_id=0, store=None):
        self.local_as = local_as
        self.router_id = router_id
        # Insertion-ordered best map.  Advertisement batching iterates
        # it, so its mutation pattern is part of the simulation's
        # deterministic trajectory — it stays a plain dict regardless
        # of the store backend.
        self._best = {}  # prefix -> Route
        # prefix -> _PrefixSlot for every prefix with >= 1 candidate.
        # The flat dict serves the per-update exact-match path (BGP
        # updates hit it once each — keeping it a single dict probe
        # preserves the seed's hot-path cost); the structural store
        # mirrors the same slot objects for LPM, covered walks and
        # sorted iteration.
        self._slots = {}
        self._store = store if store is not None else default_prefix_store()
        #: Number of best-path selections actually executed: incremental
        #: challenger-vs-incumbent comparisons and full re-scans.  No-op
        #: retracts and trivial single-candidate adoptions do not count.
        self.decision_runs = 0
        #: Monotone change counter for incremental snapshots; bumped on
        #: every candidate-set mutation (see export_entries_since).
        self.export_seq = 0
        self._changed = {}  # prefix -> export_seq of last mutation

    def _touch(self, prefix):
        self.export_seq += 1
        self._changed[prefix] = self.export_seq

    def offer(self, route):
        """Add/replace a candidate path and re-run selection for its prefix.

        Returns (old_best, new_best); identical values mean no change.

        Selection is incremental: a candidate from a new peer is appended
        to the prefix's candidate order, so one comparison against the
        incumbent best finishes the :func:`best_path` linear scan.  A
        full re-scan runs only when the incumbent itself is displaced
        (the offering peer *is* the best's peer) or when the challenger
        joins a populated MED group, where pairwise preference is not
        decisive (see :func:`repro.bgp.decision.best_path`).
        """
        prefix = route.prefix
        self._touch(prefix)
        slot = self._slots.get(prefix)
        if slot is None:
            slot = _PrefixSlot()
            self._slots[prefix] = slot
            self._store.insert(prefix, slot)
        candidates = slot.candidates
        previous = candidates.get(route.peer_id)
        candidates[route.peer_id] = route
        group = med_group(route)
        prev_group = None
        counts = slot.med_counts
        if previous is None:
            if group is not None:
                counts[group] = counts.get(group, 0) + 1
        elif previous is not route:
            prev_group = med_group(previous)
            if prev_group != group:
                if prev_group is not None:
                    self._group_drop(counts, prev_group)
                if group is not None:
                    counts[group] = counts.get(group, 0) + 1
        old = self._best.get(prefix)
        if old is None:
            # First (or only) candidate: trivially best, nothing to compare.
            self._best[prefix] = slot.best = route
            return None, route
        if route.peer_id == old.peer_id:
            if len(candidates) == 1:
                # Replaced the lone candidate: still trivially best.
                self._best[prefix] = slot.best = route
                return old, route
            return self._full_reselect(prefix, slot)
        if group is not None and counts[group] > 1:
            # MED in play: the challenger can displace its group's
            # winner without beating the incumbent pairwise (and vice
            # versa), so one comparison cannot decide.
            return self._full_reselect(prefix, slot)
        if (prev_group is not None and prev_group != group
                and counts.get(prev_group)
                and self._evicts_group_winner(candidates, previous,
                                              prev_group)):
            # The replaced route was its old MED group's winner; its
            # eviction restores a weaker-in-group finalist that may
            # still beat the incumbent MED-blind.
            return self._full_reselect(prefix, slot)
        self.decision_runs += 1
        if prefer(route, old):
            self._best[prefix] = slot.best = route
            return old, route
        return old, old

    def retract(self, prefix, peer_id):
        """Drop a peer's candidate and re-run selection for the prefix.

        Removing a non-best candidate leaves the best untouched; only
        losing the best itself triggers a full re-scan.
        """
        slot = self._slots.get(prefix)
        if slot is None or peer_id not in slot.candidates:
            return self._best.get(prefix), self._best.get(prefix)
        candidates = slot.candidates
        removed = candidates.pop(peer_id)
        self._touch(prefix)
        old = self._best.get(prefix)
        group = med_group(removed)
        counts = slot.med_counts
        if group is not None:
            self._group_drop(counts, group)
        if not candidates:
            del self._slots[prefix]
            self._store.remove(prefix)
            self._best.pop(prefix, None)
            return old, None
        if old is not None and old.peer_id != peer_id:
            if (group is None or not counts.get(group)
                    or not self._evicts_group_winner(candidates, removed,
                                                     group)):
                # Best untouched: the removed route was neither the
                # overall best nor a MED group winner whose eviction
                # could restore a stronger finalist.
                return old, old
        return self._full_reselect(prefix, slot)

    @staticmethod
    def _group_drop(counts, group):
        remaining = counts.get(group, 1) - 1
        if remaining:
            counts[group] = remaining
        else:
            counts.pop(group, None)

    @staticmethod
    def _evicts_group_winner(candidates, departed, group):
        """True when ``departed`` was the winner of its (still-populated)
        MED group — its eviction promotes a weaker-in-group route into
        the finalists, which the MED-blind pass may rank higher."""
        return not any(
            prefer(other, departed)
            for other in candidates.values()
            if med_group(other) == group
        )

    def _full_reselect(self, prefix, slot=None):
        self.decision_runs += 1
        old = self._best.get(prefix)
        if slot is None:
            slot = self._slots.get(prefix)
        candidates = slot.candidates if slot is not None else None
        new = best_path(list(candidates.values())) if candidates else None
        if new is None:
            self._best.pop(prefix, None)
        else:
            self._best[prefix] = new
        if slot is not None:
            slot.best = new
        return old, new

    def best(self, prefix):
        return self._best.get(prefix)

    def best_routes(self):
        return self._best.values()

    def prefixes(self):
        return self._best.keys()

    def candidates(self, prefix):
        slot = self._slots.get(prefix)
        return dict(slot.candidates) if slot is not None else {}

    def __len__(self):
        return len(self._best)

    # -- trie-backed queries ------------------------------------------------

    @property
    def store(self):
        """The underlying prefix store (read-only use: aggregation,
        snapshot walks).  Values are :class:`_PrefixSlot` instances."""
        return self._store

    def lookup(self, prefix):
        """Longest-prefix match over *selected* routes: the best route
        of the most specific prefix covering ``prefix``, or None.

        More-specific-wins receiver semantics — the property that makes
        DRAGON deaggregation holes sound (DESIGN.md §14).
        """
        match = self._store.longest_match(prefix)
        while match is not None:
            matched, slot = match
            if slot.best is not None:
                return slot.best
            # Candidate-less slots never exist, but a slot whose best
            # is mid-withdrawal falls back to the next-shorter cover.
            if matched.length == 0:
                return None
            shorter = Prefix(matched.value, matched.length - 1, matched.afi)
            match = self._store.longest_match(shorter)
        return None

    def covered_best(self, prefix):
        """(prefix, best route) for selected routes within ``prefix``,
        in ascending prefix order (includes ``prefix`` itself)."""
        return [
            (stored, slot.best)
            for stored, slot in self._store.covered(prefix)
            if slot.best is not None
        ]

    def covering_best(self, prefix):
        """(prefix, best route) for selected routes covering ``prefix``,
        shortest first (includes ``prefix`` itself)."""
        return [
            (stored, slot.best)
            for stored, slot in self._store.covering(prefix)
            if slot.best is not None
        ]

    # -- snapshot support (TENSOR backs the table up in the database) ------

    def export_entries(self):
        """Serializable view of every candidate path (sorted for determinism)."""
        entries = []
        for prefix, slot in self._store.walk():
            entries.extend(self._slot_entries(prefix, slot))
        return entries

    def export_prefix_entries(self, prefix):
        """The :meth:`export_entries` records for one prefix (possibly [])."""
        slot = self._slots.get(prefix)
        if slot is None:
            return []
        return self._slot_entries(prefix, slot)

    @staticmethod
    def _slot_entries(prefix, slot):
        return [
            {
                "prefix": str(prefix),
                "peer_id": peer_id,
                "source_kind": route.source_kind,
                "attributes": route.attributes.to_wire(),
            }
            for peer_id, route in sorted(slot.candidates.items(),
                                         key=lambda kv: str(kv[0]))
        ]

    def export_entries_since(self, seq):
        """Incremental snapshot: what changed after change-counter ``seq``.

        Returns ``(export_seq, dirty)`` where ``dirty`` maps each prefix
        mutated since ``seq`` to its *current* entry list (empty when the
        prefix no longer has candidates).  Single-consumer protocol: the
        caller passes back the returned ``export_seq`` next time, and
        change records at or below the consumed watermark are pruned.
        """
        dirty = {}
        if seq >= self.export_seq:
            return self.export_seq, dirty
        changed = self._changed
        stale = []
        for prefix, changed_at in changed.items():
            if changed_at > seq:
                dirty[prefix] = self.export_prefix_entries(prefix)
            else:
                stale.append(prefix)
        for prefix in stale:
            del changed[prefix]
        return self.export_seq, dirty

    @classmethod
    def import_entries(cls, entries, local_as=0, router_id=0):
        """Rebuild a LocRib from :meth:`export_entries` output."""
        from repro.bgp.attributes import PathAttributes
        from repro.bgp.prefixes import Prefix

        rib = cls(local_as=local_as, router_id=router_id)
        for entry in entries:
            route = Route(
                Prefix.parse(entry["prefix"]),
                PathAttributes.from_wire(entry["attributes"]),
                entry["peer_id"],
                entry["source_kind"],
            )
            rib.offer(route)
        return rib


class AdjRibOut:
    """What has been advertised to one peer."""

    def __init__(self, peer_id):
        self.peer_id = peer_id
        self._routes = {}  # prefix -> PathAttributes as advertised

    def advertised(self, prefix):
        return self._routes.get(prefix)

    def record_advertise(self, prefix, attributes):
        self._routes[prefix] = attributes

    def record_withdraw(self, prefix):
        self._routes.pop(prefix, None)

    def prefixes(self):
        return self._routes.keys()

    def __len__(self):
        return len(self._routes)
