"""The BGP speaker: sessions, RIBs, decision process, advertisement.

One speaker is one BGP process.  Baseline daemons (FRR/GoBGP/BIRD
profiles) use it directly; TENSOR subclasses it and interposes
replication on the receive, send and keepalive paths (§3.1).

The speaker carries an explicit CPU cost model (a busy-until queue):
message parsing/applying and update generation charge calibrated
per-update costs, so the absolute durations of Fig. 6 emerge from the
same mechanisms the paper measures rather than from sleeps sprinkled in
benchmarks.
"""

from repro.bgp.capabilities import Capabilities
from repro.bgp.messages import (
    BGP_PORT,
    KeepaliveMessage,
    UpdateMessage,
)
from repro.bgp.packing import pack_routes, pack_withdrawals
from repro.bgp.peer import PeerConfig, PeerSession
from repro.bgp.attributes import ipv4_to_int
from repro.bgp.rib import Route
from repro.bgp.vrf import Vrf
from repro.sim.calibration import (
    PACKED_COPY_COST_PER_UPDATE,
    PER_PEER_SESSION_COST,
    BIRD_PER_PEER_SUPERLINEAR,
    RECEIVE_COST_PER_UPDATE,
    SEND_COST_PER_UPDATE,
)
from repro.sim.process import Process

#: CPU cost of handling a non-UPDATE message (OPEN/KEEPALIVE/...).
CONTROL_MESSAGE_COST = 2e-6
#: Min route advertisement interval — propagation batches flush at this pace.
DEFAULT_MRAI = 0.05


#: How MRAI pacing is applied (DESIGN.md §13):
#: - ``per_speaker`` — one flush timer for the whole process (the
#:   historical behaviour; bit-identical to pre-mode code).
#: - ``per_peer`` — each session flushes on its own timer, using the
#:   session's ``PeerConfig.mrai`` override when set.
#: - ``per_prefix`` — per-peer timers, plus each (peer, prefix) is rate
#:   limited: a prefix advertised at ``t`` is not re-advertised to that
#:   peer before ``t + mrai``; early changes stay queued and flush when
#:   the pacing window opens.
MRAI_MODES = ("per_speaker", "per_peer", "per_prefix")


class SpeakerConfig:
    """Static configuration of one BGP process."""

    def __init__(
        self,
        name,
        local_as,
        router_id,
        profile="frr",
        update_packing=None,
        mrai=DEFAULT_MRAI,
        mrai_mode="per_speaker",
        graceful_restart_time=None,
        aggregates=(),
    ):
        self.name = name
        self.local_as = local_as
        self.router_id = router_id  # dotted-quad string
        self.profile = profile
        if update_packing is None:
            # GoBGP is the implementation without update packing (§4.2).
            update_packing = profile != "gobgp"
        self.update_packing = update_packing
        self.mrai = mrai
        if mrai_mode not in MRAI_MODES:
            raise ValueError(f"bad mrai_mode {mrai_mode!r}")
        self.mrai_mode = mrai_mode
        self.graceful_restart_time = graceful_restart_time
        # DRAGON-style export aggregation (DESIGN.md §14): aggregate
        # prefixes this speaker advertises in place of uniform covered
        # more-specifics, punching holes for divergent ones.  Empty
        # (the default) leaves the export path bit-identical.
        self.aggregates = tuple(aggregates)

    @property
    def router_id_int(self):
        return ipv4_to_int(self.router_id)

    @property
    def receive_cost(self):
        return RECEIVE_COST_PER_UPDATE[self.profile]

    @property
    def send_cost(self):
        return SEND_COST_PER_UPDATE[self.profile]

    @property
    def packed_copy_cost(self):
        return PACKED_COPY_COST_PER_UPDATE.get(self.profile, self.send_cost)

    @property
    def per_peer_cost(self):
        return PER_PEER_SESSION_COST[self.profile]


class _FanoutPlan:
    """Shared per-export state for one advertisement fan-out.

    Memoizes the AFI split and the packed UPDATE messages so a group of
    sessions with identical exports serializes and packs exactly once;
    per-peer state (Adj-RIB-Out records, CPU charges) stays per session.
    """

    __slots__ = ("export", "_split", "_messages")

    def __init__(self, export):
        self.export = export
        self._split = None
        self._messages = None

    def split(self, speaker):
        if self._split is None:
            self._split = speaker._split_by_afi(self.export)
        return self._split

    def packed(self, v4_export):
        if self._messages is None:
            self._messages = pack_routes(v4_export)
        return self._messages


class BgpSpeaker:
    """One BGP process: VRFs, peers, CPU model, advertisement engine."""

    def __init__(self, engine, stack, config):
        self.engine = engine
        self.stack = stack
        self.config = config
        self.process = Process(engine, f"bgp:{config.name}")
        self.vrfs = {}
        self.sessions = {}
        self.running = False
        self._listening = False
        self._cpu_busy_until = 0.0
        self._pending_adverts = {}  # session.peer_id -> {prefix: route-or-None}
        self._flush_scheduled = False
        # Per-peer MRAI modes: peers with a scheduled session flush, and
        # (per_prefix mode) the earliest instant each (peer, prefix) may
        # be advertised again.
        self._session_flush_scheduled = set()
        self._prefix_pacing = {}
        # Tracing: trace ids of the received UPDATEs whose changes are
        # queued for the next MRAI flush; the flush's outgoing ``propagate``
        # spans carry them as ``links`` (fan-out breaks single parentage).
        self._pending_advert_links = set()
        self._flushing_links = ()
        self.log_lines = []
        self.last_apply_time = None
        self.total_updates_received = 0
        self.total_updates_sent = 0
        # peers that advertised fan-out work already paid generation for,
        # keyed by packed-attribute identity (cross-peer update packing).
        self._generation_cache = set()
        # DRAGON export aggregation, active only when configured.
        if config.aggregates:
            from repro.bgp.aggregation import ExportAggregator

            self.aggregator = ExportAggregator(config.name, config.aggregates)
        else:
            self.aggregator = None

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------

    def add_vrf(self, name, local_as=None, router_id=None, vxlan_vni=None):
        vrf = Vrf(
            name,
            local_as if local_as is not None else self.config.local_as,
            router_id if router_id is not None else self.config.router_id_int,
            vxlan_vni,
        )
        self.vrfs[name] = vrf
        return vrf

    def add_peer(self, peer_config, autostart=True):
        if peer_config.vrf_name not in self.vrfs:
            self.add_vrf(peer_config.vrf_name)
        session = PeerSession(self, peer_config)
        self.sessions[peer_config.peer_id] = session
        self.vrfs[peer_config.vrf_name].attach_peer(peer_config.peer_id)
        if self.running and autostart:
            self._start_session(session)
        return session

    def make_capabilities(self, peer_config):
        return Capabilities(
            four_octet_as=self.config.local_as,
            route_refresh=True,
            graceful_restart_time=self.config.graceful_restart_time,
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self):
        self.running = True
        for session in self.sessions.values():
            self._start_session(session)

    def _start_session(self, session):
        if session.config.mode == "passive":
            self._ensure_listening()
        session.start()

    def _ensure_listening(self):
        if not self._listening:
            self.stack.listen(BGP_PORT, self._on_accept)
            self._listening = True

    def _on_accept(self, conn):
        for session in self.sessions.values():
            if (
                session.config.mode == "passive"
                and session.config.remote_addr == conn.remote_addr
                and not session.established
                and session.conn is None
            ):
                session.attach_connection(conn)
                return
        conn.abort()  # no configured neighbour matches: reject

    def crash(self):
        """Abrupt process death: timers stop, no notifications sent."""
        self.running = False
        self.process.kill()
        for session in self.sessions.values():
            session.hold_timer.stop()
            session.keepalive_timer.stop()
            session.retry_timer.stop()
            session.gr_timer.stop()
            session.state = type(session.state).IDLE
            session.conn = None

    def graceful_shutdown(self):
        """Administrative shutdown: CEASE to every peer."""
        self.running = False
        for session in list(self.sessions.values()):
            session.stop(notify_peer=True)
        self.process.kill()

    # ------------------------------------------------------------------
    # CPU model
    # ------------------------------------------------------------------

    def charge(self, cost, callback, *args):
        """Run ``callback`` after queueing ``cost`` seconds of CPU."""
        now = self.engine.now
        start = max(now, self._cpu_busy_until)
        self._cpu_busy_until = start + cost
        self.engine.schedule(self._cpu_busy_until - now, callback, *args)

    def cpu_queue_depth(self):
        return max(0.0, self._cpu_busy_until - self.engine.now)

    # ------------------------------------------------------------------
    # receive path (hookable)
    # ------------------------------------------------------------------

    def dispatch_received(self, session, message, size):
        """Charge CPU and apply; TENSOR interposes replication here."""
        cost = self._receive_cost_of(message)
        self.charge(cost, self._apply_received, session, message, size)

    def _receive_cost_of(self, message):
        if isinstance(message, UpdateMessage):
            return CONTROL_MESSAGE_COST + self.config.receive_cost * message.route_count()
        return CONTROL_MESSAGE_COST

    def _apply_received(self, session, message, size):
        if not self.running:
            return
        if isinstance(message, UpdateMessage):
            self.total_updates_received += message.route_count()
            self.last_apply_time = self.engine.now
        session.handle_message(message, size)

    # ------------------------------------------------------------------
    # send path (hookable)
    # ------------------------------------------------------------------

    def dispatch_send(self, session, message, generation_cost=None):
        """Charge generation CPU, then transmit; TENSOR interposes here."""
        if generation_cost is None:
            generation_cost = self._send_cost_of(message)
        wire = message.to_wire()
        self.charge(generation_cost, self._transmit, session, message, wire)

    def _send_cost_of(self, message):
        if isinstance(message, UpdateMessage):
            return CONTROL_MESSAGE_COST + self.config.send_cost * message.route_count()
        return CONTROL_MESSAGE_COST

    def _transmit(self, session, message, wire):
        if not self.running:
            return
        if isinstance(message, UpdateMessage):
            self.total_updates_sent += message.route_count()
        session.transmit_wire(message, wire)

    def keepalive_due(self, session):
        """The keepalive thread's tick; TENSOR replicates before sending."""
        session.send_message(KeepaliveMessage())

    def tcp_established(self, session):
        """Hook: a session's TCP connection just completed its handshake.

        TENSOR installs its Netfilter rules and records session metadata
        here, before any BGP message (or its ACK) flows.
        """

    def stream_progress(self, session):
        """Hook: bytes arrived, possibly leaving a partial message buffered.

        TENSOR replicates the partial tail so the ACK covering it can be
        released even when the message completes much later (a sender with
        a collapsed congestion window would otherwise deadlock against the
        held ACK).
        """

    # ------------------------------------------------------------------
    # advertisement engine
    # ------------------------------------------------------------------

    def originate(self, vrf_name, prefix, attributes):
        """Inject a locally-originated route and propagate it."""
        vrf = self.vrfs[vrf_name]
        route = Route(prefix, attributes, f"local:{self.config.name}", "local")
        old, new = vrf.loc_rib.offer(route)
        self._queue_change(None, vrf, prefix, old, new)

    def originate_many(self, vrf_name, routes):
        """Bulk originate [(prefix, attributes), ...] without propagation
        churn (used to preload tables for benchmarks)."""
        vrf = self.vrfs[vrf_name]
        for prefix, attributes in routes:
            vrf.loc_rib.offer(Route(prefix, attributes, f"local:{self.config.name}", "local"))

    def withdraw_originated(self, vrf_name, prefix):
        vrf = self.vrfs[vrf_name]
        old, new = vrf.loc_rib.retract(prefix, f"local:{self.config.name}")
        self._queue_change(None, vrf, prefix, old, new)

    def session_established(self, session):
        """Initial table advertisement to a newly-established peer."""
        self.charge(self.config.per_peer_cost, lambda: None)
        routes = self._full_table_for(session)
        if routes:
            self.advertise_routes_to_sessions(routes, [session])

    def session_down(self, session):
        """Hook: a session left ESTABLISHED (failure or admin)."""
        if self.aggregator is not None:
            self.aggregator.drop_session(session.peer_id)

    def readvertise(self, session):
        routes = self._full_table_for(session)
        if routes:
            self.advertise_routes_to_sessions(routes, [session])

    def _full_table_for(self, session):
        vrf = session.vrf
        routes = [
            (route.prefix, route.attributes)
            for route in vrf.loc_rib.best_routes()
            if route.peer_id != session.peer_id
        ]
        if self.aggregator is not None:
            routes = self.aggregator.transform_table(vrf.loc_rib, session, routes)
        return routes

    def resync_session(self, session, dead_prefixes=()):
        """Outbound resync after NSR adoption.

        An UPDATE that was generated but neither committed nor
        transmitted at the crash instant is in no replay path: the
        incoming message that caused it was already pruned, and the
        Adj-RIB-Out that knew it was pending died with the process.
        Re-send withdrawals for ``dead_prefixes`` (recovered from the
        durable RIB delta log) and re-advertise the full table; both
        halves are idempotent at the remote, so over-sending is safe —
        silence is not.
        """
        if dead_prefixes:
            self._send_withdrawals(session, list(dead_prefixes))
        self.readvertise(session)

    def best_paths_changed(self, origin_session, changes):
        """Queue best-path changes for propagation to other peers."""
        self.last_apply_time = self.engine.now
        origin_id = origin_session.peer_id if origin_session else None
        for prefix, old, new in changes:
            if old is new:
                continue
            vrf = (
                origin_session.vrf
                if origin_session
                else self._vrf_of_prefix(prefix, old, new)
            )
            self._queue_change(origin_session, vrf, prefix, old, new)

    def _vrf_of_prefix(self, prefix, old, new):
        route = new or old
        for vrf in self.vrfs.values():
            if vrf.loc_rib.best(prefix) is route or route.peer_id in vrf.peer_ids or route.peer_id.startswith("local:"):
                return vrf
        return next(iter(self.vrfs.values()))

    def _queue_change(self, origin_session, vrf, prefix, old, new):
        hook = self.engine._trace_hook
        ambient = hook.current if hook is not None else None
        for session in self.sessions.values():
            if session.config.vrf_name != vrf.name:
                continue
            if origin_session is not None and session is origin_session:
                continue
            if not session.established:
                continue
            # iBGP split horizon: routes learned from iBGP do not propagate
            # to other iBGP peers (the joint-container design of §3.2.4 uses
            # full-mesh iBGP between joint and member containers).
            if (
                new is not None
                and new.source_kind == "ibgp"
                and session.source_kind == "ibgp"
            ):
                continue
            self._pending_adverts.setdefault(session.peer_id, {})[prefix] = new
            if ambient is not None:
                self._pending_advert_links.add(ambient.trace_id)
            if self.config.mrai_mode != "per_speaker":
                self._schedule_session_flush(session)
        if (
            self.config.mrai_mode == "per_speaker"
            and self._pending_adverts
            and not self._flush_scheduled
        ):
            self._flush_scheduled = True
            self.engine.schedule(self.config.mrai, self._flush_adverts)

    # -- per-peer / per-prefix MRAI (DESIGN.md §13) ------------------------

    def _session_mrai(self, session):
        mrai = session.config.mrai
        return self.config.mrai if mrai is None else mrai

    def _schedule_session_flush(self, session, delay=None):
        peer_id = session.peer_id
        if peer_id in self._session_flush_scheduled:
            return
        self._session_flush_scheduled.add(peer_id)
        self.engine.schedule(
            self._session_mrai(session) if delay is None else delay,
            self._flush_session_adverts, peer_id,
        )

    def _flush_session_adverts(self, peer_id):
        self._session_flush_scheduled.discard(peer_id)
        if not self.running:
            return
        changes = self._pending_adverts.pop(peer_id, None)
        if not changes:
            return
        session = self.sessions.get(peer_id)
        if session is None:
            return
        if self.config.mrai_mode == "per_prefix":
            now = self.engine.now
            mrai = self._session_mrai(session)
            ready, deferred = {}, {}
            for prefix, route in changes.items():
                if self._prefix_pacing.get((peer_id, prefix), 0.0) <= now + 1e-12:
                    ready[prefix] = route
                else:
                    deferred[prefix] = route
            if deferred:
                self._pending_adverts[peer_id] = deferred
                earliest = min(
                    self._prefix_pacing[(peer_id, prefix)] for prefix in deferred
                )
                self._schedule_session_flush(session, delay=earliest - now)
            for prefix in ready:
                self._prefix_pacing[(peer_id, prefix)] = now + mrai
            changes = ready
            if not changes:
                return
        self._flushing_links = tuple(sorted(self._pending_advert_links))
        try:
            self._flush_pending({peer_id: changes})
        finally:
            self._flushing_links = ()
            if not self._pending_adverts:
                self._pending_advert_links = set()

    def _flush_adverts(self):
        self._flush_scheduled = False
        links, self._pending_advert_links = self._pending_advert_links, set()
        if not self.running:
            return
        self._flushing_links = tuple(sorted(links))
        try:
            self._flush_adverts_inner()
        finally:
            self._flushing_links = ()

    def _flush_adverts_inner(self):
        pending, self._pending_adverts = self._pending_adverts, {}
        self._flush_pending(pending)

    def _flush_pending(self, pending):
        # Group sessions whose queued change-set is identical (the common
        # fan-out case: one received UPDATE propagating to N-1 peers), so
        # advertise_routes_to_sessions can export and pack once per group
        # instead of once per peer.
        groups = {}  # change signature -> (announcements, [sessions])
        for peer_id, changes in pending.items():
            session = self.sessions.get(peer_id)
            if session is None or not session.established:
                continue
            if self.aggregator is not None:
                # Aggregation rewrites each session's change-set (member
                # suppression, hole punching), trading the identical-set
                # fan-out grouping below for fewer advertised routes.
                changes = self.aggregator.transform_changes(
                    session.vrf.loc_rib, session, changes
                )
            announcements = []
            withdrawals = []
            for prefix, route in changes.items():
                if route is None:
                    if session.adj_rib_out.advertised(prefix) is not None:
                        withdrawals.append(prefix)
                else:
                    announcements.append((prefix, route.attributes))
            if withdrawals:
                self._send_withdrawals(session, withdrawals)
            if announcements:
                signature = tuple(
                    (prefix, id(attributes)) for prefix, attributes in announcements
                )
                group = groups.get(signature)
                if group is None:
                    groups[signature] = (announcements, [session])
                else:
                    group[1].append(session)
        for announcements, sessions in groups.values():
            self.advertise_routes_to_sessions(announcements, sessions)

    def _send_withdrawals(self, session, prefixes):
        for message in pack_withdrawals(prefixes):
            for prefix in message.withdrawn:
                session.adj_rib_out.record_withdraw(prefix)
            session.send_message(message)

    def advertise_routes_to_sessions(self, routes, sessions):
        """Fan out ``[(prefix, attributes), ...]`` to ``sessions``.

        With update packing, generation cost is paid once per distinct
        packed attribute set; further peers pay only the copy cost
        (§4.2 "update packing").  Without packing (GoBGP), every peer pays
        full generation for every route, one UPDATE per route.

        Pack-once: sessions sharing an export policy and session kind
        produce identical exports, so the export, the AFI split and the
        packed UPDATE messages are computed once per distinct
        (policy, kind) pair and the *same* message objects fan out to
        every matching peer — their memoized ``to_wire`` serializes once.
        """
        shared = {}  # (export_policy id, source_kind) -> _FanoutPlan
        for session in sessions:
            plan_key = (id(session.config.export_policy), session.source_kind)
            plan = shared.get(plan_key)
            if plan is None:
                plan = shared[plan_key] = _FanoutPlan(
                    self._export_routes(session, routes)
                )
            if not plan.export:
                continue
            self.charge(self._per_peer_fanout_cost(), lambda: None)
            if self.config.update_packing:
                self._advertise_packed(session, plan)
            else:
                self._advertise_unpacked(session, plan)

    def _per_peer_fanout_cost(self):
        cost = self.config.per_peer_cost
        if self.config.profile == "bird":
            cost += BIRD_PER_PEER_SUPERLINEAR * len(self.sessions)
        return cost

    def _export_routes(self, session, routes):
        """Apply export policy + eBGP attribute rules for one peer.

        The post-policy attribute rewrite is memoized per distinct
        attribute set (routes packed into one received UPDATE share
        their ``PathAttributes``), and rewritten sets are interned so
        successive fan-out rounds reuse one flyweight whose wire
        encoding is already cached.
        """
        from repro.bgp.attributes import PathAttributes

        local_as = self.config.local_as
        is_ebgp = session.source_kind == "ebgp"
        evaluate = session.config.export_policy.evaluate
        rewritten = {}  # post-policy attributes -> rewritten attributes
        out = []
        for prefix, attributes in routes:
            exported = evaluate(prefix, attributes)
            if exported is None:
                continue
            if is_ebgp:
                cached = rewritten.get(exported)
                if cached is None:
                    cached = PathAttributes.intern(
                        exported.replace(
                            as_path=exported.as_path.prepend(local_as),
                            next_hop=self.stack.host.address,
                            local_pref=None,
                        )
                    )
                    rewritten[exported] = cached
                exported = cached
            elif exported.next_hop is None:
                cached = rewritten.get(exported)
                if cached is None:
                    cached = PathAttributes.intern(
                        exported.replace(next_hop=self.stack.host.address)
                    )
                    rewritten[exported] = cached
                exported = cached
            out.append((prefix, exported))
        return out

    def _split_by_afi(self, export):
        """Partition (prefix, attrs) pairs: v4 rides classic NLRI, v6
        rides MP_REACH_NLRI (RFC 4760)."""
        from repro.bgp.multiprotocol import attach_mp_reach
        from repro.bgp.prefixes import Prefix

        v4 = [(p, a) for p, a in export if p.afi == Prefix.AFI_IPV4]
        v6 = [(p, a) for p, a in export if p.afi == Prefix.AFI_IPV6]
        if not v6:
            return v4, []
        # v4-mapped next hop of this speaker (a real deployment would use
        # the interface's global v6 address)
        next_hop_v6 = (0xFFFF << 32) | ipv4_to_int(self.stack.host.address)
        by_attrs = {}
        order = []
        for prefix, attrs in v6:
            key = attrs.key()
            if key not in by_attrs:
                by_attrs[key] = (attrs, [])
                order.append(key)
            by_attrs[key][1].append(prefix)
        v6_messages = []
        for key in order:
            attrs, prefixes = by_attrs[key]
            mp_attrs = attach_mp_reach(attrs, next_hop_v6, prefixes)
            v6_messages.append((UpdateMessage(attributes=mp_attrs), len(prefixes)))
        return v4, v6_messages

    def _advertise_packed(self, session, plan):
        from repro.bgp.multiprotocol import mp_routes_of

        v4_export, v6_messages = plan.split(self)
        for message, route_count in v6_messages:
            reach, _unreach = mp_routes_of(message.attributes)
            for prefix in reach.nlri:
                session.adj_rib_out.record_advertise(prefix, message.attributes)
            cost = CONTROL_MESSAGE_COST + self.config.send_cost * route_count
            self.dispatch_send(session, message, generation_cost=cost)
        for message in plan.packed(v4_export):
            cache_key = message._pack_key
            if cache_key is None:
                cache_key = message._pack_key = (
                    message.attributes.key(), message.nlri,
                )
            if cache_key in self._generation_cache:
                cost = CONTROL_MESSAGE_COST + self.config.packed_copy_cost * len(message.nlri)
            else:
                self._generation_cache.add(cache_key)
                if len(self._generation_cache) > 4096:
                    self._generation_cache.clear()
                cost = None  # full generation cost
            for prefix in message.nlri:
                session.adj_rib_out.record_advertise(prefix, message.attributes)
            self.dispatch_send(session, message, generation_cost=cost)

    def _advertise_unpacked(self, session, plan):
        v4_export, v6_messages = plan.split(self)
        for message, route_count in v6_messages:
            cost = CONTROL_MESSAGE_COST + self.config.send_cost * route_count
            self.dispatch_send(session, message, generation_cost=cost)
        for prefix, attributes in v4_export:
            session.adj_rib_out.record_advertise(prefix, attributes)
            self.dispatch_send(session, UpdateMessage(attributes=attributes, nlri=[prefix]))

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------

    def established_sessions(self):
        return [s for s in self.sessions.values() if s.established]

    def route_count(self):
        return sum(len(vrf.loc_rib) for vrf in self.vrfs.values())

    def log(self, line):
        self.log_lines.append((self.engine.now, line))

    def __repr__(self):
        return (
            f"<BgpSpeaker {self.config.name!r} as={self.config.local_as}"
            f" peers={len(self.sessions)} routes={self.route_count()}>"
        )
