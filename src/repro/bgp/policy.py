"""Routing policy: prefix lists and route maps.

A :class:`RouteMap` is an ordered list of entries; each entry matches on
prefix lists, communities or AS-path membership and either denies the
route or permits it with attribute rewrites (local-pref, MED, community
additions, AS-path prepending).  Applied at import (Adj-RIB-In) and
export (Adj-RIB-Out) time, as the centralized controller would push them
to the gateway's BGP containers.
"""

from repro.bgp.radix import RadixTrie


class PrefixList:
    """Named list of prefixes; matches exact or covering prefixes.

    Backed by the path-compressed radix trie (DESIGN.md §14), so match
    cost is bounded by the queried prefix's length regardless of list
    size — full-table export policies stay O(32) per route.
    """

    def __init__(self, name, entries=(), match_longer=True):
        self.name = name
        self.match_longer = match_longer
        self.entries = []
        self._trie = RadixTrie()
        for prefix in entries:
            self.add(prefix)

    def add(self, prefix):
        self.entries.append(prefix)
        self._trie.insert(prefix, True)

    def matches(self, prefix):
        if self.match_longer:
            return self._trie.longest_match(prefix) is not None
        return self._trie.get(prefix) is not None


class PolicyAction:
    """Attribute rewrites applied by a permitting route-map entry."""

    def __init__(
        self,
        set_local_pref=None,
        set_med=None,
        add_communities=(),
        prepend_as=None,
        prepend_count=1,
        set_next_hop=None,
    ):
        self.set_local_pref = set_local_pref
        self.set_med = set_med
        self.add_communities = tuple(add_communities)
        self.prepend_as = prepend_as
        self.prepend_count = prepend_count
        self.set_next_hop = set_next_hop

    def apply(self, attributes):
        overrides = {}
        if self.set_local_pref is not None:
            overrides["local_pref"] = self.set_local_pref
        if self.set_med is not None:
            overrides["med"] = self.set_med
        if self.add_communities:
            merged = tuple(sorted(set(attributes.communities) | set(self.add_communities)))
            overrides["communities"] = merged
        if self.prepend_as is not None:
            overrides["as_path"] = attributes.as_path.prepend(
                self.prepend_as, self.prepend_count
            )
        if self.set_next_hop is not None:
            overrides["next_hop"] = self.set_next_hop
        return attributes.replace(**overrides) if overrides else attributes


class RouteMapEntry:
    """One clause: match conditions -> permit (with action) or deny."""

    def __init__(
        self,
        permit=True,
        match_prefix_list=None,
        match_community=None,
        match_as=None,
        action=None,
    ):
        self.permit = permit
        self.match_prefix_list = match_prefix_list
        self.match_community = match_community
        self.match_as = match_as
        self.action = action or PolicyAction()

    def matches(self, prefix, attributes):
        if self.match_prefix_list is not None and not self.match_prefix_list.matches(prefix):
            return False
        if self.match_community is not None and self.match_community not in attributes.communities:
            return False
        if self.match_as is not None and not attributes.as_path.contains(self.match_as):
            return False
        return True


class RouteMap:
    """Ordered clauses with an implicit trailing deny (like IOS/FRR)."""

    def __init__(self, name, entries=(), default_permit=False):
        self.name = name
        self.entries = list(entries)
        self.default_permit = default_permit

    def append(self, entry):
        self.entries.append(entry)
        return entry

    def evaluate(self, prefix, attributes):
        """Return rewritten attributes, or None when the route is denied."""
        for entry in self.entries:
            if entry.matches(prefix, attributes):
                if not entry.permit:
                    return None
                return entry.action.apply(attributes)
        return attributes if self.default_permit else None


#: A route map that permits everything untouched (the default when a peer
#: has no policy configured).
PERMIT_ALL = RouteMap("permit-all", default_permit=True)


# ----------------------------------------------------------------------
# serialization (deployment specs, fuzzer corpus entries)
# ----------------------------------------------------------------------

def policy_to_dict(route_map):
    """A JSON-safe description of ``route_map`` (inverse of
    :func:`policy_from_dict`).  Prefix-list matches serialize as prefix
    strings; ``None`` stays ``None`` (no policy configured)."""
    if route_map is None:
        return None
    entries = []
    for entry in route_map.entries:
        action = entry.action
        entries.append({
            "permit": entry.permit,
            "match_prefixes": (
                None if entry.match_prefix_list is None
                else sorted(str(p) for p in entry.match_prefix_list.entries)
            ),
            "match_community": entry.match_community,
            "match_as": entry.match_as,
            "set_local_pref": action.set_local_pref,
            "set_med": action.set_med,
            "add_communities": list(action.add_communities),
            "prepend_as": action.prepend_as,
            "prepend_count": action.prepend_count,
        })
    return {
        "name": route_map.name,
        "default_permit": route_map.default_permit,
        "entries": entries,
    }


def policy_from_dict(data):
    """Rebuild a :class:`RouteMap` from :func:`policy_to_dict` output."""
    if data is None:
        return None
    from repro.bgp.prefixes import Prefix

    entries = []
    for spec in data.get("entries", ()):
        prefix_list = None
        if spec.get("match_prefixes") is not None:
            prefix_list = PrefixList(
                f"{data['name']}-pl",
                entries=[Prefix.parse(p) for p in spec["match_prefixes"]],
            )
        entries.append(RouteMapEntry(
            permit=spec.get("permit", True),
            match_prefix_list=prefix_list,
            match_community=spec.get("match_community"),
            match_as=spec.get("match_as"),
            action=PolicyAction(
                set_local_pref=spec.get("set_local_pref"),
                set_med=spec.get("set_med"),
                add_communities=tuple(spec.get("add_communities", ())),
                prepend_as=spec.get("prepend_as"),
                prepend_count=spec.get("prepend_count", 1),
            ),
        ))
    return RouteMap(
        data["name"], entries=entries,
        default_permit=data.get("default_permit", False),
    )
