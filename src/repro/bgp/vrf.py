"""VRF: virtual routing and forwarding instances.

§3.1.2: "the main thread may maintain multiple BGP routing tables using
the virtual routing and forwarding (VRF) technique, where each VRF
usually corresponds to a peering AS".  A VRF bundles a Loc-RIB with the
peers assigned to it; the underlay binds each VRF to a VXLAN segment on
the host (§3.2.3).
"""

from repro.bgp.rib import LocRib


class Vrf:
    """One routing instance inside a BGP process."""

    def __init__(self, name, local_as, router_id, vxlan_vni=None):
        self.name = name
        self.local_as = local_as
        self.router_id = router_id
        self.vxlan_vni = vxlan_vni
        self.loc_rib = LocRib(local_as=local_as, router_id=router_id)
        self.peer_ids = set()

    def attach_peer(self, peer_id):
        self.peer_ids.add(peer_id)

    def detach_peer(self, peer_id):
        self.peer_ids.discard(peer_id)

    def route_count(self):
        return len(self.loc_rib)

    def __repr__(self):
        return f"<Vrf {self.name!r} as={self.local_as} routes={len(self.loc_rib)}>"
