"""DRAGON-style route aggregation (DESIGN.md §14).

Two independent, opt-in layers, both default-off so every existing
scenario stays bit-identical:

**Snapshot aggregation** (lossless, KV path): complete uniform dyadic
subtrees in a Loc-RIB snapshot chunk — every length-M prefix under a
root P present with a single candidate sharing (peer, source kind,
attributes) — collapse into one ``{"aggregate", "member_length", ...}``
record; recovery expands it back to the identical member set.  Purely
an encoding: the replicated byte count shrinks, the recovered RIB is
bit-identical.  Chunk bucketing keys on each prefix's aggregate root so
siblings co-locate in a chunk and stay collapsible under incremental
compaction.

**Export aggregation** (DRAGON route-consistency mode, speaker path):
for configured aggregate prefixes, advertise one aggregate route when
the covered more-specifics share attributes, suppress the uniform
members, and punch deaggregation holes — advertise the divergent
more-specifics individually — so the receiver's longest-prefix match
still forwards every destination exactly as the unaggregated table
would (more-specific wins; the uniform remainder falls through to the
aggregate, whose attributes equal the suppressed members').  Aggregates
never enter the Loc-RIB: the transformation lives entirely at the
export boundary, which keeps ``rib_digest`` and the convergence oracles
blind to it.  The safety argument requires export policies that are
pure functions of attributes (equal attributes in, equal attributes
out); prefix-matching export policies can tell members apart and are
rejected by construction nowhere — documented, not enforced (§14).
"""

from repro.bgp.prefixes import Prefix
from repro.bgp.rib import Route

#: Aggregate-root span for snapshot chunk bucketing: prefixes bucket by
#: their ancestor at this length, so a /16's /24s co-locate in a chunk.
AGGREGATE_ROOT_LEN = 16

#: An export aggregate activates only with at least this many covered
#: more-specifics (a 1-member "aggregate" would just rename the route).
MIN_AGGREGATE_MEMBERS = 2


def aggregate_root(prefix, span=AGGREGATE_ROOT_LEN):
    """The chunk-bucketing root for ``prefix``: its ancestor at ``span``
    (or the prefix itself when already shorter)."""
    if prefix.length <= span:
        return prefix
    return Prefix(prefix.value, span, prefix.afi)


# ---------------------------------------------------------------------------
# snapshot aggregation (lossless encode/decode of chunk entries)
# ---------------------------------------------------------------------------

def collapse_prefix_entries(loc_rib, prefixes):
    """Encode one chunk's Loc-RIB entries, collapsing complete uniform
    subtrees.

    ``prefixes`` is the chunk's member set.  Multi-candidate prefixes
    and the default route pass through as plain records.  Returns the
    encoded entry list in deterministic order.
    """
    plain = []
    # (afi, value, length, member_length, sig) -> one plain record kept
    # for the case the item never merges (member_length == length).
    by_len = {}
    for prefix in prefixes:
        records = loc_rib.export_prefix_entries(prefix)
        if len(records) == 1 and prefix.length > 0:
            record = records[0]
            sig = (record["peer_id"], record["source_kind"],
                   record["attributes"])
            key = (prefix.afi, prefix.value, prefix.length, prefix.length,
                   sig)
            by_len.setdefault(prefix.length, {})[key] = record
        else:
            plain.extend(records)
    # Merge sibling pairs bottom-up: two complete subtrees at the same
    # position length, member length and signature combine into their
    # parent's complete subtree.  Completeness is inductive — a leaf is
    # the (trivially complete) subtree of its own prefix.
    for length in range(max(by_len, default=0), 0, -1):
        level = by_len.get(length)
        if not level:
            continue
        for key in list(level):
            record = level.get(key)
            if record is None:
                continue
            afi, value, _length, member_length, sig = key
            bits = 32 if afi == Prefix.AFI_IPV4 else 128
            mask = 1 << (bits - length)
            sibling = (afi, value ^ mask, length, member_length, sig)
            twin = level.get(sibling)
            if twin is None or sibling == key:
                continue
            del level[key]
            del level[sibling]
            parent = (afi, value & ~mask, length - 1, member_length, sig)
            by_len.setdefault(length - 1, {})[parent] = record
    encoded = list(plain)
    for length in by_len:
        for key, record in by_len[length].items():
            afi, value, pos_length, member_length, sig = key
            if member_length == pos_length:
                encoded.append(record)  # never merged: plain entry
            else:
                encoded.append({
                    "aggregate": str(Prefix(value, pos_length, afi)),
                    "member_length": member_length,
                    "peer_id": sig[0],
                    "source_kind": sig[1],
                    "attributes": sig[2],
                })
    encoded.sort(key=lambda rec: (rec.get("prefix") or rec["aggregate"],
                                  rec.get("member_length", -1),
                                  str(rec["peer_id"])))
    return encoded


def expand_snapshot_entry(entry):
    """Decode one snapshot record into plain per-prefix records.

    Plain records yield themselves; an aggregate record enumerates its
    complete member set."""
    if "aggregate" not in entry:
        yield entry
        return
    root = Prefix.parse(entry["aggregate"])
    member_length = entry["member_length"]
    stride = 1 << (root.bits - member_length)
    for index in range(1 << (member_length - root.length)):
        member = Prefix(root.value + index * stride, member_length, root.afi)
        yield {
            "prefix": str(member),
            "peer_id": entry["peer_id"],
            "source_kind": entry["source_kind"],
            "attributes": entry["attributes"],
        }


def expand_snapshot_entries(entries):
    for entry in entries:
        yield from expand_snapshot_entry(entry)


# ---------------------------------------------------------------------------
# export aggregation (DRAGON route-consistency mode)
# ---------------------------------------------------------------------------

class ExportAggregator:
    """Per-speaker aggregate-export engine.

    Owns the configured aggregate prefixes and, per (peer, aggregate),
    the advertised state — the aggregate's current attributes and the
    holes punched through it — so each flush emits only deltas.  The
    Loc-RIB stays untouched; callers splice the emitted changes into
    the normal advertisement flow, where Adj-RIB-Out bookkeeping and
    MRAI pacing apply unchanged.
    """

    def __init__(self, speaker_name, aggregates,
                 min_members=MIN_AGGREGATE_MEMBERS):
        self.aggregates = tuple(sorted(aggregates))
        self.min_members = min_members
        self.peer_id = f"aggregate:{speaker_name}"
        # session peer_id -> {aggregate: {"attrs", "holes": {prefix: attrs},
        #                                 "suppressed": set()}}
        self._state = {}
        self.aggregates_advertised = 0
        self.holes_punched = 0
        self.members_suppressed = 0

    def covering_aggregate(self, prefix):
        """The configured aggregate covering ``prefix``, if any (the
        shortest wins when nested aggregates overlap)."""
        for aggregate in self.aggregates:
            if aggregate.contains(prefix) and aggregate != prefix:
                return aggregate
        return None

    def drop_session(self, peer_id):
        self._state.pop(peer_id, None)

    # -- evaluation ---------------------------------------------------------

    def _members(self, loc_rib, aggregate, session):
        members = []
        for prefix, route in loc_rib.covered_best(aggregate):
            if prefix == aggregate:
                continue
            if route.peer_id == session.peer_id:
                continue  # split horizon: never back to the member's source
            if route.source_kind == "ibgp" and session.source_kind == "ibgp":
                continue  # iBGP split horizon, as in _queue_change
            members.append((prefix, route))
        return members

    def _evaluate(self, loc_rib, aggregate, session):
        """Current export decision for one aggregate toward one peer.

        Returns ``None`` (inert: a real route exists at the aggregate's
        own prefix, or too few members) or ``(attrs, holes, suppressed)``
        where ``holes`` maps divergent member prefixes to their routes
        and ``suppressed`` maps uniform member prefixes to theirs.
        """
        if loc_rib.best(aggregate) is not None:
            return None
        members = self._members(loc_rib, aggregate, session)
        if len(members) < self.min_members:
            return None
        # Deterministic representative: the first member in prefix
        # order carries the aggregate's attributes.
        chosen = members[0][1].attributes
        holes, suppressed = {}, {}
        for prefix, route in members:
            if route.attributes == chosen:
                suppressed[prefix] = route
            else:
                holes[prefix] = route
        return chosen, holes, suppressed

    # -- change-flow transform ---------------------------------------------

    def transform_changes(self, loc_rib, session, changes):
        """Rewrite one session's pending change map through aggregation.

        Changes to prefixes under no configured aggregate pass through.
        A change under an aggregate marks it dirty; the dirty
        aggregates re-evaluate and emit delta announcements/withdrawals
        against the per-session advertised state.
        """
        out = {}
        dirty = set()
        for prefix, route in changes.items():
            aggregate = self.covering_aggregate(prefix)
            if aggregate is None:
                out[prefix] = route
            else:
                dirty.add(aggregate)
        for aggregate in sorted(dirty):
            self._emit(loc_rib, session, aggregate, out)
        return out

    def transform_table(self, loc_rib, session, routes):
        """Rewrite a full-table advertisement (session establishment).

        Resets the session's aggregate state, then collapses the route
        list: uniform members drop out, aggregates and holes go in.
        """
        self._state[session.peer_id] = {}
        passthrough = [
            (prefix, attributes) for prefix, attributes in routes
            if self.covering_aggregate(prefix) is None
        ]
        synthesized = []
        for aggregate in self.aggregates:
            changes = {}
            self._emit(loc_rib, session, aggregate, changes)
            for prefix, route in sorted(changes.items()):
                if route is not None:
                    synthesized.append((prefix, route.attributes))
        return passthrough + synthesized

    def _emit(self, loc_rib, session, aggregate, out):
        """Delta between the session's advertised state for ``aggregate``
        and its current evaluation, appended to ``out``."""
        state = self._state.setdefault(session.peer_id, {})
        previous = state.get(aggregate)
        evaluation = self._evaluate(loc_rib, aggregate, session)
        if evaluation is None:
            if previous is not None:
                # Completeness broke (or a real aggregate-prefix route
                # appeared): withdraw the aggregate, re-export every
                # surviving member individually.
                out[aggregate] = None
                for prefix in (set(previous["holes"])
                               | previous["suppressed"]):
                    best = loc_rib.best(prefix)
                    out[prefix] = best if (
                        best is not None and best.peer_id != session.peer_id
                    ) else None
                del state[aggregate]
            else:
                # Never aggregated: the member changes flow as-is.
                for prefix, route in self._member_changes(
                        loc_rib, session, aggregate):
                    out[prefix] = route
            return
        attrs, holes, suppressed = evaluation
        if previous is None or previous["attrs"] != attrs:
            out[aggregate] = Route(aggregate, attrs, self.peer_id, "local")
            self.aggregates_advertised += 1
        known_holes = previous["holes"] if previous else {}
        tracked = (set(known_holes) | previous["suppressed"]) if previous else set()
        for prefix, route in holes.items():
            if known_holes.get(prefix) != route.attributes:
                out[prefix] = route
                self.holes_punched += 1
        for prefix in suppressed:
            if prefix not in tracked or prefix in known_holes:
                # Newly uniform: withdraw any individual advertisement
                # (the aggregate now covers it).  _flush_pending skips
                # the withdrawal when nothing was ever advertised.
                out[prefix] = None
                self.members_suppressed += 1
        for prefix in tracked - set(holes) - set(suppressed):
            out[prefix] = None  # member left the table entirely
        state[aggregate] = {
            "attrs": attrs,
            "holes": {prefix: route.attributes
                      for prefix, route in holes.items()},
            "suppressed": set(suppressed),
        }

    def _member_changes(self, loc_rib, session, aggregate):
        """Pass-through emission when an aggregate is inert: the
        members' current best routes (the caller lost the original
        change records when it marked the aggregate dirty)."""
        for prefix, route in self._members(loc_rib, aggregate, session):
            yield prefix, route
        # Members withdrawn from the table need explicit withdrawal;
        # covered_best no longer lists them, but Adj-RIB-Out does.
        for prefix in session.adj_rib_out.prefixes():
            if (aggregate.contains(prefix) and prefix != aggregate
                    and loc_rib.best(prefix) is None):
                yield prefix, None
