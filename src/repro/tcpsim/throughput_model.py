"""Analytic model of TCP throughput under a delayed acknowledgment.

Used to cross-check the Fig. 5(a) simulation.  Steady-state maximum
throughput of a loss-free connection is the minimum of three caps:

1. the sender CPU: R segments/s, each carrying up to ``min(write_size,
   MSS)`` useful bytes (writes larger than the MSS split into ceil(w/MSS)
   segments averaging w/ceil(w/MSS) bytes);
2. the window: W bytes per effective round trip, where the delayed
   acknowledgment adds ``ack_delay`` to the path RTT;
3. the link bandwidth.

The threshold the paper observes — "the maximum delay which does not
affect the TCP performance decreases as the packet size increases" — is
the ack_delay at which cap (2) dips below cap (1):
``d* = W / (R * avg_segment_bytes) - RTT``.
"""

import math

from repro.sim.calibration import (
    PEERING_LINK_BANDWIDTH,
    TCP_MSS,
    TCP_RECEIVE_WINDOW,
    TCP_SENDER_SEGMENT_RATE,
)


def average_segment_bytes(write_size, mss=TCP_MSS):
    """Useful payload bytes per segment for an app writing ``write_size``."""
    if write_size <= 0:
        raise ValueError("write_size must be positive")
    segments = math.ceil(write_size / mss)
    return write_size / segments


def max_throughput(
    write_size,
    ack_delay,
    rtt,
    window=TCP_RECEIVE_WINDOW,
    segment_rate=TCP_SENDER_SEGMENT_RATE,
    mss=TCP_MSS,
    link_bandwidth=PEERING_LINK_BANDWIDTH,
):
    """Maximum steady-state throughput in bits/second."""
    seg_bytes = average_segment_bytes(write_size, mss)
    cpu_cap = segment_rate * seg_bytes * 8.0
    window_cap = window * 8.0 / (rtt + ack_delay)
    return min(cpu_cap, window_cap, link_bandwidth)


def delay_threshold(
    write_size,
    rtt,
    window=TCP_RECEIVE_WINDOW,
    segment_rate=TCP_SENDER_SEGMENT_RATE,
    mss=TCP_MSS,
):
    """The largest ack delay that does not reduce throughput (Fig. 5a).

    Returns 0.0 when even an undelayed ACK path is window-limited.
    """
    seg_bytes = average_segment_bytes(write_size, mss)
    threshold = window / (segment_rate * seg_bytes) - rtt
    return max(threshold, 0.0)
