"""A from-scratch userspace TCP over the simulated network.

TENSOR's NSR mechanism needs three things from TCP that a simple message
pipe cannot provide: real sequence/ACK numbers a remote peer tracks
(§3.1.2 "Matching ACK numbers"), an egress interception point for ACK
packets (the Netfilter OUTPUT hook), and TCP_REPAIR-style state export /
import so a backup can adopt a live connection.  This package implements a
compact but genuine TCP: 3-way handshake, cumulative ACKs, out-of-order
reassembly, retransmission with RTO backoff and fast retransmit, Reno
congestion control, flow control, FIN/RST teardown, and repair mode.

Simplifications (documented here once): sequence numbers are unbounded
Python ints (no 2^32 wraparound), the advertised window is not capped at
16 bits (no window-scale option needed), and there are no SACK/timestamps.
None of these affect the mechanisms the paper evaluates.
"""

from repro.tcpsim.segment import Segment
from repro.tcpsim.state import TcpState
from repro.tcpsim.congestion import RenoCongestionControl
from repro.tcpsim.connection import TcpConnection
from repro.tcpsim.stack import TcpStack, TcpStackConfig
from repro.tcpsim.repair import TcpRepairState, export_tcp_state, import_tcp_state
from repro.tcpsim.throughput_model import max_throughput

__all__ = [
    "Segment",
    "TcpState",
    "RenoCongestionControl",
    "TcpConnection",
    "TcpStack",
    "TcpStackConfig",
    "TcpRepairState",
    "export_tcp_state",
    "import_tcp_state",
    "max_throughput",
]
