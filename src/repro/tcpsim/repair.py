"""TCP_REPAIR-style state export and import.

Linux's ``TCP_REPAIR`` socket option lets a privileged process read a live
socket's sequence state and later rebuild an equivalent socket elsewhere
without any packets being exchanged.  The paper uses it at connection
start to learn the initial SEQ/ACK numbers (§3.1.2) and, by extension, to
rebuild the connection on the backup router during migration.

``export_tcp_state`` snapshots a connection; ``import_tcp_state`` rebuilds
it inside another stack.  The imported connection restarts with nothing in
flight: every byte past the peer's last cumulative ACK is queued for
(re)transmission, and the peer's own retransmissions cover the opposite
direction.  This is exactly why TENSOR only needs the *unapplied* messages
in the database — TCP retransmission repairs the rest.
"""

from repro.tcpsim.connection import TcpConnection
from repro.tcpsim.state import TcpState


class TcpRepairState:
    """A serializable snapshot of one connection endpoint."""

    FIELDS = (
        "local_addr",
        "local_port",
        "remote_addr",
        "remote_port",
        "iss",
        "irs",
        "snd_una",
        "rcv_nxt",
        "snd_wnd",
        "mss",
        "send_queue",
    )

    def __init__(self, **kwargs):
        for field in self.FIELDS:
            setattr(self, field, kwargs[field])

    def to_dict(self):
        data = {field: getattr(self, field) for field in self.FIELDS}
        data["send_queue"] = bytes(data["send_queue"])
        return data

    @classmethod
    def from_dict(cls, data):
        return cls(**{field: data[field] for field in cls.FIELDS})

    def __eq__(self, other):
        return isinstance(other, TcpRepairState) and self.to_dict() == other.to_dict()

    def __repr__(self):
        return (
            f"<TcpRepairState {self.local_addr}:{self.local_port}->"
            f"{self.remote_addr}:{self.remote_port} una={self.snd_una}"
            f" rcv={self.rcv_nxt} queued={len(self.send_queue)}B>"
        )


def export_tcp_state(conn):
    """Snapshot ``conn`` (must be synchronized)."""
    if not conn.state.is_synchronized():
        raise ValueError(f"cannot export {conn.state.value} connection")
    return TcpRepairState(
        local_addr=conn.local_addr,
        local_port=conn.local_port,
        remote_addr=conn.remote_addr,
        remote_port=conn.remote_port,
        iss=conn.iss,
        irs=conn.irs,
        snd_una=conn.snd_una,
        rcv_nxt=conn.rcv_nxt,
        snd_wnd=conn.snd_wnd,
        mss=conn.mss,
        send_queue=bytes(conn._send_buffer),
    )


def import_tcp_state(stack, state, on_data=None, on_close=None, on_reset=None):
    """Rebuild a connection inside ``stack`` from a repair snapshot.

    The stack's host must answer for ``state.local_addr`` (the underlay
    rebinding the service address to the backup is what makes this true).
    Call :func:`resume_connection` afterwards to start catching up.
    """
    if stack.host.address != state.local_addr:
        raise ValueError(
            f"stack host address {stack.host.address} does not answer for"
            f" repaired local address {state.local_addr}"
        )
    conn = TcpConnection(stack, state.local_port, state.remote_addr, state.remote_port)
    conn.iss = state.iss
    conn.irs = state.irs
    conn.snd_una = state.snd_una
    conn.snd_nxt = state.snd_una  # nothing in flight; queue retransmits all
    conn.rcv_nxt = state.rcv_nxt
    conn.snd_wnd = max(state.snd_wnd, conn.mss)
    conn.mss = state.mss
    conn.cc.mss = state.mss
    conn._send_buffer = bytearray(state.send_queue)
    conn.state = TcpState.ESTABLISHED
    conn.established_at = stack.engine.now
    conn.on_data = on_data
    conn.on_close = on_close
    conn.on_reset = on_reset
    stack.adopt(conn)
    return conn


def resume_connection(conn):
    """Kick a repaired connection: probe the peer and push queued bytes.

    The pure ACK tells the peer our receive position (it retransmits
    anything newer), and the send path re-emits every queued byte.
    """
    conn._send_pure_ack()
    conn._try_send()
    if conn.bytes_in_flight > 0:
        conn._arm_rexmit()
