"""Reno-style congestion control.

The congestion window is what turns a delayed acknowledgment into a
throughput cap (Fig. 5(a)): with a window of W bytes and an effective
round trip of RTT + ack_delay, steady-state throughput is bounded by
W / (RTT + ack_delay).  Slow start, congestion avoidance, fast retransmit
halving and timeout collapse follow RFC 5681.
"""

from repro.sim.calibration import TCP_INITIAL_CWND_SEGMENTS


class RenoCongestionControl:
    """RFC 5681 congestion control, byte-counted."""

    def __init__(self, mss, initial_window_segments=TCP_INITIAL_CWND_SEGMENTS):
        self.mss = mss
        self.cwnd = initial_window_segments * mss
        self.ssthresh = float("inf")
        self.fast_recovery = False
        self._avoidance_acc = 0
        # counters for tests/diagnostics
        self.slow_start_exits = 0
        self.loss_events = 0
        self.timeout_events = 0

    @property
    def in_slow_start(self):
        return self.cwnd < self.ssthresh

    def on_ack(self, acked_bytes):
        """New data acknowledged."""
        if self.fast_recovery:
            # Full ACK after fast retransmit: deflate to ssthresh.
            self.fast_recovery = False
            self.cwnd = max(self.ssthresh, 2 * self.mss)
            return
        if self.in_slow_start:
            self.cwnd += min(acked_bytes, self.mss)
            if not self.in_slow_start:
                self.slow_start_exits += 1
        else:
            # Congestion avoidance: one MSS per cwnd of acked bytes.
            self._avoidance_acc += acked_bytes
            if self._avoidance_acc >= self.cwnd:
                self._avoidance_acc = 0
                self.cwnd += self.mss

    def on_fast_retransmit(self):
        """Triple duplicate ACK: multiplicative decrease, fast recovery."""
        self.loss_events += 1
        self.ssthresh = max(self.cwnd / 2.0, 2 * self.mss)
        self.cwnd = self.ssthresh + 3 * self.mss
        self.fast_recovery = True

    def on_duplicate_ack_in_recovery(self):
        """Window inflation while in fast recovery."""
        if self.fast_recovery:
            self.cwnd += self.mss

    def on_timeout(self):
        """RTO expiry: collapse to one segment and re-enter slow start."""
        self.timeout_events += 1
        self.ssthresh = max(self.cwnd / 2.0, 2 * self.mss)
        self.cwnd = self.mss
        self.fast_recovery = False
        self._avoidance_acc = 0

    def __repr__(self):
        phase = "ss" if self.in_slow_start else "ca"
        return f"<Reno cwnd={self.cwnd:.0f} ssthresh={self.ssthresh} {phase}>"
