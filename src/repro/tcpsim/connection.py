"""The TCP connection state machine.

One :class:`TcpConnection` is one end of a connection.  It owns the send
and receive buffers, the retransmission machinery and the congestion
controller, and talks to the wire exclusively through its
:class:`~repro.tcpsim.stack.TcpStack`, whose egress path runs the Netfilter
OUTPUT chain — the interception point TENSOR's ``tcp_queue`` relies on.
"""

from repro.sim.calibration import (
    TCP_MAX_RTO,
    TCP_MIN_RTO,
    TCP_MSS,
    TCP_RECEIVE_WINDOW,
    TCP_USER_TIMEOUT,
)
from repro.sim.process import Timer
from repro.tcpsim.segment import Segment
from repro.tcpsim.state import TcpState

#: Time spent in TIME_WAIT (2*MSL).  Kept short so simulations that churn
#: many connections stay fast; it only needs to exceed realistic segment
#: lifetimes on the simulated fabric.
TIME_WAIT_DURATION = 1.0


class TcpConnection:
    """One endpoint of a TCP connection.

    Application callbacks (all optional):

    - ``on_established(conn)`` — handshake completed.
    - ``on_data(conn, data)``  — in-order bytes arrived.
    - ``on_close(conn)``       — orderly teardown finished.
    - ``on_reset(conn, reason)`` — connection aborted (RST, user timeout).
    """

    def __init__(self, stack, local_port, remote_addr, remote_port):
        self.stack = stack
        self.engine = stack.engine
        self.local_port = local_port
        self.remote_addr = remote_addr
        self.remote_port = remote_port

        self.state = TcpState.CLOSED
        self.mss = TCP_MSS
        #: Optional application-imposed segment size cap (the iperf workload
        #: of Fig. 5(a) uses TCP_NODELAY small writes, which emit write-size
        #: segments instead of MSS-coalesced ones).
        self.mss_limit = None
        self.rcv_wnd = TCP_RECEIVE_WINDOW

        # Sequence variables (RFC 793 names).  Unbounded ints, see package
        # docstring for the no-wraparound simplification.
        self.iss = stack.next_isn()
        self.irs = None
        self.snd_una = self.iss
        self.snd_nxt = self.iss
        self.snd_wnd = self.mss  # until the peer advertises
        self.rcv_nxt = None

        self._send_buffer = bytearray()  # bytes in [snd_una, write edge)
        self._ooo_segments = {}  # seq -> payload, beyond rcv_nxt
        self._fin_pending = False
        self._fin_seq = None  # sequence number our FIN occupies

        self.cc = stack.make_congestion_control(self.mss)

        # RTO estimation (RFC 6298).
        self.srtt = None
        self.rttvar = None
        self.rto = 1.0
        self._rtt_sample_seq = None
        self._rtt_sample_time = None

        self._rexmit_timer = Timer(self.engine, self._on_rexmit_timeout, "tcp-rexmit")
        self._rexmit_started = None
        self._persist_timer = Timer(self.engine, self._on_persist_timeout, "tcp-persist")
        self._time_wait_timer = Timer(self.engine, self._on_time_wait_done, "time-wait")
        self._dupacks = 0

        self.on_established = None
        self.on_data = None
        self.on_close = None
        self.on_reset = None

        # Statistics (read by tests and benchmarks).
        self.segments_sent = 0
        self.segments_received = 0
        self.retransmissions = 0
        self.bytes_sent = 0
        self.bytes_delivered = 0
        self.established_at = None

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------

    @property
    def local_addr(self):
        return self.stack.host.address

    @property
    def four_tuple(self):
        return (self.local_addr, self.local_port, self.remote_addr, self.remote_port)

    @property
    def bytes_in_flight(self):
        return self.snd_nxt - self.snd_una

    @property
    def bytes_unsent(self):
        return len(self._send_buffer) - self.bytes_in_flight

    @property
    def cumulative_bytes_received(self):
        """App-stream bytes received so far — the quantity the paper's main
        thread adds to the initial SEQ number to infer ACK numbers."""
        if self.rcv_nxt is None or self.irs is None:
            return 0
        fin_adjust = 1 if self.state in (
            TcpState.CLOSE_WAIT,
            TcpState.CLOSING,
            TcpState.LAST_ACK,
            TcpState.TIME_WAIT,
        ) else 0
        return self.rcv_nxt - (self.irs + 1) - fin_adjust

    # ------------------------------------------------------------------
    # opening
    # ------------------------------------------------------------------

    def open_active(self):
        """Send SYN (active open)."""
        self.state = TcpState.SYN_SENT
        self._emit(Segment(self.iss, 0, Segment.SYN, self.rcv_wnd, mss=self.mss))
        self.snd_nxt = self.iss + 1
        self._arm_rexmit()

    def open_passive(self, syn_segment):
        """React to a received SYN (stack calls this for listeners)."""
        self.state = TcpState.SYN_RCVD
        self.irs = syn_segment.seq
        self.rcv_nxt = syn_segment.seq + 1
        if syn_segment.mss:
            self.mss = min(self.mss, syn_segment.mss)
            self.cc.mss = self.mss
        self.snd_wnd = syn_segment.window
        self._emit(
            Segment(
                self.iss,
                self.rcv_nxt,
                Segment.SYN | Segment.ACK,
                self.rcv_wnd,
                mss=self.mss,
            )
        )
        self.snd_nxt = self.iss + 1
        self._arm_rexmit()

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------

    def send(self, data):
        """Queue application bytes and transmit as windows allow."""
        if not self.state.can_send_data():
            raise ConnectionError(
                f"send() in state {self.state.value} on {self.four_tuple}"
            )
        if not data:
            return
        self._send_buffer.extend(data)
        self._try_send()

    def close(self):
        """Orderly close: FIN after all queued data is sent."""
        if self.state in (TcpState.CLOSED, TcpState.TIME_WAIT):
            return
        if self.state in (TcpState.SYN_SENT, TcpState.SYN_RCVD):
            self._teardown(notify_close=True)
            return
        self._fin_pending = True
        self._maybe_send_fin()

    def abort(self):
        """Send RST and drop all state."""
        if self.state.is_synchronized():
            self._emit(Segment(self.snd_nxt, self.rcv_nxt or 0, Segment.RST | Segment.ACK, 0))
        self._teardown(notify_close=False)

    def _maybe_send_fin(self):
        if not self._fin_pending or self._fin_seq is not None:
            return
        if self.bytes_unsent > 0:
            return  # data still queued; FIN goes after it
        self._fin_seq = self.snd_nxt
        self._emit(Segment(self.snd_nxt, self.rcv_nxt, Segment.FIN | Segment.ACK, self.rcv_wnd))
        self.snd_nxt += 1
        if self.state is TcpState.ESTABLISHED:
            self.state = TcpState.FIN_WAIT_1
        elif self.state is TcpState.CLOSE_WAIT:
            self.state = TcpState.LAST_ACK
        self._arm_rexmit()

    def _effective_window(self):
        return min(self.cc.cwnd, self.snd_wnd)

    def _try_send(self):
        """Transmit new data as the congestion and peer windows allow."""
        if not self.state.can_send_data() and self.state is not TcpState.FIN_WAIT_1:
            return
        while True:
            window = self._effective_window()
            room = window - self.bytes_in_flight
            unsent = self.bytes_unsent
            if unsent <= 0:
                break
            seg_cap = self.mss if self.mss_limit is None else min(self.mss, self.mss_limit)
            chunk = int(min(seg_cap, room, unsent))
            if chunk <= 0:
                if self.snd_wnd == 0:
                    self._arm_persist()
                break
            offset = self.bytes_in_flight
            payload = bytes(self._send_buffer[offset : offset + chunk])
            seg = Segment(self.snd_nxt, self.rcv_nxt, Segment.ACK, self.rcv_wnd, payload)
            self._emit(seg)
            self.bytes_sent += chunk
            self._take_rtt_sample(self.snd_nxt + chunk)
            self.snd_nxt += chunk
            if not self._rexmit_timer.armed:
                self._arm_rexmit()
        self._maybe_send_fin()

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------

    def on_segment(self, seg):
        """Entry point for every segment the stack demuxes to us."""
        self.segments_received += 1
        if seg.rst:
            self._handle_rst(seg)
            return
        handler = {
            TcpState.SYN_SENT: self._segment_in_syn_sent,
            TcpState.SYN_RCVD: self._segment_in_syn_rcvd,
        }.get(self.state)
        if handler is not None:
            handler(seg)
            return
        if self.state is TcpState.TIME_WAIT:
            # Retransmitted FIN: re-ack it.
            if seg.fin:
                self._send_pure_ack()
            return
        if self.state.is_synchronized():
            self._segment_in_synchronized(seg)

    def _handle_rst(self, seg):
        # Accept RST only if it is within the window (blind-RST guard).
        if self.state.is_synchronized() and self.rcv_nxt is not None:
            if not (self.rcv_nxt <= seg.seq <= self.rcv_nxt + self.rcv_wnd):
                return
        self._teardown(notify_close=False, reset_reason="rst")

    def _segment_in_syn_sent(self, seg):
        if not (seg.syn and seg.has_ack):
            return
        if seg.ack != self.iss + 1:
            self._emit(Segment(seg.ack, 0, Segment.RST, 0))
            return
        self.irs = seg.seq
        self.rcv_nxt = seg.seq + 1
        self.snd_una = seg.ack
        self.snd_wnd = seg.window
        if seg.mss:
            self.mss = min(self.mss, seg.mss)
            self.cc.mss = self.mss
        self._rexmit_timer.stop()
        self.state = TcpState.ESTABLISHED
        self.established_at = self.engine.now
        self._send_pure_ack()
        if self.on_established:
            self.on_established(self)
        self._try_send()

    def _segment_in_syn_rcvd(self, seg):
        if seg.syn and not seg.has_ack:
            # Duplicate SYN: retransmit SYN-ACK.
            self._emit(
                Segment(self.iss, self.rcv_nxt, Segment.SYN | Segment.ACK, self.rcv_wnd, mss=self.mss)
            )
            return
        if seg.has_ack and seg.ack == self.iss + 1:
            self.snd_una = seg.ack
            self.snd_wnd = seg.window
            self._rexmit_timer.stop()
            self.state = TcpState.ESTABLISHED
            self.established_at = self.engine.now
            self.stack.notify_accepted(self)
            if self.on_established:
                self.on_established(self)
            if seg.payload or seg.fin:
                self._segment_in_synchronized(seg)

    def _segment_in_synchronized(self, seg):
        if seg.has_ack:
            self._process_ack(seg)
        if seg.payload:
            self._process_payload(seg)
        if seg.fin:
            self._process_fin(seg)

    # -- ACK processing -------------------------------------------------

    def _process_ack(self, seg):
        if seg.ack > self.snd_nxt:
            return  # acks something we never sent; ignore
        if seg.ack > self.snd_una:
            acked = seg.ack - self.snd_una
            fin_acked = self._fin_seq is not None and seg.ack > self._fin_seq
            data_acked = acked - (1 if fin_acked else 0)
            if data_acked > 0:
                del self._send_buffer[:data_acked]
                self.cc.on_ack(data_acked)
            self.snd_una = seg.ack
            self.snd_wnd = seg.window
            self._dupacks = 0
            self._complete_rtt_sample(seg.ack)
            self._rexmit_started = None
            # Forward progress collapses exponential backoff (as Linux
            # does): without this, a peer recovering from a long outage
            # drips at one segment per maxed-out RTO.
            if self.srtt is not None:
                self.rto = min(max(self.srtt + 4 * self.rttvar, TCP_MIN_RTO), TCP_MAX_RTO)
            else:
                self.rto = 1.0
            if self.bytes_in_flight > 0 or (
                self._fin_seq is not None and not fin_acked
            ):
                self._arm_rexmit()
            else:
                self._rexmit_timer.stop()
            if fin_acked:
                self._fin_acked()
            self._try_send()
        elif seg.ack == self.snd_una:
            self.snd_wnd = seg.window
            if self.bytes_in_flight > 0 and not seg.payload and not seg.fin:
                self._dupacks += 1
                if self._dupacks == 3:
                    self.retransmissions += 1
                    self.cc.on_fast_retransmit()
                    self._retransmit_head()
                elif self._dupacks > 3:
                    self.cc.on_duplicate_ack_in_recovery()
                    self._try_send()
            else:
                self._try_send()

    def _fin_acked(self):
        if self.state is TcpState.FIN_WAIT_1:
            self.state = TcpState.FIN_WAIT_2
        elif self.state is TcpState.CLOSING:
            self._enter_time_wait()
        elif self.state is TcpState.LAST_ACK:
            self._teardown(notify_close=True)

    # -- payload processing ----------------------------------------------

    def _process_payload(self, seg):
        if not self.state.can_receive_data():
            self._send_pure_ack()
            return
        seq, payload = seg.seq, seg.payload
        if seq > self.rcv_nxt:
            # Out of order: stash and send a duplicate ACK.
            if seq - self.rcv_nxt <= self.rcv_wnd:
                self._ooo_segments[seq] = payload
            self._send_pure_ack()
            return
        if seq < self.rcv_nxt:
            # Partially or fully old (retransmission overlap): trim.
            overlap = self.rcv_nxt - seq
            if overlap >= len(payload):
                self._send_pure_ack()
                return
            payload = payload[overlap:]
            seq = self.rcv_nxt
        delivered = bytearray(payload)
        self.rcv_nxt = seq + len(payload)
        # Absorb any contiguous out-of-order segments.
        while self.rcv_nxt in self._ooo_segments:
            chunk = self._ooo_segments.pop(self.rcv_nxt)
            delivered.extend(chunk)
            self.rcv_nxt += len(chunk)
        self._send_pure_ack()
        self.bytes_delivered += len(delivered)
        if self.on_data:
            self.on_data(self, bytes(delivered))

    def _process_fin(self, seg):
        fin_seq = seg.seq + len(seg.payload)
        if fin_seq != self.rcv_nxt:
            return  # FIN beyond a gap; the dup-ACK already asked for data
        self.rcv_nxt += 1
        self._send_pure_ack()
        if self.state is TcpState.ESTABLISHED:
            self.state = TcpState.CLOSE_WAIT
        elif self.state is TcpState.FIN_WAIT_1:
            self.state = TcpState.CLOSING
        elif self.state is TcpState.FIN_WAIT_2:
            self._enter_time_wait()
        if self.on_close and self.state is TcpState.CLOSE_WAIT:
            self.on_close(self)

    # ------------------------------------------------------------------
    # timers
    # ------------------------------------------------------------------

    def _arm_rexmit(self):
        if self._rexmit_started is None:
            self._rexmit_started = self.engine.now
        self._rexmit_timer.restart(self.rto)

    def _on_rexmit_timeout(self):
        if self.state in (TcpState.CLOSED, TcpState.TIME_WAIT):
            return
        # explicit None check: a timer first armed at t=0.0 is falsy
        started = (
            self._rexmit_started if self._rexmit_started is not None else self.engine.now
        )
        if self.engine.now - started > TCP_USER_TIMEOUT:
            self._teardown(notify_close=False, reset_reason="user-timeout")
            return
        self.retransmissions += 1
        self.rto = min(self.rto * 2, TCP_MAX_RTO)
        self._rtt_sample_seq = None  # Karn: no samples from retransmits
        if self.state is TcpState.SYN_SENT:
            self._emit(Segment(self.iss, 0, Segment.SYN, self.rcv_wnd, mss=self.mss))
        elif self.state is TcpState.SYN_RCVD:
            self._emit(
                Segment(self.iss, self.rcv_nxt, Segment.SYN | Segment.ACK, self.rcv_wnd, mss=self.mss)
            )
        else:
            self.cc.on_timeout()
            self._retransmit_head()
        self._rexmit_timer.restart(self.rto)

    def _retransmit_head(self):
        """Retransmit the first unacknowledged chunk (or our FIN)."""
        if self.bytes_in_flight == 0 and self._fin_seq is not None:
            self._emit(Segment(self._fin_seq, self.rcv_nxt, Segment.FIN | Segment.ACK, self.rcv_wnd))
            return
        if self.bytes_in_flight <= 0:
            return
        chunk = int(min(self.mss, self.bytes_in_flight))
        payload = bytes(self._send_buffer[:chunk])
        self._emit(Segment(self.snd_una, self.rcv_nxt, Segment.ACK, self.rcv_wnd, payload))

    def _arm_persist(self):
        if not self._persist_timer.armed:
            self._persist_timer.start(max(self.rto, TCP_MIN_RTO))

    def _on_persist_timeout(self):
        """Zero-window probe: one byte past the window."""
        if self.state in (TcpState.CLOSED, TcpState.TIME_WAIT):
            return
        if self.snd_wnd == 0 and self.bytes_unsent > 0:
            offset = self.bytes_in_flight
            probe = bytes(self._send_buffer[offset : offset + 1])
            self._emit(Segment(self.snd_nxt, self.rcv_nxt, Segment.ACK, self.rcv_wnd, probe))
            self.snd_nxt += 1
            self._arm_persist()
        else:
            self._try_send()

    def _enter_time_wait(self):
        self.state = TcpState.TIME_WAIT
        self._rexmit_timer.stop()
        self._persist_timer.stop()
        self._time_wait_timer.start(TIME_WAIT_DURATION)

    def _on_time_wait_done(self):
        self._teardown(notify_close=True)

    # ------------------------------------------------------------------
    # RTT estimation (RFC 6298)
    # ------------------------------------------------------------------

    def _take_rtt_sample(self, seq_end):
        if self._rtt_sample_seq is None:
            self._rtt_sample_seq = seq_end
            self._rtt_sample_time = self.engine.now

    def _complete_rtt_sample(self, ack):
        if self._rtt_sample_seq is None or ack < self._rtt_sample_seq:
            return
        sample = self.engine.now - self._rtt_sample_time
        self._rtt_sample_seq = None
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2.0
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - sample)
            self.srtt = 0.875 * self.srtt + 0.125 * sample
        self.rto = min(max(self.srtt + 4 * self.rttvar, TCP_MIN_RTO), TCP_MAX_RTO)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    def _send_pure_ack(self):
        self._emit(Segment(self.snd_nxt, self.rcv_nxt, Segment.ACK, self.rcv_wnd))

    def _emit(self, segment):
        self.segments_sent += 1
        self.stack.emit(self, segment)

    def _teardown(self, notify_close, reset_reason=None):
        was_synchronized = self.state.is_synchronized()
        self.state = TcpState.CLOSED
        self._rexmit_timer.stop()
        self._persist_timer.stop()
        self._time_wait_timer.stop()
        self._send_buffer.clear()
        self._ooo_segments.clear()
        self.stack.forget(self)
        if reset_reason is not None and self.on_reset:
            self.on_reset(self, reset_reason)
        elif notify_close and was_synchronized and self.on_close:
            self.on_close(self)

    def __repr__(self):
        return (
            f"<TcpConnection {self.local_addr}:{self.local_port}->"
            f"{self.remote_addr}:{self.remote_port} {self.state.value}>"
        )
