"""TCP segments."""

from repro.sim.calibration import TCP_HEADER_BYTES


class Segment:
    """One TCP segment.

    The payload is real bytes — BGP messages are encoded to their RFC 4271
    wire format and stream through these segments, which is what makes the
    ACK-number inference of §3.1.2 meaningful in this reproduction.
    """

    __slots__ = ("seq", "ack", "flags", "window", "payload", "mss")

    SYN = 0x02
    ACK = 0x10
    FIN = 0x01
    RST = 0x04

    def __init__(self, seq, ack, flags, window, payload=b"", mss=None):
        self.seq = seq
        self.ack = ack
        self.flags = flags
        self.window = window
        self.payload = payload
        self.mss = mss  # MSS option, present on SYN segments

    @property
    def syn(self):
        return bool(self.flags & self.SYN)

    @property
    def has_ack(self):
        return bool(self.flags & self.ACK)

    @property
    def fin(self):
        return bool(self.flags & self.FIN)

    @property
    def rst(self):
        return bool(self.flags & self.RST)

    @property
    def seq_space(self):
        """Sequence space consumed: payload plus SYN/FIN flags."""
        return len(self.payload) + (1 if self.syn else 0) + (1 if self.fin else 0)

    @property
    def wire_size(self):
        """On-wire size in bytes including Ethernet/IP/TCP headers."""
        return TCP_HEADER_BYTES + len(self.payload)

    def flag_names(self):
        names = []
        if self.syn:
            names.append("SYN")
        if self.has_ack:
            names.append("ACK")
        if self.fin:
            names.append("FIN")
        if self.rst:
            names.append("RST")
        return "|".join(names) or "-"

    def __repr__(self):
        return (
            f"<Segment {self.flag_names()} seq={self.seq} ack={self.ack}"
            f" len={len(self.payload)} wnd={self.window}>"
        )
