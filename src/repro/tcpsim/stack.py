"""The per-host TCP stack: port table, demux, egress path with hooks.

One :class:`TcpStack` per host (or per container network namespace).  The
egress path is where the Netfilter OUTPUT chain runs, and the per-segment
CPU cost model lives here: the paper's testbed sender is CPU-bound at
small write sizes, which is what produces the packet-size-dependent
thresholds of Fig. 5(a) (see repro.sim.calibration).
"""

import itertools

from repro.netfilter import HookChain, HookPoint, NfQueue, Verdict
from repro.sim.calibration import TCP_SENDER_SEGMENT_RATE
from repro.sim.network import Packet
from repro.tcpsim.congestion import RenoCongestionControl
from repro.tcpsim.connection import TcpConnection
from repro.tcpsim.segment import Segment
from repro.tcpsim.state import TcpState


class TcpStackConfig:
    """Tunables for one stack.

    ``segment_rate`` is the CPU-bound segment emission rate (segments/s);
    pure control segments (ACK/SYN/FIN without payload) cost an eighth of
    a data segment.  ``congestion_control`` is a factory accepting mss.
    """

    def __init__(self, segment_rate=TCP_SENDER_SEGMENT_RATE, congestion_control=None,
                 hook_technology="netfilter"):
        self.segment_rate = segment_rate
        self.congestion_control = congestion_control or RenoCongestionControl
        self.hook_technology = hook_technology

    def data_segment_cost(self):
        return 1.0 / self.segment_rate

    def control_segment_cost(self):
        return 1.0 / (8.0 * self.segment_rate)


class TcpStack:
    """TCP for one host: sockets, demux, Netfilter chains, CPU pacing."""

    def __init__(self, engine, host, config=None):
        self.engine = engine
        self.host = host
        self.config = config or TcpStackConfig()
        self.output_chain = HookChain(HookPoint.OUTPUT)
        self.input_chain = HookChain(HookPoint.INPUT)
        self.nfqueue = NfQueue(engine, technology=self.config.hook_technology)
        self._listeners = {}
        self._connections = {}
        self._bound_ports = set()
        # own all TCP on the host: closed ports answer with RST, like a
        # real kernel (unless a Netfilter guard rule drops the RST)
        host.bind("tcp", None, self._on_packet)
        self._wildcard_bound = True
        self._ephemeral = itertools.count(49152)
        self._cpu_busy_until = 0.0
        self.destroyed = False
        self.segments_emitted = 0
        self.segments_dropped_by_hooks = 0

    # ------------------------------------------------------------------
    # socket API
    # ------------------------------------------------------------------

    def listen(self, port, on_accept):
        """Accept connections on ``port``; ``on_accept(conn)`` fires when a
        handshake completes."""
        self._ensure_port(port)
        self._listeners[port] = on_accept

    def connect(self, remote_addr, remote_port, local_port=None, on_established=None):
        """Active open.  Returns the new connection immediately; the
        ``on_established`` callback fires when the handshake completes."""
        if local_port is None:
            local_port = next(self._ephemeral)
        self._ensure_port(local_port)
        conn = TcpConnection(self, local_port, remote_addr, remote_port)
        conn.on_established = on_established
        self._register(conn)
        conn.open_active()
        return conn

    def _ensure_port(self, port):
        if port not in self._bound_ports:
            self.host.bind("tcp", port, self._on_packet)
            self._bound_ports.add(port)

    def _register(self, conn):
        key = (conn.local_port, conn.remote_addr, conn.remote_port)
        self._connections[key] = conn

    def forget(self, conn):
        key = (conn.local_port, conn.remote_addr, conn.remote_port)
        if self._connections.get(key) is conn:
            del self._connections[key]

    def connections(self):
        return list(self._connections.values())

    def lookup(self, local_port, remote_addr, remote_port):
        return self._connections.get((local_port, remote_addr, remote_port))

    def notify_accepted(self, conn):
        on_accept = self._listeners.get(conn.local_port)
        if on_accept is not None:
            on_accept(conn)

    def next_isn(self):
        """Deterministic ISN generator (stands in for the RFC 6528 hash).

        Engine-scoped: ISNs are unique within one simulated deployment
        and independent of other simulations sharing the OS process.
        """
        return 1_000_000 + 64_000 * self.engine.next_id("tcp.isn", 1)

    def make_congestion_control(self, mss):
        return self.config.congestion_control(mss)

    def adopt(self, conn):
        """Register an externally built connection (TCP repair import)."""
        self._ensure_port(conn.local_port)
        self._register(conn)

    # ------------------------------------------------------------------
    # egress: OUTPUT hook chain -> NFQUEUE or wire
    # ------------------------------------------------------------------

    def emit(self, conn, segment):
        if self.destroyed:
            return
        packet = Packet(
            src=self.host.address,
            dst=conn.remote_addr,
            protocol="tcp",
            sport=conn.local_port,
            dport=conn.remote_port,
            payload=segment,
            size=segment.wire_size,
        )
        verdict, queue_num = self.output_chain.evaluate(packet)
        if verdict is Verdict.DROP:
            self.segments_dropped_by_hooks += 1
            return
        if verdict is Verdict.QUEUE:
            self.nfqueue.enqueue(queue_num, packet, self._transmit)
            return
        self._transmit(packet)

    def _transmit(self, packet):
        """Charge the CPU pacing cost and put the packet on the wire."""
        if self.destroyed:
            return
        segment = packet.payload
        cost = (
            self.config.data_segment_cost()
            if segment.payload
            else self.config.control_segment_cost()
        )
        now = self.engine.now
        start = max(now, self._cpu_busy_until)
        self._cpu_busy_until = start + cost
        self.segments_emitted += 1
        self.engine.schedule(self._cpu_busy_until - now, self.host.send, packet)

    # ------------------------------------------------------------------
    # ingress: INPUT hook chain -> demux
    # ------------------------------------------------------------------

    def _on_packet(self, packet):
        if self.destroyed:
            return
        verdict, queue_num = self.input_chain.evaluate(packet)
        if verdict is Verdict.DROP:
            self.segments_dropped_by_hooks += 1
            return
        if verdict is Verdict.QUEUE:
            self.nfqueue.enqueue(queue_num, packet, self._demux)
            return
        self._demux(packet)

    def _demux(self, packet):
        segment = packet.payload
        key = (packet.dport, packet.src, packet.sport)
        conn = self._connections.get(key)
        if conn is not None:
            conn.on_segment(segment)
            return
        if segment.syn and not segment.has_ack and packet.dport in self._listeners:
            conn = TcpConnection(self, packet.dport, packet.src, packet.sport)
            self._register(conn)
            conn.open_passive(segment)
            return
        if not segment.rst:
            self._send_rst_for(packet)

    def _send_rst_for(self, packet):
        segment = packet.payload
        if segment.has_ack:
            rst = Segment(segment.ack, 0, Segment.RST, 0)
        else:
            rst = Segment(0, segment.seq + segment.seq_space, Segment.RST | Segment.ACK, 0)
        reply = Packet(
            src=self.host.address,
            dst=packet.src,
            protocol="tcp",
            sport=packet.dport,
            dport=packet.sport,
            payload=rst,
            size=rst.wire_size,
        )
        self._transmit(reply)

    # ------------------------------------------------------------------
    # crash semantics
    # ------------------------------------------------------------------

    def destroy(self):
        """Abrupt death (process/container crash): no FINs, no RSTs.

        Connections simply stop responding, exactly what a peer of a
        crashed router observes; held NFQUEUE ACKs die with the stack.
        """
        self.destroyed = True
        for conn in list(self._connections.values()):
            conn.state = TcpState.CLOSED
            conn._rexmit_timer.stop()
            conn._persist_timer.stop()
            conn._time_wait_timer.stop()
        self._connections.clear()
        for port in self._bound_ports:
            self.host.unbind("tcp", port)
        self._bound_ports.clear()
        if self._wildcard_bound:
            self.host.unbind("tcp", None)
            self._wildcard_bound = False

    def __repr__(self):
        return f"<TcpStack {self.host.name} conns={len(self._connections)}>"
