"""TCP connection states (RFC 793 §3.2)."""

import enum


class TcpState(enum.Enum):
    CLOSED = "CLOSED"
    LISTEN = "LISTEN"
    SYN_SENT = "SYN_SENT"
    SYN_RCVD = "SYN_RCVD"
    ESTABLISHED = "ESTABLISHED"
    FIN_WAIT_1 = "FIN_WAIT_1"
    FIN_WAIT_2 = "FIN_WAIT_2"
    CLOSE_WAIT = "CLOSE_WAIT"
    CLOSING = "CLOSING"
    LAST_ACK = "LAST_ACK"
    TIME_WAIT = "TIME_WAIT"

    def is_synchronized(self):
        """States where both sides have synchronized sequence numbers."""
        return self not in (
            TcpState.CLOSED,
            TcpState.LISTEN,
            TcpState.SYN_SENT,
            TcpState.SYN_RCVD,
        )

    def can_send_data(self):
        return self in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT)

    def can_receive_data(self):
        return self in (
            TcpState.ESTABLISHED,
            TcpState.FIN_WAIT_1,
            TcpState.FIN_WAIT_2,
        )
