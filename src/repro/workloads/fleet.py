"""Sharded container-fleet workload for the parallel runtime.

The scenario models a multi-site deployment: each *site* is one full
TENSOR cluster (controller, database, agent, gateway machines, container
pairs with their peering ASes) — an independent simulation universe —
plus one border router that speaks eBGP with the neighbouring sites'
border routers over WAN links.  The sites are the shards: everything
inside a site is dense local traffic (BFD at millisecond cadence,
supervision polls, route churn), while the only cross-shard coupling is
the border mesh, whose 20 ms WAN latency is exactly the conservative
lookahead the parallel runtime synchronizes on.

Builders here follow the :mod:`repro.sim.parallel.runtime` contract: all
timed setup (route origination, border bring-up, churn) is *scheduled*,
never run, so a site shard does zero simulation work at build time and
every cross-shard byte flows through the windowed barriers.
"""

from repro.bgp.peer import PeerConfig
from repro.bgp.speaker import BgpSpeaker, SpeakerConfig
from repro.core.system import PeerNeighborSpec, TensorSystem
from repro.sim.parallel.boundary import BoundaryLink
from repro.sim.parallel.runtime import ShardSpec
from repro.sim.rand import DeterministicRandom
from repro.tcpsim.stack import TcpStack
from repro.workloads.topology import build_remote_peer
from repro.workloads.updates import RouteGenerator

#: WAN latency between sites — the parallel lookahead bound.
WAN_LATENCY = 0.02
WAN_BANDWIDTH = 10e9

#: Engine event scope tagging the WAN border subsystem — the only part
#: of a site that can emit cross-shard frames.  The site's dense local
#: cadence (BFD, supervision, route churn) stays outside the scope, so
#: the parallel runtime's adaptive lookahead can widen windows to the
#: border's next timer instead of the site's next millisecond tick.
BORDER_SCOPE = "wan-border"

#: virtual-time schedule inside every site (overridable per spec via
#: the ``routes_at``/``border_at``/``churn_at`` params — the 1000-
#: container configuration compresses the timeline so the benchmark
#: spends its wall-clock on load, not on idle warm-up)
ROUTES_AT = 12.0
BORDER_AT = 15.0
CHURN_AT = 18.0


def border_address(site):
    return f"172.16.{site}.1"


def border_asn(site):
    return 65100 + site


def _ring_neighbors(site, sites):
    """The neighbouring site indices on the ring (deduplicated)."""
    if sites <= 1:
        return []
    neighbors = {(site - 1) % sites, (site + 1) % sites}
    neighbors.discard(site)
    return sorted(neighbors)


class FleetSiteProgram:
    """One site: a TensorSystem plus a border router on the WAN ring."""

    def __init__(self, shard_id, params, boundary):
        site = params["site"]
        sites = params["sites"]
        pairs = params.get("pairs", 4)
        machine_count = params.get("machines", 2)
        routes = params.get("routes", 50)
        border_routes = params.get("border_routes", 20)
        churn_ticks = params.get("churn_ticks", 4)
        churn_interval = params.get("churn_interval", 5.0)
        seed = params.get("seed", 0)
        tracing = params.get("tracing", False)
        routes_at = params.get("routes_at", ROUTES_AT)
        border_at = params.get("border_at", BORDER_AT)
        churn_at = params.get("churn_at", CHURN_AT)

        self.site = site
        self.system = TensorSystem(seed=seed * 1009 + site, tracing=tracing)
        self.engine = self.system.engine
        engine = self.engine
        machines = [
            self.system.add_machine(f"s{site}-gw-{m + 1}", f"10.{m + 1}.0.1")
            for m in range(max(2, machine_count))
        ]
        rand = DeterministicRandom(seed * 7919 + site)
        self.remotes = []
        for i in range(pairs):
            pair = self.system.create_pair(
                f"s{site}p{i}",
                machines[i % len(machines)],
                machines[(i + 1) % len(machines)],
                service_addr=f"10.10.{i}.1",
                local_as=65001,
                router_id=f"10.10.{i}.1",
                neighbors=[
                    PeerNeighborSpec(
                        f"192.0.2.{i + 1}", 64512 + i, vrf_name="v0", mode="passive"
                    )
                ],
            )
            remote = build_remote_peer(
                self.system, f"s{site}r{i}", f"192.0.2.{i + 1}", 64512 + i,
                link_machines=machines,
            )
            session = remote.peer_with(f"10.10.{i}.1", 65001, vrf_name="v0",
                                       mode="active")
            pair.start()
            remote.start()
            self.remotes.append((remote, session))

        # intra-site route load + a deterministic churn block per remote
        self._route_sets = []
        self._churn_sets = []
        for i in range(pairs):
            gen = RouteGenerator(rand.fork(f"pair{i}"), 64512 + i,
                                 next_hop=f"192.0.2.{i + 1}")
            self._route_sets.append(gen.routes(routes, base=f"10.{32 + i}.0.0"))
            self._churn_sets.append(gen.routes(
                max(1, routes // 4), base=f"10.{64 + i}.0.0"
            ))
        engine.schedule(routes_at, self._originate_initial)
        self._churn_ticks = churn_ticks
        self._churn_interval = churn_interval
        if churn_ticks:
            engine.schedule(churn_at, self._churn, 0)

        # the border router: one eBGP speaker facing the neighbouring
        # sites.  Everything that can cause a WAN (cross-shard) send is
        # built and scheduled under BORDER_SCOPE, so events the border
        # spawns — TCP timers, BGP keepalives, MRAI flushes — inherit
        # the scope transitively and next_outbound_time() below stays a
        # sound bound for the adaptive lookahead.
        with engine.scoped(BORDER_SCOPE):
            self.border_host = self.system.network.add_host(
                f"s{site}-border", border_address(site)
            )
            self.border_stack = TcpStack(engine, self.border_host)
            self.border = BgpSpeaker(
                engine,
                self.border_stack,
                SpeakerConfig(f"border{site}", border_asn(site),
                              border_address(site), profile="frr"),
            )
            self.border.add_vrf("wan")
            for neighbor in _ring_neighbors(site, sites):
                # exactly one active endpoint per ring edge
                self.border.add_peer(PeerConfig(
                    border_address(neighbor),
                    border_asn(neighbor),
                    vrf_name="wan",
                    mode="active" if site < neighbor else "passive",
                ))
            border_gen = RouteGenerator(rand.fork("border"), border_asn(site),
                                        next_hop=border_address(site))
            self.border.originate_many(
                "wan",
                border_gen.routes(border_routes, base=f"10.{128 + site}.0.0")
            )
            engine.schedule(border_at, self.border.start)

        # WAN edges exist as stub-host links from here on; every border
        # packet to a neighbour is exported at a window barrier.
        # Inbound WAN frames are injected under the border scope too —
        # their causal closure is border activity.
        boundary.inject_scope = BORDER_SCOPE
        boundary.attach(self.system.network)

    # -- scheduled workload -------------------------------------------------

    def _originate_initial(self):
        for (remote, session), routes in zip(self.remotes, self._route_sets):
            remote.speaker.originate_many("v0", routes)
            remote.speaker.readvertise(session)

    def _churn(self, tick):
        withdraw = tick % 2
        for (remote, _session), block in zip(self.remotes, self._churn_sets):
            for prefix, attrs in block:
                if withdraw:
                    remote.speaker.withdraw_originated("v0", prefix)
                else:
                    remote.speaker.originate("v0", prefix, attrs)
        if tick + 1 < self._churn_ticks:
            self.engine.schedule(self._churn_interval, self._churn, tick + 1)

    # -- runtime contract ---------------------------------------------------

    def next_outbound_time(self):
        """Earliest instant anything border-scoped can happen — the
        adaptive-lookahead bound for this site.  Intra-site load (BFD
        ticks, supervision, churn) is invisible here by design: it can
        never reach the WAN."""
        return self.engine.next_event_time(BORDER_SCOPE)

    def results(self):
        wan_rib = tuple(
            (entry["prefix"], str(entry["peer_id"]), entry["source_kind"],
             bytes(entry["attributes"]))
            for entry in self.border.vrfs["wan"].loc_rib.export_entries()
        )
        out = {
            "site": self.site,
            "rib": self.system.rib_digest(),
            "border_rib": wan_rib,
            "border_established": len(self.border.established_sessions()),
            "containers": sum(
                len(machine.containers) for machine in self.system.machines.values()
            ),
            "packets_sent": self.system.network.packets_sent,
        }
        store = self.system.trace_store
        if store is not None:
            out["phase_summary"] = store.phase_summary()
        return out


def build_fleet_site(shard_id, params, boundary):
    """Spawn-safe ShardSpec builder (``repro.workloads.fleet:build_fleet_site``)."""
    return FleetSiteProgram(shard_id, params, boundary)


def fleet_site_specs(sites, pairs=4, routes=50, border_routes=20, seed=0,
                     churn_ticks=4, churn_interval=5.0, tracing=False,
                     machines=2, routes_at=ROUTES_AT, border_at=BORDER_AT,
                     churn_at=CHURN_AT):
    """ShardSpecs for a ``sites``-site fleet on a WAN ring.

    Each site runs ``pairs * 2`` containers (active + backup per pair)
    spread over ``machines`` gateway machines; weight is the pair
    count, which is what the LPT partitioner balances across workers.
    ``routes_at``/``border_at``/``churn_at`` shift the in-site schedule
    (route origination, border bring-up, churn start).
    """
    specs = []
    for site in range(sites):
        links = tuple(
            BoundaryLink(
                border_address(site),
                border_address(neighbor),
                f"site{neighbor}",
                latency=WAN_LATENCY,
                bandwidth=WAN_BANDWIDTH,
            )
            for neighbor in _ring_neighbors(site, sites)
        )
        specs.append(ShardSpec(
            f"site{site}",
            "repro.workloads.fleet:build_fleet_site",
            params={
                "site": site,
                "sites": sites,
                "pairs": pairs,
                "machines": machines,
                "routes": routes,
                "border_routes": border_routes,
                "seed": seed,
                "churn_ticks": churn_ticks,
                "churn_interval": churn_interval,
                "tracing": tracing,
                "routes_at": routes_at,
                "border_at": border_at,
                "churn_at": churn_at,
            },
            links=links,
            weight=float(pairs),
        ))
    return specs


#: the 1000-container configuration: 16 sites x 32 pairs x 2 containers
#: = 1024 containers on a compressed schedule, benchmarked by
#: ``benchmarks/bench_parallel_fleet.py`` (run for FLEET_1K_DURATION).
FLEET_1K_DURATION = 8.0


def fleet_1k_specs(seed=0, tracing=False):
    """ShardSpecs for the 1024-container fleet row of BENCH_parallel.

    Route counts are trimmed per pair (the point is container/session
    scale, not table depth) and the site schedule is compressed so the
    run reaches origination, border convergence, and churn within
    ``FLEET_1K_DURATION`` virtual seconds.
    """
    return fleet_site_specs(
        16, pairs=32, machines=8, routes=12, border_routes=8, seed=seed,
        churn_ticks=2, churn_interval=2.0, tracing=tracing,
        routes_at=3.0, border_at=4.0, churn_at=6.0,
    )
