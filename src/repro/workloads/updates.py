"""Synthetic routing-update workloads.

Generates realistic-looking announcement sets: distinct prefixes, AS
paths of plausible length, a bounded pool of distinct attribute sets
(real tables heavily share attributes, which is what makes update
packing effective).
"""

from repro.bgp.attributes import AsPath, Origin, PathAttributes
from repro.bgp.prefixes import Prefix


class RouteGenerator:
    """Deterministic route-set generator."""

    def __init__(self, rng, origin_as, next_hop="0.0.0.0", attr_pool_size=64):
        # Accept either a plain ``random.Random`` or a
        # ``DeterministicRandom`` namespace (drawn from its own stream so
        # the route set is independent of other consumers of the seed).
        if hasattr(rng, "stream"):
            rng = rng.stream("routes")
        self.rng = rng
        self.origin_as = origin_as
        self.next_hop = next_hop
        self.attr_pool = [
            self._random_attributes() for _ in range(attr_pool_size)
        ]

    def _random_attributes(self):
        path_len = self.rng.randint(1, 5)
        # Upstream hops draw from 64600-64899: the full 64512-65535
        # private range also contains every gateway/remote AS the test
        # topologies use (65001, 64512+i), and a generated path holding
        # the receiving speaker's own AS is silently dropped as a loop —
        # which made route-count assertions depend on the rng seed.
        asns = [self.origin_as] + [
            64600 + self.rng.randint(0, 299) for _ in range(path_len - 1)
        ]
        communities = tuple(
            sorted(
                (self.origin_as << 16) | self.rng.randint(1, 999)
                for _ in range(self.rng.randint(0, 3))
            )
        )
        return PathAttributes(
            origin=Origin(self.rng.choice((0, 0, 0, 1, 2))),
            as_path=AsPath.sequence(*asns),
            next_hop=self.next_hop,
            med=self.rng.choice((None, 0, 10, 100)),
            communities=communities,
        )

    def prefixes(self, count, base="10.0.0.0", length=24):
        """``count`` distinct IPv4 prefixes, deterministic order."""
        base_prefix = Prefix.parse(f"{base}/{length}")
        step = 1 << (32 - length)
        return [
            Prefix((base_prefix.value + i * step) & 0xFFFFFFFF, length)
            for i in range(count)
        ]

    def routes(self, count, base="10.0.0.0", length=24):
        """``count`` (prefix, attributes) pairs sharing pooled attributes."""
        prefixes = self.prefixes(count, base=base, length=length)
        return [
            (prefix, self.attr_pool[i % len(self.attr_pool)])
            for i, prefix in enumerate(prefixes)
        ]

    def uniform_routes(self, count, base="10.0.0.0", length=24):
        """``count`` pairs sharing ONE attribute set (best-case packing)."""
        prefixes = self.prefixes(count, base=base, length=length)
        attrs = self.attr_pool[0]
        return [(prefix, attrs) for prefix in prefixes]
