"""Topology builders: remote peering ASes and downtime observers.

A :class:`RemotePeerAs` is the router on the other side of a peering
link: a baseline (FRR-profile) BGP speaker plus a BFD process, on its own
host, connected to the gateway by a dedicated 100 Gbps link — the
paper's experimental setup ("one installs TENSOR and the other installs
FRRouting to represent the peering AS").

The :class:`DowntimeObserver` watches the remote side and accumulates
*link downtime* the way the paper accounts it: any interval during which
the remote router has withdrawn the routes (session down or BFD down) is
downtime; TENSOR's claim is that this stays zero across failures.
"""

from repro.bfd.process import BfdProcess
from repro.bgp.peer import PeerConfig
from repro.bgp.speaker import BgpSpeaker, SpeakerConfig
from repro.sim.calibration import PEERING_LINK_BANDWIDTH, PEERING_LINK_LATENCY
from repro.tcpsim.stack import TcpStack


class RemotePeerAs:
    """The peering AS's border router."""

    def __init__(self, engine, network, name, address, asn, rng=None, profile="frr"):
        self.engine = engine
        self.network = network
        self.name = name
        self.asn = asn
        self.host = network.add_host(name, address)
        self.stack = TcpStack(engine, self.host)
        self.speaker = BgpSpeaker(
            engine,
            self.stack,
            SpeakerConfig(name, asn, address, profile=profile),
        )
        self.bfd = BfdProcess(engine, self.host, rng=rng)
        self.sessions = []

    def peer_with(self, gateway_addr, gateway_as, vrf_name="default", mode="active",
                  hold_time=90, keepalive_interval=30, bfd=True):
        """Configure the session towards the gateway."""
        self.speaker.add_vrf(vrf_name)
        session = self.speaker.add_peer(
            PeerConfig(
                gateway_addr,
                gateway_as,
                vrf_name=vrf_name,
                mode=mode,
                hold_time=hold_time,
                keepalive_interval=keepalive_interval,
            )
        )
        self.sessions.append(session)
        if bfd:
            self.bfd.add_session(vrf_name, gateway_addr)
        return session

    def start(self):
        self.speaker.start()
        self.bfd.start()

    def link_to(self, machine_host, bandwidth=PEERING_LINK_BANDWIDTH,
                latency=PEERING_LINK_LATENCY, loss=0.0):
        return self.network.connect(
            self.host, machine_host, latency=latency, bandwidth=bandwidth, loss=loss
        )


def build_remote_peer(system, name, address, asn, link_machines=(), profile="frr"):
    """Create a remote AS inside a :class:`~repro.core.system.TensorSystem`
    and link it to the given gateway machines (and the agent server)."""
    peer = RemotePeerAs(
        system.engine,
        system.network,
        name,
        address,
        asn,
        rng=system.rng.stream(f"remote:{name}"),
        profile=profile,
    )
    for machine in link_machines:
        peer.link_to(machine.host)
    peer.link_to(system.agent_host)
    return peer


class DowntimeObserver:
    """Accumulates remote-visible link downtime.

    Polls the remote router's view: the link is *up* when the BGP session
    is established (or held by graceful restart) AND the learned routes
    are still present.  ``total_downtime`` is the paper's headline metric.
    """

    def __init__(self, engine, remote_session, vrf, expect_routes=1, interval=0.01):
        self.engine = engine
        self.session = remote_session
        self.vrf = vrf
        self.expect_routes = expect_routes
        self.interval = interval
        self.total_downtime = 0.0
        self.transitions = []  # (time, up->down | down->up)
        self._down_since = None
        self._polling = None

    def start(self):
        self._poll()

    def _is_up(self):
        if not self.session.established:
            # graceful restart holds routes while the session re-forms
            if not self.session.gr_timer.armed:
                return False
        return len(self.vrf.loc_rib) >= self.expect_routes

    def _poll(self):
        up = self._is_up()
        now = self.engine.now
        if up and self._down_since is not None:
            self.total_downtime += now - self._down_since
            self.transitions.append((now, "down->up"))
            self._down_since = None
        elif not up and self._down_since is None:
            self._down_since = now
            self.transitions.append((now, "up->down"))
        self._polling = self.engine.schedule(self.interval, self._poll)

    def stop(self):
        if self._polling is not None:
            self._polling.cancel()
        if self._down_since is not None:
            self.total_downtime += self.engine.now - self._down_since
            self._down_since = None
