"""Workload generation: routing updates, traffic, topology, operations.

Everything the benchmarks feed into the system: synthetic routing-update
streams (Figs. 6(a)-(c)), the heavy-tailed per-link traffic model
(Fig. 7(a)), remote-peering-AS topology builders, and the two-year
operational model (Fig. 7(b)).
"""

from repro.workloads.updates import RouteGenerator
from repro.workloads.traffic import TrafficModel
from repro.workloads.topology import RemotePeerAs, build_remote_peer, DowntimeObserver
from repro.workloads.operations import OperationalModel

__all__ = [
    "RouteGenerator",
    "TrafficModel",
    "RemotePeerAs",
    "build_remote_peer",
    "DowntimeObserver",
    "OperationalModel",
]
