"""Per-link traffic model (Fig. 7(a)).

§4.4 reports three distributional facts about the average throughput
between Tencent Cloud and its peering ASes over 24 hours:

1. mean > 37 Gbps;
2. median ~= 64 Mbps;
3. "Over 30% of the links ... carry over 1 Gb of data per second".

No single lognormal satisfies all three (matching the median and the
P[>1 Gbps] >= 0.3 tail forces sigma >= 5.2, which blows the mean up to
~5e13 bps), so we use a two-component lognormal mixture:

- 70% "small" links: median ~29.5 Mbps, sigma 1.5 — chosen so the
  overall median lands at 64 Mbps given the large component's mass
  below 64 Mbps (~4%);
- 30% "large" links: median 5.3 Gbps, sigma 2.5 — whose mean
  exp(mu + sigma^2/2) ~= 120 Gbps puts the overall mean at ~37 Gbps and
  whose median > 1 Gbps delivers P[>1 Gbps] ~= 0.31.
"""

import math

from repro.sim.calibration import (
    TRAFFIC_LARGE_MEDIAN_BPS,
    TRAFFIC_LARGE_SIGMA,
    TRAFFIC_MIX_SMALL_WEIGHT,
    TRAFFIC_SMALL_MEDIAN_BPS,
    TRAFFIC_SMALL_SIGMA,
)


class TrafficModel:
    """Draws per-link average throughput samples (bits/second)."""

    def __init__(
        self,
        rng,
        small_weight=TRAFFIC_MIX_SMALL_WEIGHT,
        small_median=TRAFFIC_SMALL_MEDIAN_BPS,
        small_sigma=TRAFFIC_SMALL_SIGMA,
        large_median=TRAFFIC_LARGE_MEDIAN_BPS,
        large_sigma=TRAFFIC_LARGE_SIGMA,
    ):
        self.rng = rng
        self.small_weight = small_weight
        self.small_mu = math.log(small_median)
        self.small_sigma = small_sigma
        self.large_mu = math.log(large_median)
        self.large_sigma = large_sigma

    def sample(self):
        """One link's 24-hour average throughput in bps."""
        if self.rng.random() < self.small_weight:
            return self.rng.lognormvariate(self.small_mu, self.small_sigma)
        return self.rng.lognormvariate(self.large_mu, self.large_sigma)

    def sample_links(self, count):
        return [self.sample() for _ in range(count)]

    def theoretical_mean(self):
        """E[X] of the mixture (bps)."""
        small_mean = math.exp(self.small_mu + self.small_sigma**2 / 2)
        large_mean = math.exp(self.large_mu + self.large_sigma**2 / 2)
        return self.small_weight * small_mean + (1 - self.small_weight) * large_mean

    def theoretical_fraction_above(self, threshold_bps):
        """P[X > threshold] of the mixture."""
        def tail(mu, sigma):
            z = (math.log(threshold_bps) - mu) / sigma
            return 0.5 * math.erfc(z / math.sqrt(2))

        return self.small_weight * tail(self.small_mu, self.small_sigma) + (
            1 - self.small_weight
        ) * tail(self.large_mu, self.large_sigma)


def empirical_cdf(samples):
    """Sorted (value, cumulative_fraction) points for plotting/reporting."""
    ordered = sorted(samples)
    n = len(ordered)
    return [(value, (i + 1) / n) for i, value in enumerate(ordered)]


def percentile(samples, fraction):
    ordered = sorted(samples)
    if not ordered:
        raise ValueError("no samples")
    index = min(int(fraction * len(ordered)), len(ordered) - 1)
    return ordered[index]
