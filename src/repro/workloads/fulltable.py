"""Internet-scale full-table workload (DESIGN.md §14).

A deterministic synthetic table shaped like a default-free-zone feed:

- an **aggregatable region**: complete blocks of 16 consecutive /24s
  under a /20 root, each block uniform in (peer, attributes) — DRAGON's
  best case, where snapshot aggregation collapses 16 entries into one;
- a **scattered region**: mixed /20../28 prefixes in disjoint /20
  slots, attributes drawn from a shared pool but varying per prefix, so
  aggregation finds little to merge (the realistic remainder);
- **edge cases**: the default route and a band of /32 host routes.

The same object also replays churn — competing-route offers, retracts
and attribute flips against a built table — which is what the full-table
benchmark times for the sub-linear incremental-reselect claim, and can
push a slice of itself through a complete NSR pair (remote AS -> gateway
speaker -> replication pipeline -> KV snapshot) for an end-to-end
measurement on the virtual clock.
"""

from repro.bgp.attributes import PathAttributes
from repro.bgp.prefixes import Prefix
from repro.bgp.rib import LocRib, Route
from repro.sim.rand import DeterministicRandom
from repro.workloads.updates import RouteGenerator

#: 16 member /24s per aggregatable /20 block.
BLOCK_MEMBER_BITS = 4
BLOCK_MEMBERS = 1 << BLOCK_MEMBER_BITS

#: Aggregatable /24s start here (8.0.0.0); each block owns one /20.
AGG_BASE = 8 << 24

#: Scattered prefixes start here (96.0.0.0); each owns one /20 slot.
SCATTER_BASE = 96 << 24
SCATTER_SLOT = 1 << 12  # /20 slots in units of the low 12 host bits

#: Length cycle for the scattered region (weights favour /24 like a
#: real table; /28 and the host-route band cover the long tail).
SCATTER_LENGTHS = (24, 24, 24, 23, 24, 22, 24, 25, 20, 24, 26, 21, 24, 28)

HOST_ROUTES = 8  # /32s appended to every table


class FullTableWorkload:
    """Deterministic synthetic table + churn generator.

    ``size`` counts routed prefixes (the default route and host-route
    band ride on top).  ``aggregatable_fraction`` of them form complete
    uniform /20 blocks; the rest scatter.
    """

    def __init__(self, seed=1, size=1_000_000, aggregatable_fraction=0.5,
                 peer_id="edge0"):
        self.seed = seed
        self.size = size
        self.peer_id = peer_id
        blocks = int(size * aggregatable_fraction) >> BLOCK_MEMBER_BITS
        self.aggregatable_count = blocks << BLOCK_MEMBER_BITS
        self.scattered_count = size - self.aggregatable_count
        generator = RouteGenerator(DeterministicRandom(seed), 64496,
                                   next_hop="192.0.2.1")
        self.attr_pool = generator.attr_pool

    # -- table layout -------------------------------------------------------

    def prefix_at(self, index):
        """The ``index``-th table prefix (aggregatable first, then
        scattered, then the host-route band, then the default)."""
        if index < self.aggregatable_count:
            return Prefix(AGG_BASE + (index << 8), 24)
        index -= self.aggregatable_count
        if index < self.scattered_count:
            length = SCATTER_LENGTHS[index % len(SCATTER_LENGTHS)]
            value = SCATTER_BASE + index * SCATTER_SLOT
            shift = 32 - length
            return Prefix((value >> shift) << shift, length)
        index -= self.scattered_count
        if index < HOST_ROUTES:
            return Prefix(SCATTER_BASE - (index + 1) * 256, 32)
        return Prefix(0, 0)

    def attrs_at(self, index):
        """Block-uniform in the aggregatable region, per-prefix pooled
        in the scattered one."""
        pool = self.attr_pool
        if index < self.aggregatable_count:
            return pool[(index >> BLOCK_MEMBER_BITS) % len(pool)]
        return pool[(index * 7 + 3) % len(pool)]

    @property
    def total(self):
        return self.size + HOST_ROUTES + 1

    def routes(self):
        for index in range(self.total):
            yield Route(self.prefix_at(index), self.attrs_at(index),
                        self.peer_id, "ebgp")

    def load(self, loc_rib):
        """Offer the whole table; returns the number of routes."""
        offer = loc_rib.offer
        count = 0
        for route in self.routes():
            offer(route)
            count += 1
        return count

    def build(self):
        rib = LocRib()
        self.load(rib)
        return rib

    # -- churn replay -------------------------------------------------------

    def churn(self, loc_rib, ops, seed=None, competitor="edge1"):
        """Replay ``ops`` deterministic churn operations.

        Cycles competing-route offers (forces a reselect among
        candidates), competitor retracts, and attribute flips on the
        primary route, across a strided sample of the table.  Returns
        the number of operations applied.
        """
        rng = DeterministicRandom(self.seed if seed is None
                                  else seed).stream("churn")
        pool = self.attr_pool
        applied = 0
        for op in range(ops):
            # Groups of three share a multiplicatively-scattered base
            # prefix: competitor offer, competitor retract (same
            # prefix — exercises candidate add/remove), primary flip.
            base = ((op // 3) * 2654435761) % self.size
            kind = op % 3
            if kind == 0:
                loc_rib.offer(Route(self.prefix_at(base),
                                    pool[rng.randrange(len(pool))],
                                    competitor, "ebgp"))
            elif kind == 1:
                loc_rib.retract(self.prefix_at(base), competitor)
            else:
                loc_rib.offer(Route(self.prefix_at((base + 1) % self.size),
                                    pool[rng.randrange(len(pool))],
                                    self.peer_id, "ebgp"))
            applied += 1
        return applied


# ---------------------------------------------------------------------------
# end-to-end: a table slice through a real NSR pair
# ---------------------------------------------------------------------------

def replay_through_pair(size=2_000, churn_ops=300, seed=3,
                        aggregate_snapshots=True):
    """Push a full-table slice through an NSR pair and snapshot it.

    Builds the standard one-pair topology (remote AS -> gateway), has
    the remote originate ``size`` table prefixes, replays churn as
    originate/withdraw rounds, then compacts the pair's Loc-RIB into the
    replicated KV snapshot.  Returns measurement dict (virtual-clock
    durations, snapshot counters, and the digest for determinism
    checks).
    """
    from repro.core.system import PeerNeighborSpec, TensorSystem
    from repro.workloads.topology import build_remote_peer

    workload = FullTableWorkload(seed=seed, size=size)
    system = TensorSystem(seed=seed)
    m1 = system.add_machine("gw-1", "10.1.0.1")
    m2 = system.add_machine("gw-2", "10.2.0.1")
    pair = system.create_pair(
        "pair0", m1, m2,
        service_addr="10.10.0.1", local_as=65001, router_id="10.10.0.1",
        neighbors=[PeerNeighborSpec("192.0.2.1", 64512, vrf_name="v0",
                                    mode="passive")],
        aggregate_snapshots=aggregate_snapshots,
    )
    remote = build_remote_peer(system, "remote0", "192.0.2.1", 64512,
                               link_machines=[m1, m2])
    session = remote.peer_with("10.10.0.1", 65001, vrf_name="v0",
                               mode="active")
    pair.start()
    remote.start()
    system.run(10.0)

    load_start = system.engine.now
    remote.speaker.originate_many(
        "v0",
        [(workload.prefix_at(i), workload.attrs_at(i)) for i in range(size)],
    )
    remote.speaker.readvertise(session)
    system.run(max(5.0, size / 5_000))
    load_elapsed = system.engine.now - load_start

    churn_start = system.engine.now
    rng = DeterministicRandom(seed).stream("pair-churn")
    flapped = 0
    for round_index in range(max(1, churn_ops // 50)):
        for _ in range(min(50, churn_ops - flapped)):
            index = rng.randrange(size)
            prefix = workload.prefix_at(index)
            if rng.random() < 0.3:
                remote.speaker.withdraw_originated("v0", prefix)
            else:
                remote.speaker.originate(
                    "v0", prefix,
                    workload.attr_pool[rng.randrange(
                        len(workload.attr_pool))])
            flapped += 1
        system.run(1.0)
    system.run(3.0)
    churn_elapsed = system.engine.now - churn_start

    loc_rib = pair.speaker.vrfs["v0"].loc_rib
    pair.pipeline.compact("v0", loc_rib)
    system.run(2.0)
    return {
        "routes_loaded": len(loc_rib),
        "load_virtual_s": load_elapsed,
        "churn_ops": flapped,
        "churn_virtual_s": churn_elapsed,
        "compactions": pair.pipeline.compactions,
        "snapshot_chunks_written": pair.pipeline.snapshot_chunks_written,
        "snapshot_entries_raw": pair.pipeline.snapshot_entries_raw,
        "snapshot_entries_written": pair.pipeline.snapshot_entries_written,
        "digest": system.rib_digest(),
        "session_established": session.established,
    }
