"""The two-year operational model (Fig. 7(b)).

§4.4: before TENSOR, "roughly 34 TB of data is impacted every month";
deployment started June 2020 with 100 ASes, paused for verification,
then ramped until "we migrated all the enterprise BGP business to TENSOR
by the end of 2021", after which link downtime (and impacted data) is
zero "despite that we have tripled the update frequency".

The model combines the failure mix of Table 1, the per-failure downtime
of each solution, per-link throughput draws from the traffic model, and
an adoption curve, to produce the monthly impacted-data series.
"""

from repro.sim.calibration import (
    BASELINE_MANUAL_DETECT,
    BASELINE_MANUAL_REBOOT,
    BASELINE_TCP_RECONNECT,
    BASELINE_BGP_RECOVERY,
    FAILURE_FREQUENCIES,
    FLEET_PEERING_ASES,
)
from repro.workloads.traffic import TrafficModel

#: months on the Fig. 7(b) x-axis: Jan 2020 .. Jun 2022.
TIMELINE_MONTHS = 30
DEPLOY_START_MONTH = 5  # June 2020 (0-indexed from Jan 2020)
FULL_MIGRATION_MONTH = 23  # December 2021


def default_adoption_curve(total_ases=FLEET_PEERING_ASES):
    """ASes on TENSOR per month: 0 until June 2020, 100 during the
    verification hold, then an accelerating ramp to full coverage."""
    curve = []
    for month in range(TIMELINE_MONTHS):
        if month < DEPLOY_START_MONTH:
            curve.append(0)
        elif month < DEPLOY_START_MONTH + 4:  # verification hold
            curve.append(100)
        elif month >= FULL_MIGRATION_MONTH:
            curve.append(total_ases)
        else:
            ramp_months = FULL_MIGRATION_MONTH - (DEPLOY_START_MONTH + 4)
            progress = (month - (DEPLOY_START_MONTH + 4) + 1) / ramp_months
            # accelerating ramp ("we gradually sped up the deployment")
            curve.append(int(100 + (total_ases - 100) * progress**2))
    return curve


class OperationalModel:
    """Monthly impacted-data series under a given NSR posture."""

    #: Calibrated against §4.4: ~34 TB impacted per month pre-TENSOR over
    #: ~6000 links whose expected per-failure impact is downtime (~65 s,
    #: Table 1 mix) x link throughput — i.e. ~120 failure-minutes a month
    #: fleet-wide, or ~0.02 failures per link per month.
    DEFAULT_FAILURES_PER_LINK_PER_MONTH = 0.02

    def __init__(self, rng, links=FLEET_PEERING_ASES,
                 failures_per_link_per_month=DEFAULT_FAILURES_PER_LINK_PER_MONTH,
                 update_frequency_factor=1.0):
        self.rng = rng
        self.links = links
        self.failures_per_link_per_month = failures_per_link_per_month
        self.update_frequency_factor = update_frequency_factor
        self.traffic = TrafficModel(rng)
        self._link_throughput = self.traffic.sample_links(links)

    def baseline_downtime_seconds(self):
        """Expected downtime of one non-NSR failure (Table 1 mix)."""
        expected = 0.0
        for kind, frequency in FAILURE_FREQUENCIES.items():
            if kind == "container":
                kind_key = "application"  # no containers without TENSOR
            else:
                kind_key = kind
            downtime = (
                BASELINE_MANUAL_DETECT[kind_key]
                + BASELINE_MANUAL_REBOOT[kind_key]
                + BASELINE_TCP_RECONNECT[kind_key]
                + BASELINE_BGP_RECOVERY[kind_key]
            )
            expected += frequency * downtime
        return expected

    def monthly_impacted_bytes(self, adoption_curve=None):
        """Fig. 7(b): impacted bytes per month as adoption ramps.

        A failure on a TENSOR-migrated link impacts nothing (zero link
        downtime); on a legacy link it impacts throughput x downtime.
        """
        adoption = adoption_curve or default_adoption_curve(self.links)
        expected_downtime = self.baseline_downtime_seconds()
        series = []
        for month, migrated in enumerate(adoption):
            frequency_factor = self.update_frequency_factor
            if month >= FULL_MIGRATION_MONTH:
                frequency_factor *= 3.0  # "we have tripled the update frequency"
            impacted = 0.0
            for link_index in range(self.links):
                if link_index < migrated:
                    continue  # TENSOR: zero downtime
                failures = self._poisson(
                    self.failures_per_link_per_month * frequency_factor
                )
                if failures:
                    throughput_bps = self._link_throughput[link_index]
                    impacted += failures * expected_downtime * throughput_bps / 8.0
            series.append(impacted)
        return series

    def _poisson(self, lam):
        """Knuth's method (lam is small here)."""
        import math

        threshold = math.exp(-lam)
        k = 0
        product = self.rng.random()
        while product > threshold:
            k += 1
            product *= self.rng.random()
        return k
