"""Per-container resource accounting (Fig. 6(d)).

"the memory usage and CPU utilization rate increase linearly as the
number of containers on one host machine increases.  Supporting 100
containers only costs 25 GB of memory and 5.6% of the CPU."
"""

from repro.sim.calibration import (
    CONTAINER_CPU_FRACTION,
    CONTAINER_MEMORY_BASE,
    CONTAINER_MEMORY_PER_CONFIG,
    HOST_CORES,
    HOST_MEMORY_BYTES,
)


class ResourceModel:
    """Linear memory/CPU model for containerized BGP."""

    def __init__(
        self,
        memory_base=CONTAINER_MEMORY_BASE,
        memory_per_config=CONTAINER_MEMORY_PER_CONFIG,
        cpu_fraction=CONTAINER_CPU_FRACTION,
    ):
        self.memory_base = memory_base
        self.memory_per_config = memory_per_config
        self.cpu_fraction = cpu_fraction

    def container_memory(self, config_entries):
        """Bytes of RSS for one running BGP+BFD container."""
        return self.memory_base + config_entries * self.memory_per_config

    def container_cpu_fraction(self):
        """Fraction of one host's CPU one idle-ish container consumes."""
        return self.cpu_fraction

    def host_capacity_containers(self, config_entries=1000):
        """How many containers fit on one host (memory- or CPU-bound)."""
        by_memory = HOST_MEMORY_BYTES // self.container_memory(config_entries)
        by_cpu = int(1.0 / self.cpu_fraction)
        return int(min(by_memory, by_cpu))

    @staticmethod
    def host_cores():
        return HOST_CORES
