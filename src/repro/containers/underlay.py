"""The underlay network: VXLAN on the host, vEth into the container.

§3.2.3: "we bind each VRF to a pair of virtual Ethernet interfaces
(vEth) — one inside the container and one on the host — and use a bridge
to connect the VXLAN to the vEth on the host.  In this way, the VRF is
bound to the VXLAN, and the containerization of the VRF is transparent
to any network components or middlewares outside the host."

For the simulation the operative effect is *address ownership*: the VRF's
service address answers on whichever machine currently hosts the active
container.  :class:`Underlay` owns that binding; moving it is the
network-side half of an NSR migration, and exactly one machine can hold
a binding at a time (the forwarding plane cannot split-brain).
"""


class VxlanSegment:
    """One VXLAN VNI terminated on a host machine."""

    def __init__(self, vni, machine):
        self.vni = vni
        self.machine = machine

    def __repr__(self):
        return f"<Vxlan vni={self.vni} on {self.machine.name}>"


class VethPair:
    """A vEth pair: host-side and container-side interface names."""

    def __init__(self, container, vrf_name):
        self.container = container
        self.vrf_name = vrf_name
        self.host_if = f"veth-{container.name}-{vrf_name}"
        self.container_if = f"eth-{vrf_name}"

    def __repr__(self):
        return f"<VethPair {self.host_if}<->{self.container_if}>"


class Bridge:
    """The host bridge stitching a VXLAN to a vEth."""

    def __init__(self, machine, vxlan, veth):
        self.machine = machine
        self.vxlan = vxlan
        self.veth = veth

    def __repr__(self):
        return f"<Bridge {self.vxlan!r} ~ {self.veth!r} on {self.machine.name}>"


class ServiceBinding:
    """One service address currently answered by one machine."""

    def __init__(self, address, machine, container, endpoint, vxlan, veth, bridge):
        self.address = address
        self.machine = machine
        self.container = container
        self.endpoint = endpoint  # the network Host answering the address
        self.vxlan = vxlan
        self.veth = veth
        self.bridge = bridge


class Underlay:
    """Service-address ownership across the gateway fleet."""

    def __init__(self, network):
        self.network = network
        self._bindings = {}  # address -> ServiceBinding
        self._vni_counter = 4096
        self.moves = 0

    def claim(self, address, machine, container, vrf_name="default"):
        """Bind ``address`` to ``container`` on ``machine``.

        Builds the VXLAN/vEth/bridge plumbing and registers the network
        endpoint.  Re-claiming an address moves it (the migration path) —
        the previous owner stops answering immediately.
        """
        previous = self._bindings.get(address)
        if previous is not None:
            self.moves += 1
            # the old endpoint stops answering for the address
            if self.network.hosts.get(address) is previous.endpoint:
                del self.network.hosts[address]
        self._vni_counter += 1
        vxlan = VxlanSegment(self._vni_counter, machine)
        veth = VethPair(container, vrf_name)
        bridge = Bridge(machine, vxlan, veth)
        endpoint = self.network.add_host(
            f"{container.name}.svc.{vrf_name}", address, anchor=machine.host, replace=True
        )
        binding = ServiceBinding(address, machine, container, endpoint, vxlan, veth, bridge)
        self._bindings[address] = binding
        return binding

    def release(self, address):
        binding = self._bindings.pop(address, None)
        if binding is not None and self.network.hosts.get(address) is binding.endpoint:
            del self.network.hosts[address]
        return binding

    def binding(self, address):
        return self._bindings.get(address)

    def owner_machine(self, address):
        binding = self._bindings.get(address)
        return binding.machine if binding else None

    def addresses_on(self, machine):
        return [a for a, b in self._bindings.items() if b.machine is machine]

    def __len__(self):
        return len(self._bindings)
