"""Host machines: the physical gateway servers.

Each machine anchors container endpoints, runs a Docker-daemon-style
process monitor (one of the three container-failure detectors of
§3.3.3), and accounts container resources for Fig. 6(d).
"""

from repro.containers.container import Container, ContainerState
from repro.containers.resources import ResourceModel
from repro.sim.calibration import DOCKER_MONITOR_INTERVAL
from repro.sim.process import Process


class HostMachine:
    """A physical gateway server."""

    def __init__(self, engine, network, name, address):
        self.engine = engine
        self.network = network
        self.name = name
        self.host = network.add_host(name, address)
        self.containers = {}
        self.resources = ResourceModel()
        self.monitor = None
        self._endpoint_subnet = address.rsplit(".", 1)[0]
        self._endpoint_counter = 0

    @property
    def address(self):
        return self.host.address

    @property
    def alive(self):
        return self.host.up

    # ------------------------------------------------------------------
    # containers
    # ------------------------------------------------------------------

    def create_container(self, name, config_entries=100):
        container = Container(self.engine, self, name, config_entries)
        self.containers[name] = container
        return container

    def attach_endpoint(self, name):
        """Create a network endpoint anchored on this machine's NIC.

        Addresses are opaque strings to the fabric; a per-machine counter
        keeps them collision-free.
        """
        self._endpoint_counter += 1
        n = self._endpoint_counter
        address = f"{self._endpoint_subnet}.{100 + n // 250}.{n % 250 + 1}"
        return self.network.add_host(name, address, anchor=self.host)

    def running_containers(self):
        return [c for c in self.containers.values() if c.state is ContainerState.RUNNING]

    # ------------------------------------------------------------------
    # resources (Fig. 6(d))
    # ------------------------------------------------------------------

    def memory_used(self):
        return sum(
            self.resources.container_memory(c.config_entries)
            for c in self.running_containers()
        )

    def cpu_used_fraction(self):
        return sum(
            self.resources.container_cpu_fraction() for c in self.running_containers()
        )

    # ------------------------------------------------------------------
    # failure levers (paper E3/E5)
    # ------------------------------------------------------------------

    def fail(self):
        """E3: machine death — every container and endpoint dies."""
        self.host.fail()
        for container in self.containers.values():
            if container.state is ContainerState.RUNNING:
                container.fail()
        if self.monitor is not None:
            self.monitor.stop()

    def fail_network(self):
        """E5: the machine's NIC fails; containers keep running."""
        self.host.fail_network()

    def recover_network(self):
        self.host.recover_network()

    def recover(self):
        """Manual reset after repair (fencing requires this, §3.3.3)."""
        self.host.recover()
        self.host.recover_network()

    def __repr__(self):
        return f"<HostMachine {self.name!r} containers={len(self.containers)}>"


class ProcessMonitor:
    """Docker-daemon-style monitor: watches container & process health.

    Reports ``(kind, container, detail)`` events to the controller through
    a callback; ``kind`` is "container-dead" or "process-dead".  This is
    detector (i) for container failures in §3.3.3.
    """

    def __init__(self, engine, machine, on_event, interval=DOCKER_MONITOR_INTERVAL):
        self.engine = engine
        self.machine = machine
        self.on_event = on_event
        self.interval = interval
        self.process = Process(engine, f"dockerd:{machine.name}")
        self._task = None
        self._reported = set()
        machine.monitor = self

    def start(self):
        self._task = self.process.every(self.interval, self._poll)

    def _poll(self):
        if not self.machine.alive:
            return
        for container in self.machine.containers.values():
            if container.state is ContainerState.FAILED:
                key = ("container-dead", container.name, container.failed_at)
                if key not in self._reported:
                    self._reported.add(key)
                    self.on_event("container-dead", container, None)
            elif container.state is ContainerState.RUNNING:
                for name in list(container.processes):
                    if not container.process_alive(name):
                        key = ("process-dead", container.name, name, self.engine.now)
                        marker = ("process-dead", container.name, name)
                        if marker not in self._reported:
                            self._reported.add(marker)
                            self.on_event("process-dead", container, name)

    def clear_reported(self, container_name=None):
        """Forget past reports (after recovery) so new failures re-fire."""
        if container_name is None:
            self._reported.clear()
        else:
            self._reported = {
                key for key in self._reported if key[1] != container_name
            }

    def stop(self):
        self.process.kill()
