"""Lightweight virtualization substrate: containers, hosts, underlay.

§3.2's architecture: one BGP process + one BFD process per container, a
primary/backup container pair on different host machines, VXLAN kept on
the host and bound to the container's VRF through a vEth pair and a
bridge, and per-container resource accounting (Fig. 6(d)).
"""

from repro.containers.container import Container, ContainerState
from repro.containers.host import HostMachine, ProcessMonitor
from repro.containers.underlay import Bridge, Underlay, VethPair, VxlanSegment
from repro.containers.resources import ResourceModel

__all__ = [
    "Container",
    "ContainerState",
    "HostMachine",
    "ProcessMonitor",
    "Underlay",
    "VxlanSegment",
    "VethPair",
    "Bridge",
    "ResourceModel",
]
