"""Containers: lifecycle, boot-time model, process supervision.

§3.2.1: "we include one BGP process in one container where one BGP
process can support a few peers using VRF ... Each BGP process should be
running in a pair of containers on different host machines."

Boot time is dominated by configuration loading ("the number of
configurations ... may take up to ~20 minutes" for a monolithic gateway);
per-container configs are small, so containers boot in seconds, and a
*preheated* backup (processes up, state stale) resumes even faster.
"""

import enum

from repro.sim.calibration import (
    CONFIG_LOAD_TIME_PER_ENTRY,
    CONTAINER_BASE_BOOT_TIME,
    CONTAINER_PREHEAT_RESUME_TIME,
)


class ContainerState(enum.Enum):
    CREATED = "created"
    BOOTING = "booting"
    RUNNING = "running"
    STOPPED = "stopped"
    FAILED = "failed"


class Container:
    """One container on a host machine.

    The container owns a management network endpoint (always bound) and
    any number of named processes.  Service addresses (the VRF-facing
    identities) are bound by the :class:`~repro.containers.underlay.Underlay`
    only on the *active* replica of a pair.
    """

    def __init__(self, engine, machine, name, config_entries=100):
        self.engine = engine
        self.machine = machine
        self.name = name
        self.config_entries = config_entries
        self.state = ContainerState.CREATED
        self.endpoint = None  # management Host; created at boot
        self.processes = {}
        self.booted_at = None
        self.failed_at = None
        self.boot_count = 0
        self._boot_callbacks = []

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def boot_time(self, preheated=False):
        """Seconds from start to RUNNING."""
        if preheated:
            return CONTAINER_PREHEAT_RESUME_TIME
        return CONTAINER_BASE_BOOT_TIME + self.config_entries * CONFIG_LOAD_TIME_PER_ENTRY

    def start(self, on_running=None, preheated=False):
        """Boot the container; ``on_running(container)`` fires when up."""
        if self.state is ContainerState.RUNNING:
            if on_running is not None:
                on_running(self)
            return
        if not self.machine.alive:
            raise RuntimeError(f"cannot start {self.name}: machine {self.machine.name} down")
        self.state = ContainerState.BOOTING
        if on_running is not None:
            self._boot_callbacks.append(on_running)
        self.engine.schedule(self.boot_time(preheated), self._finish_boot)

    def _finish_boot(self):
        if self.state is not ContainerState.BOOTING or not self.machine.alive:
            return
        self.state = ContainerState.RUNNING
        self.booted_at = self.engine.now
        self.boot_count += 1
        if self.endpoint is None:
            self.endpoint = self.machine.attach_endpoint(f"{self.name}.mgmt")
        else:
            self.endpoint.recover()
            self.endpoint.recover_network()
        callbacks, self._boot_callbacks = self._boot_callbacks, []
        for callback in callbacks:
            callback(self)

    @property
    def running(self):
        return self.state is ContainerState.RUNNING and self.machine.alive

    # ------------------------------------------------------------------
    # processes
    # ------------------------------------------------------------------

    def add_process(self, name, process):
        """Register a supervised process (anything with crash()/alive)."""
        self.processes[name] = process
        return process

    def remove_process(self, name):
        self.processes.pop(name, None)

    def process_alive(self, name):
        process = self.processes.get(name)
        if process is None:
            return False
        alive = getattr(process, "alive", None)
        if alive is None:
            alive = getattr(process, "running", False)
        return bool(alive)

    def any_process_dead(self):
        return any(not self.process_alive(name) for name in self.processes)

    # ------------------------------------------------------------------
    # failure levers (paper E1/E2/E4)
    # ------------------------------------------------------------------

    def crash_process(self, name):
        """E1: application failure inside the container."""
        process = self.processes.get(name)
        if process is not None and hasattr(process, "crash"):
            process.crash()

    def fail(self):
        """E2: the container itself dies; all its processes die with it."""
        if self.state is not ContainerState.RUNNING:
            return
        self.state = ContainerState.FAILED
        self.failed_at = self.engine.now
        for process in self.processes.values():
            if hasattr(process, "crash"):
                process.crash()
        if self.endpoint is not None:
            self.endpoint.fail()

    def fail_network(self):
        """E4: the container's virtual NIC fails; processes stay alive."""
        if self.endpoint is not None:
            self.endpoint.fail_network()

    def stop(self):
        """Orderly stop (controller-driven kill)."""
        self.state = ContainerState.STOPPED
        for process in self.processes.values():
            stop = getattr(process, "stop", None)
            if stop is not None:
                stop()
            elif hasattr(process, "crash"):
                process.crash()
        if self.endpoint is not None:
            self.endpoint.fail()

    def __repr__(self):
        return f"<Container {self.name!r} on {self.machine.name} {self.state.value}>"
