"""BGP splitting and joint containers (§3.2.4).

"TENSOR revolutionizes this setup by splitting the BGP routing of one
border router into multiple containers, where each container hosts only
one BGP process and supports the minimum number of BGP connections
necessary ...  As a general rule, each BGP container is divided in such a
way that it handles one AS or one client ...  In such scenarios
[requiring shared global information], we introduce an additional joint
BGP container that synchronizes the required information between these
separate containers with the iBGP protocol."
"""


class PeeringSpec:
    """One peering to place: a (client, AS) pair with its peer address."""

    def __init__(self, client, asn, remote_addr, vrf_name=None, share_group=None):
        self.client = client
        self.asn = asn
        self.remote_addr = remote_addr
        self.vrf_name = vrf_name or f"vrf-{client}-{asn}"
        #: peerings in the same share group need global information shared
        #: through a joint container
        self.share_group = share_group

    def __repr__(self):
        return f"<PeeringSpec {self.client}/AS{self.asn} {self.remote_addr}>"


class ContainerAssignment:
    """One planned container: the peerings it will host."""

    def __init__(self, name, peerings):
        self.name = name
        self.peerings = list(peerings)

    def vrf_names(self):
        return [p.vrf_name for p in self.peerings]

    def __repr__(self):
        return f"<ContainerAssignment {self.name} peers={len(self.peerings)}>"


class JointContainerSpec:
    """A joint container iBGP-meshed with its member containers."""

    def __init__(self, name, share_group, member_names):
        self.name = name
        self.share_group = share_group
        self.member_names = list(member_names)

    def __repr__(self):
        return (
            f"<JointContainerSpec {self.name} group={self.share_group}"
            f" members={self.member_names}>"
        )


class SplitPlan:
    """The output of :func:`plan_split`."""

    def __init__(self, assignments, joints):
        self.assignments = assignments
        self.joints = joints

    def container_count(self):
        return len(self.assignments) + len(self.joints)

    def assignment_of(self, client, asn):
        for assignment in self.assignments:
            for peering in assignment.peerings:
                if peering.client == client and peering.asn == asn:
                    return assignment
        return None

    def __repr__(self):
        return f"<SplitPlan containers={len(self.assignments)} joints={len(self.joints)}>"


def plan_split(peerings, max_peers_per_container=1, name_prefix="bgp"):
    """Assign peerings to containers and plan joint containers.

    The general rule is one AS or one client per container
    (``max_peers_per_container=1``); raising the limit groups peerings of
    the *same client* to model the "support a few peers using VRF" case.
    Peerings that declare a ``share_group`` additionally get a joint
    container that iBGP-meshes their host containers.
    """
    assignments = []
    index = 0
    # group by client so a multi-AS client can share a container when the
    # limit allows, but never mix clients
    by_client = {}
    for peering in peerings:
        by_client.setdefault(peering.client, []).append(peering)
    for client in sorted(by_client):
        client_peerings = by_client[client]
        for start in range(0, len(client_peerings), max_peers_per_container):
            chunk = client_peerings[start : start + max_peers_per_container]
            assignments.append(ContainerAssignment(f"{name_prefix}-{index}", chunk))
            index += 1

    joints = []
    groups = {}
    for assignment in assignments:
        for peering in assignment.peerings:
            if peering.share_group is not None:
                groups.setdefault(peering.share_group, set()).add(assignment.name)
    for group in sorted(groups):
        members = sorted(groups[group])
        if len(members) > 1:
            joints.append(
                JointContainerSpec(f"{name_prefix}-joint-{group}", group, members)
            )
    return SplitPlan(assignments, joints)
