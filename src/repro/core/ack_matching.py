"""The ``tcp_queue`` thread: delayed acknowledgments via NFQUEUE.

§3.1.2: "TENSOR introduces another thread named tcp_queue.  This thread
accepts the TCP ACK packets re-routed by Netfilter and holds them in a
FIFO queue until it confirms that the messages are properly replicated.
... tcp_queue releases any held-up TCP ACK packet whenever the
corresponding message has been properly replicated in the database."

The matching uses inferred ACK numbers: the main thread writes each
message's inferred ACK number with the record; ``tcp_queue`` verifies the
record exists in the database (a read — the source of TENSOR's small
receive-side overhead, §4.2) and then releases every held ACK whose ACK
number is covered.
"""

from repro.netfilter import Rule, Verdict
from repro.trace.tracer import tracer_of

TENSOR_ACK_QUEUE = 1

#: Delay before re-issuing a failed verify read, and how many times to
#: try.  A verify read in flight when the database fails over would
#: otherwise strand its ACK forever: the write is already durable on the
#: promoted replica, but nothing would ever re-verify it.  The cap keeps
#: a truly dead database from accumulating timers — at that point ACKs
#: staying held is the fail-safe direction anyway.
VERIFY_RETRY_DELAY = 0.5
VERIFY_RETRY_LIMIT = 40


def _is_pure_ack(segment):
    return (
        segment.has_ack
        and not segment.payload
        and not segment.syn
        and not segment.fin
        and not segment.rst
    )


class TcpQueueThread:
    """One per TENSOR BGP process; consumes the process's NFQUEUE."""

    def __init__(self, engine, pipeline, verify_reads=True):
        self.engine = engine
        self.pipeline = pipeline
        self.verify_reads = verify_reads
        self._conns = {}  # (local_port, remote_addr, remote_port) -> entry
        self.crashed = False
        self.acks_held = 0
        self.acks_released = 0
        self.acks_dropped_redundant = 0
        self.verify_read_count = 0
        self._bound_stacks = []

    # ------------------------------------------------------------------
    # installation
    # ------------------------------------------------------------------

    def attach_stack(self, stack):
        """Bind this thread as the stack's NFQUEUE consumer."""
        if stack not in self._bound_stacks:
            stack.nfqueue.bind(TENSOR_ACK_QUEUE, self._on_queued_packet)
            self._bound_stacks.append(stack)

    def install_for_connection(self, stack, conn, keys):
        """Install OUTPUT-chain rules for one managed BGP connection.

        Rule 1 re-routes the connection's pure ACKs to our NFQUEUE.
        Rule 2 drops RST/FIN for the connection — a crashed process must
        not let the kernel tear the connection down visibly (the backup
        will adopt it).
        """
        self.attach_stack(stack)
        tup = (conn.local_port, conn.remote_addr, conn.remote_port)

        def match_ack(packet, tup=tup):
            return (
                (packet.sport, packet.dst, packet.dport) == tup
                and _is_pure_ack(packet.payload)
            )

        def match_teardown(packet, tup=tup):
            segment = packet.payload
            return (
                (packet.sport, packet.dst, packet.dport) == tup
                and (segment.rst or segment.fin)
            )

        ack_rule = stack.output_chain.append(
            Rule(match_ack, Verdict.QUEUE, queue_num=TENSOR_ACK_QUEUE,
                 comment=f"tensor-ack {keys.conn_id}")
        )
        guard_rule = stack.output_chain.append(
            Rule(match_teardown, Verdict.DROP, comment=f"tensor-guard {keys.conn_id}")
        )
        self._conns[tup] = {
            "keys": keys,
            "held": [],  # FIFO of (ack_number, QueuedPacket)
            "confirmed_pos": 0,  # highest ACK number verified in the DB
            "waiters": [],  # (ack_number, callback) run once confirmed
            "rules": (ack_rule, guard_rule),
            "stack": stack,
        }

    def uninstall_connection(self, conn):
        tup = (conn.local_port, conn.remote_addr, conn.remote_port)
        entry = self._conns.pop(tup, None)
        if entry is not None:
            for rule in entry["rules"]:
                entry["stack"].output_chain.delete(rule)
            for _ack, queued in entry["held"]:
                queued.drop()
            # The connection is being torn down deliberately: pending
            # deferred work (record prunes) may run now.
            for _ack, callback in entry["waiters"]:
                callback()

    # ------------------------------------------------------------------
    # the FIFO queue
    # ------------------------------------------------------------------

    def _on_queued_packet(self, queued):
        if self.crashed:
            # nothing listens on the queue anymore: the kernel drops
            queued.drop()
            return
        packet = queued.packet
        tup = (packet.sport, packet.dst, packet.dport)
        entry = self._conns.get(tup)
        if entry is None:
            queued.accept()  # unmanaged connection: pass through
            return
        ack = packet.payload.ack
        if ack <= entry["confirmed_pos"]:
            self.acks_released += 1
            queued.accept()
            return
        entry["held"].append((ack, queued))
        self.acks_held += 1

    def note_replicated(self, keys, ack_position, record_key, span=None):
        """The main/keepalive thread committed a message record.

        Verify it in the database (unless configured off), then release
        all held ACKs the position covers.  ``span`` is the caller's open
        ``ack_release`` trace span: it brackets the verify-read and the
        verdict, and released hold spans are linked back to its trace.
        """
        entry = self._entry_for_keys(keys)
        if entry is None:
            if span is not None:
                span.finish(outcome="unmanaged")
            return
        if not self.verify_reads:
            self._confirm(entry, ack_position, span)
            return
        self._verify(keys, ack_position, record_key, span, attempts=0)

    def _verify(self, keys, ack_position, record_key, span, attempts):
        entry = self._entry_for_keys(keys)
        if (
            self.crashed
            or entry is None  # connection torn down meanwhile
            or ack_position <= entry["confirmed_pos"]  # covered already
        ):
            if span is not None:
                span.finish(outcome="superseded")
            return
        self.verify_read_count += 1
        verify_span = None
        if span is not None:
            verify_span = tracer_of(self.engine).begin(
                "verify_read", parent=span, key=record_key
            )

        def on_error(_method, _cause):
            # DB unreachable: the ACK stays held (fail-safe direction)
            # while bounded retries chase the record — after a failover
            # the promoted replica *has* it, and without a re-read the
            # ACK would be stranded forever.
            if verify_span is not None:
                verify_span.finish(outcome="error")
            if attempts < VERIFY_RETRY_LIMIT:
                self.engine.schedule(
                    VERIFY_RETRY_DELAY, self._verify,
                    keys, ack_position, record_key, span, attempts + 1,
                )
            elif span is not None:
                span.finish(outcome="error")

        self.pipeline.verify_read(
            record_key,
            on_value=lambda value: self._on_verified(
                entry, ack_position, value, span, verify_span
            ),
            on_error=on_error,
        )

    def _on_verified(self, entry, ack_position, value, span=None,
                     verify_span=None):
        if verify_span is not None:
            verify_span.finish(present=value is not None)
        if value is None:
            if span is not None:
                span.finish(outcome="unverified")
            return  # not actually present: keep holding (fail-safe)
        self._confirm(entry, ack_position, span)

    def when_confirmed(self, keys, ack_number, callback):
        """Run ``callback`` once ``confirmed_pos`` covers ``ack_number``.

        The apply path uses this to defer pruning an incoming message
        record until its replication has been verified: pruning earlier
        races the verification read (the record vanishes, the read
        returns None, and the fail-safe direction then holds the peer's
        ACK forever).  An unmanaged connection has nothing to defer for —
        the callback runs immediately.
        """
        entry = self._entry_for_keys(keys)
        if entry is None or entry["confirmed_pos"] >= ack_number:
            callback()
            return
        entry["waiters"].append((ack_number, callback))

    def _confirm(self, entry, ack_position, span=None):
        if ack_position > entry["confirmed_pos"]:
            entry["confirmed_pos"] = ack_position
        if entry["waiters"]:
            ready = [
                cb for ack, cb in entry["waiters"]
                if ack <= entry["confirmed_pos"]
            ]
            entry["waiters"] = [
                (ack, cb) for ack, cb in entry["waiters"]
                if ack > entry["confirmed_pos"]
            ]
            for callback in ready:
                callback()
        held = entry["held"]
        keep = []
        releasable = []
        for ack, queued in held:
            if ack <= entry["confirmed_pos"]:
                releasable.append((ack, queued))
            else:
                keep.append((ack, queued))
        entry["held"] = keep
        # Release in ascending ACK order; TCP ACKs are cumulative so only
        # the newest matters, but in-order release keeps traces readable.
        releasable.sort(key=lambda pair: pair[0])
        if releasable:
            if span is not None:
                # Link each hold span to the message whose durability
                # freed it: the delayed-ACK invariant is checked span
                # against span (hold must outlive the replicate span).
                for _ack, queued in releasable:
                    if queued.span is not None:
                        queued.span.annotate(released_by=span.trace_id)
            # Only the highest ACK needs the wire; older ones are redundant.
            for ack, queued in releasable[:-1]:
                self.acks_dropped_redundant += 1
                queued.drop()
            self.acks_released += 1
            releasable[-1][1].accept()
        if span is not None:
            span.finish(released=len(releasable))

    def _entry_for_keys(self, keys):
        for entry in self._conns.values():
            if entry["keys"].conn_id == keys.conn_id:
                return entry
        return None

    def held_count(self):
        return sum(len(entry["held"]) for entry in self._conns.values())

    def crash(self):
        """Process death: held ACKs die with us (never released), and any
        later packet hitting our queue is dropped like an unconsumed
        kernel NFQUEUE."""
        self.crashed = True
        for entry in self._conns.values():
            entry["held"].clear()
        self._conns.clear()
