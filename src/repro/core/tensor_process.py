"""The TENSOR BGP process: a BGP speaker with kernel-free replication.

Interposes on the three paths of §3.1.2:

- **incoming messages** — replicate to the database in parallel with
  normal processing; the inferred ACK number rides with the record so the
  ``tcp_queue`` thread can release the matching held TCP ACK once the
  write commits (and is verified by a read);
- **outgoing messages** — "the main and keepalive threads execute a
  database write operation before handing over any message to the IO
  thread" (delayed sending); records are pruned when the remote peer's
  cumulative ACK covers them;
- **applied messages** — pruned from the database, with the routing-table
  delta persisted first so the backup never replays history.
"""

from repro.bgp.messages import UpdateMessage
from repro.bgp.rib import Route
from repro.bgp.speaker import BgpSpeaker
from repro.core.ack_matching import TcpQueueThread
from repro.core.replication import ConnectionKeys
from repro.trace.tracer import tracer_of


class TensorBgpSpeaker(BgpSpeaker):
    """One TENSOR BGP process (runs inside one container)."""

    def __init__(self, engine, stack, config, pipeline, pair_name,
                 verify_reads=True, hold_acks=True):
        super().__init__(engine, stack, config)
        self.pipeline = pipeline
        self.pair_name = pair_name
        #: Ablation lever: with hold_acks=False the Netfilter interception
        #: is skipped entirely, reproducing the §3.1.1 inconsistency (ACKs
        #: escape before replication commits).
        self.hold_acks = hold_acks
        self.tcp_queue = TcpQueueThread(engine, pipeline, verify_reads=verify_reads)
        self._conn_keys = {}  # peer_id -> ConnectionKeys
        self._out_pos = {}  # peer_id -> stream offset after last queued msg
        self._out_unpruned = {}  # peer_id -> sorted [(pos, key_pos)] pending prune
        self._out_pruned_pos = {}  # peer_id -> highest pruned offset
        self._partial_outstanding = set()  # peer_ids with a live partial record
        self.replicated_in_messages = 0
        self.replicated_out_messages = 0
        self.pruned_messages = 0
        #: Exactly-once apply accounting: per-connection high-water mark of
        #: applied incoming stream positions.  Positions strictly increase
        #: within one process incarnation (recovery replay resumes above
        #: the durable watermark), so applying a position at or below the
        #: mark means the same message reached the RIB twice — the NSR
        #: invariant the chaos oracles watch via ``duplicate_applies``.
        self._applied_in_pos = {}  # peer_id -> highest applied in-position
        self.duplicate_applies = 0

    # ------------------------------------------------------------------
    # connection bring-up
    # ------------------------------------------------------------------

    def tcp_established(self, session):
        conn = session.conn
        keys = ConnectionKeys(
            self.pair_name,
            session.config.vrf_name,
            conn.local_addr,
            conn.local_port,
            conn.remote_addr,
            conn.remote_port,
        )
        self._conn_keys[session.peer_id] = keys
        self._out_pos[session.peer_id] = 0
        self._out_unpruned[session.peer_id] = []
        self._out_pruned_pos.setdefault(session.peer_id, 0)
        if self.hold_acks:
            self.tcp_queue.install_for_connection(self.stack, conn, keys)
        self.pipeline.write_session_record(
            keys,
            {
                "iss": conn.iss,
                "irs": conn.irs,
                "local_addr": conn.local_addr,
                "local_port": conn.local_port,
                "remote_addr": conn.remote_addr,
                "remote_port": conn.remote_port,
                "remote_as": session.config.remote_as,
                "vrf": session.config.vrf_name,
                "hold_time": session.config.hold_time,
                "keepalive_interval": session.config.keepalive_interval,
                "mode": session.config.mode,
                "established_at": self.engine.now,
            },
        )

    def keys_for(self, session):
        return self._conn_keys.get(session.peer_id)

    # ------------------------------------------------------------------
    # incoming: replicate + delayed ACK + apply + prune
    # ------------------------------------------------------------------

    def dispatch_received(self, session, message, size):
        keys = self.keys_for(session)
        if keys is None:
            super().dispatch_received(session, message, size)
            return
        position = session.cumulative_received  # offset after this message
        inferred_ack = session.inferred_ack_number
        record = {
            "dir": "i",
            "in_pos": position,
            "ack": inferred_ack,
            "wire_len": size,
            "message": message,
        }
        self.replicated_in_messages += 1
        record_key = keys.message("i", position)
        tracer = tracer_of(self.engine)
        if tracer.enabled:
            # Root span: its trace id is the message id the query API uses.
            trace = tracer.begin(
                "update", parent=None,
                msg=type(message).__name__, peer=session.peer_id,
                conn=keys.conn_id, pos=position, ack=inferred_ack,
            )
            rx_began = session.last_rx_began
            if rx_began is not None:
                tracer.complete("receive", rx_began, parent=trace, bytes=size)
            replicate_span = tracer.begin("replicate", parent=trace,
                                          pos=position)

            def on_committed():
                replicate_span.finish()
                release_span = tracer.begin("ack_release", parent=trace,
                                            ack=inferred_ack)
                self.tcp_queue.note_replicated(
                    keys, inferred_ack, record_key, span=release_span
                )
        else:
            trace = None

            def on_committed():
                self.tcp_queue.note_replicated(keys, inferred_ack, record_key)

        self.pipeline.replicate_message(
            keys, "i", position, record, on_committed=on_committed
        )
        # Regular processing proceeds in parallel (§3.1.1: "the primary
        # also performs the regular processing of BGP messages").
        cost = self._receive_cost_of(message)
        self.charge(
            cost, self._apply_and_prune, session, message, size, keys, position,
            inferred_ack, trace,
        )

    def stream_progress(self, session):
        """Replicate a buffered partial-message tail (see base docstring).

        Without this, a peer whose congestion window collapsed to one
        segment during our outage deadlocks after migration: its lone
        retransmitted segment ends mid-message, the ACK stays held waiting
        for a completion that requires the very ACK to be released.
        Replicating the fragment makes every received byte coverable.
        """
        if not self.hold_acks:
            return
        keys = self.keys_for(session)
        if keys is None:
            return
        decoder = session.decoder
        pending = decoder.pending_bytes
        partial_key = f"tensor:{self.pair_name}:part:{keys.conn_id}"
        if pending == 0:
            if session.peer_id in self._partial_outstanding:
                self._partial_outstanding.discard(session.peer_id)
                self.pipeline.bulk.delete(partial_key)
            return
        upto = session.cumulative_received + pending
        ack_position = session.initial_ack + upto
        record = {"bytes": decoder.pending_data(), "upto": upto}
        self._partial_outstanding.add(session.peer_id)
        self.pipeline.fast.set(
            partial_key,
            record,
            on_done=lambda: self.tcp_queue.note_replicated(
                keys, ack_position, partial_key
            ),
        )

    def _apply_and_prune(self, session, message, size, keys, position, ack=None,
                         trace=None):
        if not self.running:
            return
        if trace is None:
            self._apply_and_prune_inner(session, message, size, keys, position,
                                        ack)
            return
        tracer = tracer_of(self.engine)
        # The apply phase runs in parallel with replication: it starts at
        # dispatch (when the CPU charge was queued) and ends here, after
        # Loc-RIB reselect and the RIB delta persist are enqueued.  The
        # body runs under the apply span so queued advertisements link the
        # resulting propagate spans back to this message.
        apply_span = tracer.begin("apply", parent=trace, pos=position)
        apply_span.begin = trace.begin
        with tracer.activate(apply_span):
            self._apply_and_prune_inner(session, message, size, keys, position,
                                        ack)
        apply_span.finish()
        trace.finish()

    def _apply_and_prune_inner(self, session, message, size, keys, position,
                               ack):
        if position <= self._applied_in_pos.get(session.peer_id, 0):
            self.duplicate_applies += 1
        else:
            self._applied_in_pos[session.peer_id] = position
        self._apply_received(session, message, size)
        if isinstance(message, UpdateMessage) and session.established:
            self._persist_rib_delta(session, message, position)
        # "we remove the replicated messages that have been applied to
        #  routing tables from the database" — but not before tcp_queue
        # has verified the record: pruning earlier races the verification
        # read and would leave the peer's ACK held forever.
        if ack is None:
            self.pipeline.delete_message(keys, "i", position)
        else:
            self.tcp_queue.when_confirmed(
                keys, ack,
                lambda: self.pipeline.delete_message(keys, "i", position),
            )
        self.pruned_messages += 1
        self.pipeline.update_tcp_status(
            keys,
            {
                "in_pos": position,
                "out_pruned": self._out_pruned_pos.get(session.peer_id, 0),
            },
        )
        self._prune_outgoing(session, keys)

    def _persist_rib_delta(self, session, message, position):
        vrf_name = session.config.vrf_name
        announce = []
        if message.nlri and message.attributes is not None:
            route = session.adj_rib_in  # post-import-policy attributes live here
            for prefix in message.nlri:
                stored = route.get(prefix)
                if stored is not None:
                    announce.append(
                        (str(prefix), stored.attributes.to_wire(), session.peer_id,
                         stored.source_kind)
                    )
        withdraw = [(str(prefix), session.peer_id) for prefix in message.withdrawn]
        delta = {"announce": announce, "withdraw": withdraw, "in_pos": position}
        self.pipeline.record_rib_delta(vrf_name, delta)
        if self.pipeline.needs_compaction(vrf_name):
            self.pipeline.compact(vrf_name, self.vrfs[vrf_name].loc_rib)

    # ------------------------------------------------------------------
    # outgoing: replicate before handing to the IO thread
    # ------------------------------------------------------------------

    def dispatch_send(self, session, message, generation_cost=None):
        keys = self.keys_for(session)
        if generation_cost is None:
            generation_cost = self._send_cost_of(message)
        if keys is None:
            super().dispatch_send(session, message, generation_cost)
            return
        wire = message.to_wire()
        peer_id = session.peer_id
        position = self._out_pos.get(peer_id, 0) + len(wire)
        self._out_pos[peer_id] = position
        self._out_unpruned.setdefault(peer_id, []).append(position)
        record = {
            "dir": "o",
            "out_pos": position,
            "wire_len": len(wire),
            "wire": wire,
        }
        self.replicated_out_messages += 1
        tracer = tracer_of(self.engine)
        span = None
        if tracer.enabled and isinstance(message, UpdateMessage):
            # Outgoing UPDATEs are their own trace; ``links`` names the
            # received messages whose changes this advertisement carries
            # (empty for resync/initial-table sends).
            span = tracer.begin(
                "propagate", parent=None,
                peer=session.peer_id, pos=position,
                links=self._flushing_links,
            )

        def after_generation():
            if not self.running:
                if span is not None:
                    span.finish(outcome="dropped")
                return
            if span is None:
                self.pipeline.replicate_message(
                    keys, "o", position, record,
                    on_committed=lambda: self._transmit(session, message, wire),
                )
                return
            out_span = tracer.begin("replicate_out", parent=span, pos=position)

            def on_committed():
                out_span.finish()
                self._transmit(session, message, wire)
                span.finish()

            self.pipeline.replicate_message(
                keys, "o", position, record, on_committed=on_committed
            )

        self.charge(generation_cost, after_generation)

    def _prune_outgoing(self, session, keys):
        """Drop outgoing records the remote's cumulative ACK covers."""
        conn = session.conn
        if conn is None:
            return
        acked_stream_pos = conn.snd_una - (conn.iss + 1)
        unpruned = self._out_unpruned.get(session.peer_id)
        if not unpruned:
            return
        pruned_to = self._out_pruned_pos.get(session.peer_id, 0)
        # Keep at least the newest record: it anchors the send-stream
        # position for recovery (its end offset is the next byte to use).
        while len(unpruned) > 1 and unpruned[0] <= acked_stream_pos:
            position = unpruned.pop(0)
            self.pipeline.delete_message(keys, "o", position)
            self.pruned_messages += 1
            pruned_to = position
        self._out_pruned_pos[session.peer_id] = pruned_to

    # ------------------------------------------------------------------
    # NSR adoption (backup side)
    # ------------------------------------------------------------------

    def adopt_recovered_session(self, peer_config, conn, meta, in_pos, out_state):
        """Attach a repaired TCP connection as an ESTABLISHED session.

        ``meta`` is the stored session record; ``in_pos`` the recovered
        incoming stream position; ``out_state`` is ``(out_pos,
        unpruned_positions, pruned_pos)`` for the outgoing direction.
        """
        session = self.add_peer(peer_config, autostart=False)
        out_pos, unpruned, pruned_pos = out_state
        session.force_resume(
            conn,
            initial_seq=meta["iss"] + 1,
            initial_ack=meta["irs"] + 1,
            cumulative_received=in_pos,
            cumulative_sent=out_pos,
        )
        keys = ConnectionKeys(
            self.pair_name,
            peer_config.vrf_name,
            conn.local_addr,
            conn.local_port,
            conn.remote_addr,
            conn.remote_port,
        )
        self._conn_keys[session.peer_id] = keys
        self._out_pos[session.peer_id] = out_pos
        self._out_unpruned[session.peer_id] = list(unpruned)
        self._out_pruned_pos[session.peer_id] = pruned_pos
        self.tcp_queue.install_for_connection(self.stack, conn, keys)
        # ACKs up to the recovered position are considered confirmed (the
        # records for anything newer are still in the database).
        self.tcp_queue.note_replicated(keys, meta["irs"] + 1 + in_pos, keys.session)
        self._rebuild_adj_rib_in(session)
        return session

    def _rebuild_adj_rib_in(self, session):
        """Repopulate the peer's Adj-RIB-In from Loc-RIB candidates."""
        vrf = session.vrf
        for prefix in list(vrf.loc_rib.prefixes()):
            for peer_id, route in vrf.loc_rib.candidates(prefix).items():
                if peer_id == session.peer_id:
                    session.adj_rib_in.update(route)

    def apply_recovered_message(self, session, record):
        """Replay one stored-but-unapplied incoming message."""
        message = record["message"]
        keys = self.keys_for(session)
        cost = self._receive_cost_of(message)
        tracer = tracer_of(self.engine)
        trace = None
        if tracer.enabled:
            # The replay is a fresh trace in the new process; ``replay``
            # plus (conn, pos) tie it to the original incarnation's trace.
            trace = tracer.begin(
                "update", parent=None, replay=True,
                msg=type(message).__name__, peer=session.peer_id,
                conn=keys.conn_id, pos=record["in_pos"],
                ack=record.get("ack"),
            )
        self.charge(
            cost,
            self._apply_and_prune,
            session,
            message,
            record["wire_len"],
            keys,
            record["in_pos"],
            record.get("ack"),
            trace,
        )

    # ------------------------------------------------------------------

    def crash(self):
        super().crash()
        self.tcp_queue.crash()

    def storage_footprint(self, store):
        """Bytes of message records currently in ``store`` for this pair
        (the §3.1.2 storage-bound invariant)."""
        return store.size_bytes(f"tensor:{self.pair_name}:msg:")
