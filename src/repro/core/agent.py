"""The agent server (§3.3.2-3.3.3).

"We introduce a third node — an agent server — to be the BFD relay
during the short rebooting/migration interval ...  The agent server runs
duplicate BFD processes for all the containers on other machines ...
Since the task on the agent server is simple and lightweight, we do not
containerize its BFD processes."

The agent also sends IP SLA probes to the containers and host machines
and reports results to the controller — it is the witness node that
breaks the two-node split-brain symmetry.
"""

from repro.bfd.process import BfdRelay
from repro.control.ipsla import IpSlaProber


class AgentServer:
    """The uncontainerized agent: BFD relays + IP SLA probes."""

    def __init__(self, engine, host, controller=None, rng=None):
        self.engine = engine
        self.host = host
        self.controller = controller
        self.rng = rng
        self.relays = {}  # pair_name -> BfdRelay
        self.prober = IpSlaProber(
            engine,
            host,
            name=f"agent:{host.name}",
            on_change=self._on_probe_change,
        )
        self._target_kinds = {}  # target name -> ("machine"|"container", machine)
        self.prober.start()

    # ------------------------------------------------------------------
    # BFD relays
    # ------------------------------------------------------------------

    def register_relay(self, pair_name, specs):
        """(Re)start the duplicate BFD transmitters for one pair."""
        existing = self.relays.get(pair_name)
        if existing is not None:
            existing.update_specs(specs)
            return existing
        relay = BfdRelay(self.engine, self.host, specs, rng=self.rng)
        relay.start()
        self.relays[pair_name] = relay
        return relay

    def stop_relay(self, pair_name):
        relay = self.relays.pop(pair_name, None)
        if relay is not None:
            relay.stop()

    # ------------------------------------------------------------------
    # IP SLA probing
    # ------------------------------------------------------------------

    def probe_machine(self, machine):
        self._target_kinds[machine.name] = ("machine", machine.name)
        self.prober.add_target(machine.name, machine.address)

    def probe_container(self, container, machine):
        self._target_kinds[container.name] = ("container", machine.name)
        self.prober.add_target(container.name, container.endpoint.address)

    def retarget_container(self, container_name, new_addr):
        self.prober.retarget(container_name, new_addr)

    def _on_probe_change(self, _prober, target_name, reachable):
        if self.controller is None:
            return
        kind, machine_name = self._target_kinds.get(target_name, (None, None))
        detector = self.controller.detector
        if kind == "machine":
            detector.note_machine_agent_ipsla(target_name, reachable)
        elif kind == "container":
            detector.note_container_ipsla(target_name, reachable, machine_name)

    # ------------------------------------------------------------------

    def fail(self):
        """Agent death.  §3.3.2: "in normal times, the failure of the
        agent ... will not affect the normal TENSOR functioning"."""
        self.host.fail()
        for relay in self.relays.values():
            relay.stop()
        self.prober.stop()

    def __repr__(self):
        return f"<AgentServer {self.host.name} relays={len(self.relays)}>"
