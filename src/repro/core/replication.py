"""Replication pipeline: key schema, write coalescing, pruning, deltas.

Key schema (§4.1: "the key consists of a 16B VRF prefix, a 36B four-tuple
identification ... and a 38B identification for the peering AS and the
client", values are whole BGP messages capped at 4 KB):

    tensor:{pair}:sess:{conn}          session metadata (initial SEQ/ACK,
                                       addresses, peer AS) — written once
    tensor:{pair}:tcp:{conn}           watermarks: applied-in position,
                                       pruned-out position (the "TCP status")
    tensor:{pair}:msg:{conn}:i:{pos}   one incoming message; pos = stream
                                       offset after the message
    tensor:{pair}:msg:{conn}:o:{pos}   one outgoing message
    tensor:{pair}:rib:{vrf}:d:{seq}    one routing-table delta (the effect
                                       of one applied UPDATE)
    tensor:{pair}:rib:{vrf}:s:{chunk}  compacted snapshot chunks

Two channels with separate clients keep latency-critical message
replication (which gates ACK release) from queueing behind bulk
routing-table writes:

- **fast**: incoming/outgoing message records, session metadata, the
  verify reads issued by ``tcp_queue``;
- **bulk**: RIB deltas, message deletion after application ("we remove
  the replicated messages that have been applied to routing tables"),
  watermark updates, periodic compaction.
"""

from repro.kvstore.locks import LockManager

#: Compact RIB deltas into snapshot chunks past this many deltas per VRF.
COMPACTION_THRESHOLD = 1024
#: Routes per snapshot chunk record (keeps values at realistic KV sizes).
SNAPSHOT_CHUNK_ROUTES = 500
#: Replication write retries before declaring the database unavailable.
WRITE_RETRIES = 3


class ConnectionKeys:
    """Key builder for one BGP connection."""

    def __init__(self, pair_name, vrf, local_addr, local_port, remote_addr, remote_port):
        self.pair_name = pair_name
        self.vrf = vrf
        self.conn_id = f"{vrf}|{local_addr}:{local_port}|{remote_addr}:{remote_port}"
        self._base = f"tensor:{pair_name}"

    @property
    def session(self):
        return f"{self._base}:sess:{self.conn_id}"

    @property
    def tcp_status(self):
        return f"{self._base}:tcp:{self.conn_id}"

    def message(self, direction, position):
        return f"{self._base}:msg:{self.conn_id}:{direction}:{position:016d}"

    def message_prefix(self, direction):
        return f"{self._base}:msg:{self.conn_id}:{direction}:"

    def __repr__(self):
        return f"<ConnectionKeys {self.conn_id}>"


def rib_delta_key(pair_name, vrf, seq):
    return f"tensor:{pair_name}:rib:{vrf}:d:{seq:016d}"

def rib_snapshot_key(pair_name, vrf, chunk):
    return f"tensor:{pair_name}:rib:{vrf}:s:{chunk:08d}"

def rib_prefix(pair_name, vrf):
    return f"tensor:{pair_name}:rib:{vrf}:"

def pair_prefix(pair_name):
    return f"tensor:{pair_name}:"


class WriteCoalescer:
    """Batches sets/deletes to one KV client, one batch in flight.

    Operations are applied in exact enqueue order: each flush takes the
    longest prefix of same-kind operations (a run of sets becomes one
    ``mset``, a run of deletes one ``delete``), so a set enqueued after a
    delete of the same key can never be eaten by that delete — the
    property test in tests/test_properties_extra.py pinned this down.
    Failed batches are retried; persistent unavailability surfaces
    through ``on_unavailable``, on which the caller keeps ACKs held (the
    fail-safe direction).
    """

    def __init__(self, client, max_batch=512, on_unavailable=None):
        self.client = client
        self.max_batch = max_batch
        self.on_unavailable = on_unavailable
        self._pending = []  # ("set", key, value, cb) | ("delete", key, None, cb)
        self._in_flight = False
        self.batches_flushed = 0
        self.records_written = 0
        self.records_deleted = 0
        self.failures = 0

    def set(self, key, value, on_done=None):
        self._pending.append(("set", key, value, on_done))
        self._maybe_flush()

    def delete(self, key, on_done=None):
        self._pending.append(("delete", key, None, on_done))
        self._maybe_flush()

    @property
    def backlog(self):
        return len(self._pending)

    def _maybe_flush(self):
        if not self._in_flight and self._pending:
            self._in_flight = True
            self._flush_run()

    def _take_run(self):
        """Pop the longest same-kind prefix of the queue (<= max_batch)."""
        kind = self._pending[0][0]
        count = 0
        for op in self._pending:
            if op[0] != kind or count >= self.max_batch:
                break
            count += 1
        run, self._pending = self._pending[:count], self._pending[count:]
        return kind, run

    def _flush_run(self):
        if not self._pending:
            self._in_flight = False
            return
        kind, run = self._take_run()
        if kind == "set":
            self._issue_sets(run, retries=WRITE_RETRIES)
        else:
            self._issue_deletes(run, retries=WRITE_RETRIES)

    def _issue_sets(self, run, retries):
        items = [(key, value) for _kind, key, value, _cb in run]

        def on_done():
            self.batches_flushed += 1
            self.records_written += len(run)
            for _kind, _key, _value, callback in run:
                if callback is not None:
                    callback()
            self._flush_run()

        def on_error(_method):
            self.failures += 1
            if retries > 0:
                self._issue_sets(run, retries - 1)
            else:
                self._give_up(len(run))

        self.client.mset(items, on_done=on_done, on_error=on_error)

    def _issue_deletes(self, run, retries):
        keys = [key for _kind, key, _value, _cb in run]

        def on_done(_removed):
            self.batches_flushed += 1
            self.records_deleted += len(run)
            for _kind, _key, _value, callback in run:
                if callback is not None:
                    callback()
            self._flush_run()

        def on_error(_method):
            self.failures += 1
            if retries > 0:
                self._issue_deletes(run, retries - 1)
            else:
                self._give_up(len(run))

        self.client.delete(keys, on_done=on_done, on_error=on_error)

    def _give_up(self, dropped):
        """Database unavailable: stop retrying, keep the system fail-safe."""
        self._in_flight = False
        if self.on_unavailable is not None:
            self.on_unavailable(dropped)


class ReplicationPipeline:
    """The TENSOR process's view of the database.

    Owns the fast and bulk coalescers, the per-connection message locks
    (§3.1.2: main and keepalive threads both write; ordering is required
    only *within* a connection), RIB delta sequencing and compaction.
    """

    def __init__(self, pair_name, fast_client, bulk_client, on_unavailable=None,
                 remote_client=None, remote_mode="sync"):
        self.pair_name = pair_name
        self.fast = WriteCoalescer(fast_client, on_unavailable=on_unavailable)
        self.bulk = WriteCoalescer(bulk_client, on_unavailable=on_unavailable)
        self.fast_client = fast_client
        self.bulk_client = bulk_client
        # §5 "Remote replication for disaster recovery": an optional second
        # store in another facility.  "sync" gates ACK release on the
        # remote commit too (safe, slow — Fig. 5(a) shows why); "async"
        # fires and forgets (fast, loses the most recent messages in a
        # true disaster).
        if remote_mode not in ("sync", "async"):
            raise ValueError(f"unknown remote_mode {remote_mode!r}")
        self.remote = (
            WriteCoalescer(remote_client, on_unavailable=on_unavailable)
            if remote_client is not None
            else None
        )
        self.remote_mode = remote_mode
        self.locks = LockManager()
        self._delta_seq = {}  # vrf -> next delta sequence number
        self._delta_live = {}  # vrf -> count of live (uncompacted) deltas
        self._delta_floor = {}  # vrf -> first live delta seq
        self.compactions = 0

    # ------------------------------------------------------------------
    # message replication (fast channel, per-connection ordering)
    # ------------------------------------------------------------------

    def replicate_message(self, keys, direction, position, record, on_committed):
        """Write one message record; ``on_committed`` fires when durable.

        The per-connection lock serializes enqueueing from the main and
        keepalive threads, preserving intra-connection write order while
        leaving different connections concurrent.
        """
        lock_key = keys.conn_id
        record_key = keys.message(direction, position)

        def enqueue():
            if self.remote is None:
                self.fast.set(
                    record_key, record,
                    on_done=lambda: self._committed(lock_key, on_committed),
                )
                return
            if self.remote_mode == "async":
                self.remote.set(record_key, record)
                self.fast.set(
                    record_key, record,
                    on_done=lambda: self._committed(lock_key, on_committed),
                )
                return
            # sync: both stores must commit before the ACK may be released
            pending = {"count": 2}

            def one_done():
                pending["count"] -= 1
                if pending["count"] == 0:
                    self._committed(lock_key, on_committed)

            self.fast.set(record_key, record, on_done=one_done)
            self.remote.set(record_key, record, on_done=one_done)

        self.locks.acquire(lock_key, owner=(direction, position), granted=enqueue)

    def _committed(self, lock_key, on_committed):
        holder = self.locks.holder(lock_key)
        self.locks.release(lock_key, holder)
        on_committed()

    def write_session_record(self, keys, record, on_done=None):
        self.fast.set(keys.session, record, on_done=on_done)

    def verify_read(self, key, on_value, on_error=None):
        """tcp_queue's confirmation read before releasing an ACK."""
        self.fast_client.get(key, on_done=on_value, on_error=on_error)

    # ------------------------------------------------------------------
    # application-side pruning and RIB deltas (bulk channel)
    # ------------------------------------------------------------------

    def record_rib_delta(self, vrf, delta, on_done=None):
        """Persist the effect of one applied UPDATE message.

        ``delta`` is ``{"announce": [(prefix_str, attrs_wire, peer_id)],
        "withdraw": [(prefix_str, peer_id)], "in_pos": int}``.
        """
        seq = self._delta_seq.get(vrf, 0)
        self._delta_seq[vrf] = seq + 1
        self._delta_live[vrf] = self._delta_live.get(vrf, 0) + 1
        self._delta_floor.setdefault(vrf, 0)
        self.bulk.set(rib_delta_key(self.pair_name, vrf, seq), delta, on_done=on_done)
        return seq

    def delete_message(self, keys, direction, position, on_done=None):
        """Prune an applied (or remote-acknowledged) message record."""
        self.bulk.delete(keys.message(direction, position), on_done=on_done)

    def update_tcp_status(self, keys, status, on_done=None):
        self.bulk.set(keys.tcp_status, status, on_done=on_done)

    # ------------------------------------------------------------------
    # compaction (bounds storage and recovery work)
    # ------------------------------------------------------------------

    def needs_compaction(self, vrf, threshold=COMPACTION_THRESHOLD):
        return self._delta_live.get(vrf, 0) >= threshold

    def compact(self, vrf, loc_rib, on_done=None):
        """Replace accumulated deltas with chunked snapshot records."""
        self.compactions += 1
        entries = loc_rib.export_entries()
        chunks = [
            entries[i : i + SNAPSHOT_CHUNK_ROUTES]
            for i in range(0, len(entries), SNAPSHOT_CHUNK_ROUTES)
        ] or [[]]
        for index, chunk in enumerate(chunks):
            self.bulk.set(rib_snapshot_key(self.pair_name, vrf, index), chunk)
        # Snapshot marker: how many chunks are current; readers ignore stale
        # higher-numbered chunks from earlier, larger snapshots.
        marker = {"chunks": len(chunks), "delta_floor": self._delta_seq.get(vrf, 0)}
        floor = self._delta_floor.get(vrf, 0)
        ceiling = self._delta_seq.get(vrf, 0)
        self.bulk.set(
            f"tensor:{self.pair_name}:rib:{vrf}:marker",
            marker,
            on_done=lambda: self._purge_deltas(vrf, floor, ceiling, on_done),
        )

    def _purge_deltas(self, vrf, floor, ceiling, on_done):
        for seq in range(floor, ceiling):
            self.bulk.delete(rib_delta_key(self.pair_name, vrf, seq))
        self._delta_live[vrf] = 0
        self._delta_floor[vrf] = ceiling
        if on_done is not None:
            on_done()

    def backlog(self):
        return self.fast.backlog + self.bulk.backlog
