"""Replication pipeline: key schema, write coalescing, pruning, deltas.

Key schema (§4.1: "the key consists of a 16B VRF prefix, a 36B four-tuple
identification ... and a 38B identification for the peering AS and the
client", values are whole BGP messages capped at 4 KB):

    tensor:{pair}:sess:{conn}          session metadata (initial SEQ/ACK,
                                       addresses, peer AS) — written once
    tensor:{pair}:tcp:{conn}           watermarks: applied-in position,
                                       pruned-out position (the "TCP status")
    tensor:{pair}:msg:{conn}:i:{pos}   one incoming message; pos = stream
                                       offset after the message
    tensor:{pair}:msg:{conn}:o:{pos}   one outgoing message
    tensor:{pair}:rib:{vrf}:d:{seq}    one routing-table delta (the effect
                                       of one applied UPDATE)
    tensor:{pair}:rib:{vrf}:s:{chunk}  compacted snapshot chunks

Two channels with separate clients keep latency-critical message
replication (which gates ACK release) from queueing behind bulk
routing-table writes:

- **fast**: incoming/outgoing message records, session metadata, the
  verify reads issued by ``tcp_queue``;
- **bulk**: RIB deltas, message deletion after application ("we remove
  the replicated messages that have been applied to routing tables"),
  watermark updates, periodic compaction.
"""

import zlib

from repro.bgp.aggregation import aggregate_root, collapse_prefix_entries
from repro.kvstore.client import CAUSE_FENCED
from repro.kvstore.locks import LockManager

#: Compact RIB deltas into snapshot chunks past this many deltas per VRF.
COMPACTION_THRESHOLD = 1024
#: Routes per snapshot chunk record (keeps values at realistic KV sizes).
SNAPSHOT_CHUNK_ROUTES = 500
#: Replication write retries before declaring the database unavailable.
WRITE_RETRIES = 3
#: First retry delay; doubles per attempt (0.2, 0.4, 0.8 for 3 retries).
RETRY_BACKOFF_BASE = 0.2


class ConnectionKeys:
    """Key builder for one BGP connection."""

    def __init__(self, pair_name, vrf, local_addr, local_port, remote_addr, remote_port):
        self.pair_name = pair_name
        self.vrf = vrf
        self.conn_id = f"{vrf}|{local_addr}:{local_port}|{remote_addr}:{remote_port}"
        self._base = f"tensor:{pair_name}"

    @property
    def session(self):
        return f"{self._base}:sess:{self.conn_id}"

    @property
    def tcp_status(self):
        return f"{self._base}:tcp:{self.conn_id}"

    def message(self, direction, position):
        return f"{self._base}:msg:{self.conn_id}:{direction}:{position:016d}"

    def message_prefix(self, direction):
        return f"{self._base}:msg:{self.conn_id}:{direction}:"

    def __repr__(self):
        return f"<ConnectionKeys {self.conn_id}>"


def rib_delta_key(pair_name, vrf, seq):
    return f"tensor:{pair_name}:rib:{vrf}:d:{seq:016d}"

def rib_snapshot_key(pair_name, vrf, chunk):
    return f"tensor:{pair_name}:rib:{vrf}:s:{chunk:08d}"

def rib_prefix(pair_name, vrf):
    return f"tensor:{pair_name}:rib:{vrf}:"

def pair_prefix(pair_name):
    return f"tensor:{pair_name}:"


def _bucket_of(prefix, buckets):
    """Stable chunk assignment for a prefix.

    Must be deterministic across processes and runs (recovery re-reads
    chunks written by an earlier incarnation), so Python's randomized
    ``hash()`` is out; CRC-32 of the textual prefix is stable and cheap.
    """
    return zlib.crc32(str(prefix).encode()) % buckets


class WriteCoalescer:
    """Batches sets/deletes to one KV client, one batch in flight.

    Operations are applied in exact enqueue order: each flush takes the
    longest prefix of same-kind operations (a run of sets becomes one
    ``mset``, a run of deletes one ``delete``), so a set enqueued after a
    delete of the same key can never be eaten by that delete — the
    property test in tests/test_properties_extra.py pinned this down.
    Failed batches are retried; persistent unavailability surfaces
    through ``on_unavailable``, on which the caller keeps ACKs held (the
    fail-safe direction).

    Batch sizing is adaptive: ``batch_limit`` starts at ``max_batch``,
    doubles (up to ``max_batch_cap``) while the backlog outruns it, and
    decays back toward ``max_batch`` once the queue drains — amortizing
    per-operation base cost under load without letting an idle channel
    hold huge batches.

    Failure handling distinguishes causes (DESIGN.md §12):

    - timeouts/refusals back off exponentially between retries; when the
      client's ``endpoint_generation`` changed since the batch was
      issued (a failover repoint landed), the batch restarts against
      the new endpoint with a *fresh* retry budget;
    - a **fenced** write re-queues the batch at the head and waits for
      the controller's repoint (retrying against the demoted primary
      cannot succeed);
    - exhausted **set** batches drop and surface ``on_unavailable``
      (the caller keeps ACKs held — fail-safe); exhausted **delete**
      batches re-queue instead of dropping, because a silently lost
      prune leaks snapshot-store records forever.
    """

    def __init__(self, client, max_batch=512, on_unavailable=None,
                 max_batch_cap=None, name=""):
        self.client = client
        self.name = name  # channel label ("fast"/"bulk"/"remote") for traces
        self.engine = getattr(client, "engine", None)
        self.max_batch = max_batch
        self.max_batch_cap = max_batch_cap if max_batch_cap is not None else max_batch * 8
        self.batch_limit = max_batch
        self.on_unavailable = on_unavailable
        # ("set", key, value, cb) | ("delete", key, None, cb)
        # | ("mdelete", keys_tuple, None, cb)
        self._pending = []
        self._in_flight = False
        self.batches_flushed = 0
        self.records_written = 0
        self.records_deleted = 0
        self.failures = 0
        self.fenced = 0
        self.requeued_deletes = 0
        # On a failover repoint, resume flushing anything parked by a
        # fenced write or an exhausted delete batch.
        if hasattr(client, "on_repoint"):
            client.on_repoint = self.kick

    def kick(self):
        """Resume flushing (failover repoint landed, endpoint is live)."""
        self._maybe_flush()

    def _generation(self):
        return getattr(self.client, "endpoint_generation", 0)

    def set(self, key, value, on_done=None):
        self._pending.append(("set", key, value, on_done))
        self._maybe_flush()

    def delete(self, key, on_done=None):
        self._pending.append(("delete", key, None, on_done))
        self._maybe_flush()

    def delete_many(self, keys, on_done=None):
        """Enqueue one pre-batched delete of ``keys`` (a ranged purge).

        The whole group travels as a single queue entry — enqueueing N
        keys costs one append instead of N — and flushes inside a normal
        delete run, so ordering against neighbouring sets still holds.
        ``on_done`` fires once for the group.
        """
        keys = tuple(keys)
        if not keys:
            if on_done is not None:
                on_done()
            return
        self._pending.append(("mdelete", keys, None, on_done))
        self._maybe_flush()

    @property
    def backlog(self):
        total = 0
        for op in self._pending:
            total += len(op[1]) if op[0] == "mdelete" else 1
        return total

    def _maybe_flush(self):
        if not self._in_flight and self._pending:
            self._in_flight = True
            self._flush_run()

    def _adapt_batch_limit(self):
        backlog = len(self._pending)
        if backlog > self.batch_limit:
            self.batch_limit = min(self.batch_limit * 2, self.max_batch_cap)
        elif backlog <= self.max_batch and self.batch_limit > self.max_batch:
            self.batch_limit = max(self.max_batch, self.batch_limit // 2)

    def _take_run(self):
        """Pop the longest same-kind prefix of the queue (<= batch_limit
        records; single-key deletes and ranged mdeletes share runs)."""
        self._adapt_batch_limit()
        head_kind = self._pending[0][0]
        kind = "delete" if head_kind in ("delete", "mdelete") else head_kind
        count = 0
        records = 0
        for op in self._pending:
            op_kind = "delete" if op[0] in ("delete", "mdelete") else op[0]
            if op_kind != kind or records >= self.batch_limit:
                break
            count += 1
            records += len(op[1]) if op[0] == "mdelete" else 1
        run, self._pending = self._pending[:count], self._pending[count:]
        return kind, run

    def _flush_run(self):
        if not self._pending:
            self._in_flight = False
            return
        kind, run = self._take_run()
        if kind == "set":
            self._issue_sets(run, retries=WRITE_RETRIES)
        else:
            self._issue_deletes(run, retries=WRITE_RETRIES)

    def _batch_span(self, kind, records):
        tracer = (
            getattr(self.engine, "_trace_hook", None)
            if self.engine is not None else None
        )
        if tracer is None:
            return None
        return tracer.begin(
            "repl.batch", parent=None,
            channel=self.name, kind=kind, records=records,
        )

    def _retry(self, issue, run, retries, cause, generation):
        """Shared failure policy for both batch kinds.

        Returns True when a retry (or requeue) was arranged; False means
        the budget is spent and the caller must give up.
        """
        self.failures += 1
        if cause == CAUSE_FENCED:
            # This endpoint was demoted; only a repoint can help.  Park
            # the batch at the head of the queue and wait for the
            # controller's push (client.on_repoint -> kick).
            self.fenced += 1
            self._pending[:0] = run
            self._in_flight = False
            return True
        if self._generation() != generation:
            # A repoint landed mid-attempt: the old endpoint's failures
            # say nothing about the new one — fresh budget.
            issue(run, WRITE_RETRIES)
            return True
        if retries <= 0:
            return False
        attempt = WRITE_RETRIES - retries
        delay = RETRY_BACKOFF_BASE * (2 ** attempt)
        if self.engine is not None:
            self.engine.schedule(delay, issue, run, retries - 1)
        else:
            issue(run, retries - 1)
        return True

    def _issue_sets(self, run, retries):
        items = [(key, value) for _kind, key, value, _cb in run]
        span = self._batch_span("set", len(run))
        generation = self._generation()

        def on_done():
            if span is not None:
                span.finish(outcome="ok")
            self.batches_flushed += 1
            self.records_written += len(run)
            for _kind, _key, _value, callback in run:
                if callback is not None:
                    callback()
            self._flush_run()

        def on_error(_method, cause=None):
            if span is not None:
                span.finish(outcome="error")
            if not self._retry(self._issue_sets, run, retries, cause, generation):
                self._give_up_sets(run)

        self.client.mset(items, on_done=on_done, on_error=on_error)

    def _issue_deletes(self, run, retries):
        keys = []
        for kind, key, _value, _cb in run:
            if kind == "mdelete":
                keys.extend(key)
            else:
                keys.append(key)
        span = self._batch_span("delete", len(keys))
        generation = self._generation()

        def on_done(_removed):
            if span is not None:
                span.finish(outcome="ok")
            self.batches_flushed += 1
            self.records_deleted += len(keys)
            for _kind, _key, _value, callback in run:
                if callback is not None:
                    callback()
            self._flush_run()

        def on_error(_method, cause=None):
            if span is not None:
                span.finish(outcome="error")
            if not self._retry(self._issue_deletes, run, retries, cause, generation):
                self._give_up_deletes(run)

        self.client.delete(keys, on_done=on_done, on_error=on_error)

    @staticmethod
    def _record_count(run):
        return sum(len(op[1]) if op[0] == "mdelete" else 1 for op in run)

    def _give_up_sets(self, run):
        """Database unavailable: stop retrying, keep the system fail-safe.

        The batch's records are abandoned (their per-op callbacks never
        fire — upstream the matching ACKs stay held) and the in-flight
        flag resets so a later enqueue can resume flushing if the
        database returns.
        """
        self._in_flight = False
        if self.on_unavailable is not None:
            self.on_unavailable(self._record_count(run))

    def _give_up_deletes(self, run):
        """Exhausted prune batch: re-queue rather than leak.

        Unlike a dropped set (whose held ACK keeps the system safe), a
        dropped delete has no upstream guardian — the pruned records
        would simply live in the snapshot store forever.  Nothing was
        lost, so ``on_unavailable`` is not raised; the batch goes back
        to the head of the queue and flushes when the database returns
        (next enqueue or failover kick).
        """
        self.requeued_deletes += self._record_count(run)
        self._pending[:0] = run
        self._in_flight = False


class ReplicationPipeline:
    """The TENSOR process's view of the database.

    Owns the fast and bulk coalescers, the per-connection message locks
    (§3.1.2: main and keepalive threads both write; ordering is required
    only *within* a connection), RIB delta sequencing and compaction.
    """

    def __init__(self, pair_name, fast_client, bulk_client, on_unavailable=None,
                 remote_client=None, remote_mode="sync",
                 aggregate_snapshots=False):
        self.pair_name = pair_name
        # DRAGON-style snapshot aggregation (DESIGN.md §14): chunk
        # entries collapse complete uniform subtrees into aggregate
        # records, and prefixes bucket by aggregate root so siblings
        # co-locate.  Lossless — recovery expands to the same table.
        self.aggregate_snapshots = aggregate_snapshots
        self.fast = WriteCoalescer(fast_client, on_unavailable=on_unavailable,
                                   name="fast")
        self.bulk = WriteCoalescer(bulk_client, on_unavailable=on_unavailable,
                                   name="bulk")
        self.fast_client = fast_client
        self.bulk_client = bulk_client
        # §5 "Remote replication for disaster recovery": an optional second
        # store in another facility.  "sync" gates ACK release on the
        # remote commit too (safe, slow — Fig. 5(a) shows why); "async"
        # fires and forgets (fast, loses the most recent messages in a
        # true disaster).
        if remote_mode not in ("sync", "async"):
            raise ValueError(f"unknown remote_mode {remote_mode!r}")
        self.remote = (
            WriteCoalescer(remote_client, on_unavailable=on_unavailable,
                           name="remote")
            if remote_client is not None
            else None
        )
        self.remote_mode = remote_mode
        self.locks = LockManager()
        self._delta_seq = {}  # vrf -> next delta sequence number
        self._delta_live = {}  # vrf -> count of live (uncompacted) deltas
        self._delta_floor = {}  # vrf -> first live delta seq
        # Incremental-snapshot bookkeeping, per vrf: stable hash-bucket
        # assignment of prefixes to snapshot chunks plus the Loc-RIB
        # change-counter watermark consumed by the last compaction.
        self._snapshot_state = {}  # vrf -> {"buckets", "export_seq", "members", "total"}
        self.compactions = 0
        self.incremental_compactions = 0
        self.snapshot_chunks_written = 0
        # Aggregation effectiveness: entry counts before/after collapse
        # across all chunk writes (equal when aggregation is off).
        self.snapshot_entries_raw = 0
        self.snapshot_entries_written = 0

    # ------------------------------------------------------------------
    # message replication (fast channel, per-connection ordering)
    # ------------------------------------------------------------------

    def replicate_message(self, keys, direction, position, record, on_committed):
        """Write one message record; ``on_committed`` fires when durable.

        The per-connection lock serializes enqueueing from the main and
        keepalive threads, preserving intra-connection write order while
        leaving different connections concurrent.
        """
        lock_key = keys.conn_id
        record_key = keys.message(direction, position)

        def enqueue():
            if self.remote is None:
                self.fast.set(
                    record_key, record,
                    on_done=lambda: self._committed(lock_key, on_committed),
                )
                return
            if self.remote_mode == "async":
                self.remote.set(record_key, record)
                self.fast.set(
                    record_key, record,
                    on_done=lambda: self._committed(lock_key, on_committed),
                )
                return
            # sync: both stores must commit before the ACK may be released
            pending = {"count": 2}

            def one_done():
                pending["count"] -= 1
                if pending["count"] == 0:
                    self._committed(lock_key, on_committed)

            self.fast.set(record_key, record, on_done=one_done)
            self.remote.set(record_key, record, on_done=one_done)

        self.locks.acquire(lock_key, owner=(direction, position), granted=enqueue)

    def _committed(self, lock_key, on_committed):
        holder = self.locks.holder(lock_key)
        self.locks.release(lock_key, holder)
        on_committed()

    def write_session_record(self, keys, record, on_done=None):
        self.fast.set(keys.session, record, on_done=on_done)

    def verify_read(self, key, on_value, on_error=None):
        """tcp_queue's confirmation read before releasing an ACK."""
        self.fast_client.get(key, on_done=on_value, on_error=on_error)

    # ------------------------------------------------------------------
    # application-side pruning and RIB deltas (bulk channel)
    # ------------------------------------------------------------------

    def record_rib_delta(self, vrf, delta, on_done=None):
        """Persist the effect of one applied UPDATE message.

        ``delta`` is ``{"announce": [(prefix_str, attrs_wire, peer_id)],
        "withdraw": [(prefix_str, peer_id)], "in_pos": int}``.
        """
        seq = self._delta_seq.get(vrf, 0)
        self._delta_seq[vrf] = seq + 1
        self._delta_live[vrf] = self._delta_live.get(vrf, 0) + 1
        self._delta_floor.setdefault(vrf, 0)
        self.bulk.set(rib_delta_key(self.pair_name, vrf, seq), delta, on_done=on_done)
        return seq

    def delete_message(self, keys, direction, position, on_done=None):
        """Prune an applied (or remote-acknowledged) message record."""
        self.bulk.delete(keys.message(direction, position), on_done=on_done)

    def update_tcp_status(self, keys, status, on_done=None):
        self.bulk.set(keys.tcp_status, status, on_done=on_done)

    # ------------------------------------------------------------------
    # compaction (bounds storage and recovery work)
    # ------------------------------------------------------------------

    def resume_delta_log(self, vrf, next_seq, floor, live):
        """Continue a recovered VRF's delta log instead of restarting it.

        A freshly built pipeline sequences deltas from 0; after recovery
        that would overwrite the durable log's oldest records in place,
        silently corrupting what the *next* recovery rebuilds from.
        """
        self._delta_seq[vrf] = next_seq
        self._delta_floor[vrf] = floor
        self._delta_live[vrf] = live

    def needs_compaction(self, vrf, threshold=COMPACTION_THRESHOLD):
        return self._delta_live.get(vrf, 0) >= threshold

    def _chunk_bucket(self, prefix, buckets):
        """Chunk assignment: by full prefix normally, by aggregate root
        under snapshot aggregation (collapse needs siblings together)."""
        if self.aggregate_snapshots:
            return _bucket_of(aggregate_root(prefix), buckets)
        return _bucket_of(prefix, buckets)

    def compact(self, vrf, loc_rib, on_done=None):
        """Replace accumulated deltas with chunked snapshot records.

        Prefixes are assigned to snapshot chunks by a stable hash, so a
        compaction only rewrites the chunks holding prefixes that changed
        since the previous one (plus the marker); the first compaction —
        or one following enough growth/shrinkage to force re-bucketing —
        writes the full table.
        """
        self.compactions += 1
        state = self._snapshot_state.get(vrf)
        if state is None:
            state = self._snapshot_state[vrf] = {
                "buckets": 0,      # chunk count of the current snapshot
                "export_seq": 0,   # Loc-RIB change watermark consumed
                "members": {},     # chunk index -> set of prefix objects
                "sizes": {},       # prefix -> live entry count
                "total": 0,        # entries across all chunks
            }
        export_seq, dirty = loc_rib.export_entries_since(state["export_seq"])
        state["export_seq"] = export_seq
        members = state["members"]
        sizes = state["sizes"]
        # Fold the dirty prefixes into the size and bucket-membership
        # maps first so the total reflects the post-change table when
        # sizing buckets.
        dirty_buckets = set()
        for prefix, entries in dirty.items():
            state["total"] += len(entries) - sizes.pop(prefix, 0)
            if entries:
                sizes[prefix] = len(entries)
            if state["buckets"]:
                bucket = self._chunk_bucket(prefix, state["buckets"])
                dirty_buckets.add(bucket)
                bucket_members = members.setdefault(bucket, set())
                if entries:
                    bucket_members.add(prefix)
                else:
                    bucket_members.discard(prefix)
        total = state["total"]
        grown = total > state["buckets"] * 2 * SNAPSHOT_CHUNK_ROUTES
        shrunk = state["buckets"] > 1 and total < (state["buckets"] // 2) * SNAPSHOT_CHUNK_ROUTES
        if state["buckets"] == 0 or grown or shrunk:
            previous_buckets = state["buckets"]
            buckets = max(1, -(-total // SNAPSHOT_CHUNK_ROUTES))
            members = {}
            for prefix in sizes:
                members.setdefault(self._chunk_bucket(prefix, buckets), set()).add(prefix)
            state["buckets"] = buckets
            state["members"] = members
            dirty_buckets = set(range(buckets))
            # Chunks past the new count are stale; readers ignore them,
            # but delete the ones a larger previous snapshot left behind.
            if previous_buckets > buckets:
                self.bulk.delete_many(
                    rib_snapshot_key(self.pair_name, vrf, index)
                    for index in range(buckets, previous_buckets)
                )
        else:
            self.incremental_compactions += 1
        for index in sorted(dirty_buckets):
            bucket_prefixes = sorted(members.get(index, ()), key=str)
            if self.aggregate_snapshots:
                raw = sum(sizes.get(prefix, 0) for prefix in bucket_prefixes)
                entries = collapse_prefix_entries(loc_rib, bucket_prefixes)
                self.snapshot_entries_raw += raw
                self.snapshot_entries_written += len(entries)
            else:
                entries = []
                for prefix in bucket_prefixes:
                    entries.extend(loc_rib.export_prefix_entries(prefix))
            self.bulk.set(rib_snapshot_key(self.pair_name, vrf, index), entries)
            self.snapshot_chunks_written += 1
        # Snapshot marker: how many chunks are current (readers ignore
        # stale higher-numbered chunks from earlier, larger snapshots)
        # and the delta floor — the sequence number of the first delta
        # NOT folded into this snapshot, i.e. the first live delta a
        # recovery reader must replay on top of it.  Every delta below
        # the floor is purged once the marker commits.
        floor = self._delta_floor.get(vrf, 0)
        new_floor = self._delta_seq.get(vrf, 0)
        marker = {"chunks": state["buckets"], "delta_floor": new_floor}
        self.bulk.set(
            f"tensor:{self.pair_name}:rib:{vrf}:marker",
            marker,
            on_done=lambda: self._purge_deltas(vrf, floor, new_floor, on_done),
        )

    def _purge_deltas(self, vrf, floor, ceiling, on_done):
        """Drop superseded deltas as ranged key batches, not one op each."""
        for start in range(floor, ceiling, self.bulk.max_batch):
            end = min(start + self.bulk.max_batch, ceiling)
            self.bulk.delete_many(
                rib_delta_key(self.pair_name, vrf, seq) for seq in range(start, end)
            )
        # Deltas recorded while the marker write was in flight stay live.
        self._delta_live[vrf] = self._delta_seq.get(vrf, 0) - ceiling
        self._delta_floor[vrf] = ceiling
        if on_done is not None:
            on_done()

    def backlog(self):
        return self.fast.backlog + self.bulk.backlog
