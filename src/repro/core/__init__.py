"""TENSOR core: kernel-free replicated BGP NSR (§3).

The pieces map one-to-one onto the paper's design:

- :mod:`~repro.core.replication` — the key schema, the write pipeline to
  the KV store, message pruning and routing-table deltas (§3.1.2
  "Outgoing BGP messages", "Storage overhead", "BGP routing tables").
- :mod:`~repro.core.ack_matching` — the ``tcp_queue`` thread: NFQUEUE
  consumer that holds outgoing TCP ACKs until the matching message is
  durably replicated (§3.1.2 "Intercepting packets", "Matching ACK
  numbers").
- :mod:`~repro.core.tensor_process` — the TENSOR BGP process: a
  :class:`~repro.bgp.speaker.BgpSpeaker` with replication interposed on
  its receive, send and keepalive paths.
- :mod:`~repro.core.recovery` — backup-side reconstruction: TCP repair
  from the database plus routing-table restoration (no message replay).
- :mod:`~repro.core.agent` — the agent server: BFD relays + IP SLA
  probes (§3.3.2).
- :mod:`~repro.core.splitting` — BGP splitting and joint containers
  (§3.2.4).
- :mod:`~repro.core.system` — full-system assembly: machines, pairs,
  controller, database, underlay.
"""

from repro.core.replication import ConnectionKeys, ReplicationPipeline, WriteCoalescer
from repro.core.ack_matching import TcpQueueThread
from repro.core.tensor_process import TensorBgpSpeaker
from repro.core.recovery import BackupRecovery, RecoveredState
from repro.core.agent import AgentServer
from repro.core.splitting import JointContainerSpec, SplitPlan, plan_split
from repro.core.system import TensorPair, TensorSystem

__all__ = [
    "ConnectionKeys",
    "ReplicationPipeline",
    "WriteCoalescer",
    "TcpQueueThread",
    "TensorBgpSpeaker",
    "BackupRecovery",
    "RecoveredState",
    "AgentServer",
    "SplitPlan",
    "JointContainerSpec",
    "plan_split",
    "TensorPair",
    "TensorSystem",
]
