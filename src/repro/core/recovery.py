"""Backup-side recovery: rebuild BGP + TCP state from the database.

§3.1.2: the backup router restores the BGP routing tables from the
database snapshot ("the backup BGP router does not need to replay all
previous BGP messages"), recovers the TCP sender buffer from the
replicated outgoing messages, and adopts the connection at the byte
positions implied by the replicated records.  TCP retransmission repairs
both directions: the remote retransmits anything past our recovered
receive position, and we retransmit every outgoing byte the remote has
not provably acknowledged.

Known divergence corner (found by the chaos engine, DESIGN.md §9): an
UPDATE that was generated but crashed *before* its database commit was
never transmitted (delayed sending), so the remote never saw it — and a
change applied just before the crash may never have had its UPDATE
generated at all.  Neither is in any replay path.  Recovery therefore
finishes with an outbound resync
(:meth:`~repro.bgp.speaker.BgpSpeaker.resync_session`): re-send the
withdrawals recorded in the live delta log, re-advertise the table.
"""

from repro.bgp.aggregation import expand_snapshot_entries
from repro.bgp.attributes import PathAttributes
from repro.bgp.prefixes import Prefix
from repro.bgp.rib import LocRib, Route
from repro.sim.calibration import TCP_MSS
from repro.tcpsim.repair import TcpRepairState


class RecoveredState:
    """Everything read back from the database for one pair."""

    def __init__(self, pair_name):
        self.pair_name = pair_name
        self.sessions = {}  # conn_id -> session meta dict
        self.tcp_status = {}  # conn_id -> watermark dict
        self.in_messages = {}  # conn_id -> sorted [(pos, record)]
        self.out_messages = {}  # conn_id -> sorted [(pos, record)]
        self.partials = {}  # conn_id -> {"bytes": ..., "upto": int}
        self.rib_deltas = {}  # vrf -> sorted [(seq, delta)]
        self.rib_snapshots = {}  # vrf -> {chunk_index: entries}
        self.rib_markers = {}  # vrf -> marker dict
        self.records_read = 0

    # ------------------------------------------------------------------

    def vrf_names(self):
        names = set(self.rib_deltas) | set(self.rib_snapshots)
        for meta in self.sessions.values():
            names.add(meta["vrf"])
        return sorted(names)

    def rebuild_loc_rib(self, vrf, local_as=0, router_id=0):
        """Snapshot chunks + ordered deltas -> a fresh Loc-RIB."""
        rib = LocRib(local_as=local_as, router_id=router_id)
        marker = self.rib_markers.get(vrf, {"chunks": 0, "delta_floor": 0})
        chunks = self.rib_snapshots.get(vrf, {})
        for index in range(marker["chunks"]):
            # Snapshot-aggregated chunks (DESIGN.md §14) carry collapsed
            # subtree records; expansion is the identity for plain ones.
            for entry in expand_snapshot_entries(chunks.get(index, [])):
                rib.offer(
                    Route(
                        Prefix.parse(entry["prefix"]),
                        PathAttributes.from_wire(entry["attributes"]),
                        entry["peer_id"],
                        entry["source_kind"],
                    )
                )
        floor = marker.get("delta_floor", 0)
        for seq, delta in self.rib_deltas.get(vrf, []):
            if seq < floor:
                continue  # superseded by the snapshot
            for prefix_str, attrs_wire, peer_id, source_kind in delta["announce"]:
                rib.offer(
                    Route(
                        Prefix.parse(prefix_str),
                        PathAttributes.from_wire(attrs_wire),
                        peer_id,
                        source_kind,
                    )
                )
            for prefix_str, peer_id in delta["withdraw"]:
                rib.retract(Prefix.parse(prefix_str), peer_id)
        return rib

    def recent_withdrawn_prefixes(self, vrf):
        """Prefix strings withdrawn by any live (uncompacted) delta.

        The outbound resync re-sends withdrawals for these: a withdraw
        applied just before the crash is durable as a delta, but the
        UPDATE advertising it to the *other* peers may never have been
        generated.  Bounded by the compaction threshold.
        """
        marker = self.rib_markers.get(vrf, {"chunks": 0, "delta_floor": 0})
        floor = marker.get("delta_floor", 0)
        withdrawn = set()
        for seq, delta in self.rib_deltas.get(vrf, []):
            if seq < floor:
                continue
            for prefix_str, _peer_id in delta["withdraw"]:
                withdrawn.add(prefix_str)
        return withdrawn

    def delta_log_state(self, vrf):
        """``(next_seq, floor, live_count)`` for resuming the delta log.

        The recovered process must append past the highest stored delta —
        restarting from 0 would overwrite records still needed by a later
        recovery (see ReplicationPipeline.resume_delta_log).
        """
        marker = self.rib_markers.get(vrf, {"chunks": 0, "delta_floor": 0})
        floor = marker.get("delta_floor", 0)
        deltas = self.rib_deltas.get(vrf, [])
        next_seq = (deltas[-1][0] + 1) if deltas else floor
        live = sum(1 for seq, _delta in deltas if seq >= floor)
        return next_seq, floor, live

    def recovered_in_position(self, conn_id):
        """Receive-stream position: every replicated whole message counts."""
        watermark = self.tcp_status.get(conn_id, {}).get("in_pos", 0)
        stored = self.in_messages.get(conn_id, ())
        stored_max = stored[-1][0] if stored else 0
        return max(watermark, stored_max)

    def recovered_partial(self, conn_id):
        """The replicated partial-message tail past the complete boundary.

        Returns ``(bytes, upto)`` or ``(b"", complete_pos)`` when the
        stored partial is stale (a later message consumed those bytes).
        """
        complete = self.recovered_in_position(conn_id)
        partial = self.partials.get(conn_id)
        if partial is None or partial["upto"] <= complete:
            return b"", complete
        return partial["bytes"], partial["upto"]

    def recovered_out_state(self, conn_id):
        """(out_pos, unpruned_positions, base) for the send side.

        ``base`` is the stream offset of the first byte of the earliest
        surviving outgoing record — the recovered ``snd_una``.  Pruning
        always keeps the newest record, so the surviving records are a
        contiguous stream suffix and ``out_pos`` (the last record's end)
        is the authoritative next-byte position.
        """
        stored = self.out_messages.get(conn_id, ())
        watermark = self.tcp_status.get(conn_id, {}).get("out_pruned", 0)
        if not stored:
            return watermark, [], watermark
        first_pos, first_record = stored[0]
        base = first_pos - len(first_record["wire"])
        out_pos = stored[-1][0]
        unpruned = [pos for pos, _record in stored]
        return out_pos, unpruned, base

    def unapplied_messages(self, conn_id):
        """Stored incoming messages the primary never applied, in order."""
        watermark = self.tcp_status.get(conn_id, {}).get("in_pos", 0)
        return [rec for pos, rec in self.in_messages.get(conn_id, ()) if pos > watermark]

    def tcp_repair_state(self, conn_id):
        """Build the repair snapshot for one connection."""
        meta = self.sessions[conn_id]
        _out_pos, _unpruned, base = self.recovered_out_state(conn_id)
        send_queue = bytearray()
        for _pos, record in self.out_messages.get(conn_id, ()):
            send_queue.extend(record["wire"])
        _partial_bytes, stream_pos = self.recovered_partial(conn_id)
        return TcpRepairState(
            local_addr=meta["local_addr"],
            local_port=meta["local_port"],
            remote_addr=meta["remote_addr"],
            remote_port=meta["remote_port"],
            iss=meta["iss"],
            irs=meta["irs"],
            snd_una=meta["iss"] + 1 + base,
            rcv_nxt=meta["irs"] + 1 + stream_pos,
            snd_wnd=10 * TCP_MSS,
            mss=TCP_MSS,
            send_queue=bytes(send_queue),
        )


class BackupRecovery:
    """Reads a pair's keyspace and produces a :class:`RecoveredState`."""

    def __init__(self, engine, kv_client, pair_name):
        self.engine = engine
        self.kv = kv_client
        self.pair_name = pair_name

    #: Delay before re-issuing a failed recovery scan.  Recovery cannot
    #: proceed without the replicated state, so it must outlast transient
    #: database unavailability (otherwise a sub-second blip overlapping a
    #: migration wedges the backup forever and the remote's hold timer
    #: eventually kills the session).
    SCAN_RETRY_DELAY = 0.5

    def load(self, on_done, estimated_records=256):
        """Scan the pair's keyspace; ``on_done(RecoveredState)``.

        Retries indefinitely on timeout: the backup has nothing else it
        can do, and giving up silently would strand the adopted peers.
        """
        prefix = f"tensor:{self.pair_name}:"
        self.kv.scan(
            prefix,
            on_done=lambda pairs: on_done(self._parse(pairs)),
            on_error=lambda _method, _cause: self.engine.schedule(
                self.SCAN_RETRY_DELAY, self.load, on_done, estimated_records
            ),
            estimated=estimated_records,
        )

    def _parse(self, pairs):
        state = RecoveredState(self.pair_name)
        state.records_read = len(pairs)
        base_len = len(f"tensor:{self.pair_name}:")
        for key, value in pairs:
            suffix = key[base_len:]
            kind, _sep, rest = suffix.partition(":")
            if kind == "sess":
                state.sessions[rest] = value
            elif kind == "tcp":
                state.tcp_status[rest] = value
            elif kind == "msg":
                conn_id, direction, pos_text = rest.rsplit(":", 2)
                position = int(pos_text)
                bucket = state.in_messages if direction == "i" else state.out_messages
                bucket.setdefault(conn_id, []).append((position, value))
            elif kind == "part":
                state.partials[rest] = value
            elif kind == "rib":
                if rest.endswith(":marker"):
                    state.rib_markers[rest[: -len(":marker")]] = value
                else:
                    vrf, entry_kind, index_text = rest.rsplit(":", 2)
                    if entry_kind == "d":
                        state.rib_deltas.setdefault(vrf, []).append(
                            (int(index_text), value)
                        )
                    elif entry_kind == "s":
                        state.rib_snapshots.setdefault(vrf, {})[int(index_text)] = value
        for bucket in (state.in_messages, state.out_messages):
            for conn_id in bucket:
                bucket[conn_id].sort(key=lambda pair: pair[0])
        for vrf in state.rib_deltas:
            state.rib_deltas[vrf].sort(key=lambda pair: pair[0])
        return state
