"""Full-system assembly: machines, pairs, controller, database, agent.

:class:`TensorSystem` builds the cluster of Figure 3: gateway host
machines running primary/backup container pairs, the logically
centralized controller, the agent server with its BFD relays and IP SLA
probes, the KV database, and the VXLAN underlay binding each pair's
service address to whichever container is active.

:class:`TensorPair` is one primary/backup container pair and implements
the recovery actions the controller drives (in-place application restart
for E1; NSR migration for E2/E4 and machine-level failures).
"""

from repro.bfd.packet import BfdState
from repro.bfd.process import BfdProcess
from repro.bgp.peer import PeerConfig
from repro.bgp.prefixes import Prefix
from repro.bgp.speaker import DEFAULT_MRAI, SpeakerConfig
from repro.containers.host import HostMachine, ProcessMonitor
from repro.control.controller import Controller
from repro.control.fencing import FencingRegistry
from repro.control.panel import ControllerPanel
from repro.control.quorum import EpochGate
from repro.control.ipsla import IpSlaProber, IpSlaResponder
from repro.core.agent import AgentServer
from repro.core.recovery import BackupRecovery
from repro.core.replication import ReplicationPipeline
from repro.core.tensor_process import TensorBgpSpeaker
from repro.kvstore.client import KvClient
from repro.kvstore.replication import ReplicatedKvCluster
from repro.kvstore.server import KvServer
from repro.containers.underlay import Underlay
from repro.sim.calibration import (
    APP_MONITOR_INTERVAL,
    APP_RESTART_TIME,
    CLUSTER_FABRIC_BANDWIDTH,
    CLUSTER_FABRIC_LATENCY,
    PROCESS_START_TIME,
    TCP_REPAIR_RESUME_TIME,
)
from repro.sim.engine import Engine
from repro.sim.network import Network
from repro.sim.process import Process
from repro.sim.rand import DeterministicRandom
from repro.tcpsim.repair import import_tcp_state, resume_connection
from repro.tcpsim.stack import TcpStack, TcpStackConfig


class PeerNeighborSpec:
    """One remote BGP neighbour of a pair."""

    def __init__(self, remote_addr, remote_as, vrf_name="default", mode="active",
                 hold_time=90, keepalive_interval=30, bfd=True,
                 bfd_tx_interval=None, bfd_detect_mult=None, mrai=None,
                 import_policy=None, export_policy=None):
        self.remote_addr = remote_addr
        self.remote_as = remote_as
        self.vrf_name = vrf_name
        self.mode = mode
        self.hold_time = hold_time
        self.keepalive_interval = keepalive_interval
        self.bfd = bfd
        #: BFD timer overrides; ``None`` uses the calibrated defaults.
        self.bfd_tx_interval = bfd_tx_interval
        self.bfd_detect_mult = bfd_detect_mult
        #: Per-peer MRAI override (effective under per-peer MRAI modes).
        self.mrai = mrai
        self.import_policy = import_policy
        self.export_policy = export_policy

    def to_peer_config(self):
        return PeerConfig(
            self.remote_addr,
            self.remote_as,
            vrf_name=self.vrf_name,
            mode=self.mode,
            hold_time=self.hold_time,
            keepalive_interval=self.keepalive_interval,
            mrai=self.mrai,
            import_policy=self.import_policy,
            export_policy=self.export_policy,
        )


class TensorSystem:
    """The whole gateway cluster."""

    def __init__(self, engine=None, seed=0, verify_reads=True, hold_acks=True,
                 hook_technology="netfilter", remote_db=None, tracing=False,
                 controller_replicas=1, legacy_controller=False):
        """``remote_db``: None, or {"latency": seconds, "mode": "sync"|"async"}
        to add a disaster-recovery store in another facility (§5).
        ``tracing=True`` installs a causal tracer on the engine (DESIGN.md
        §10); query the spans through :attr:`trace_store`.
        ``controller_replicas`` sizes the replicated controller panel
        (DESIGN.md §15); 1 keeps the panel bit-identical to the plain
        controller, which ``legacy_controller=True`` instantiates
        directly (the differential determinism test pins the two)."""
        self.engine = engine or Engine()
        self.tracer = None
        if tracing:
            from repro.trace import Tracer

            self.tracer = Tracer(self.engine)
        self.rng = DeterministicRandom(seed)
        self.network = Network(self.engine, self.rng)
        self.network.enable_fabric(
            latency=CLUSTER_FABRIC_LATENCY, bandwidth=CLUSTER_FABRIC_BANDWIDTH
        )
        self.underlay = Underlay(self.network)
        self.verify_reads = verify_reads
        self.hold_acks = hold_acks
        self.hook_technology = hook_technology

        # One leadership-epoch fence shared by every receiver of
        # controller actions: the fencing registry, the pairs (via
        # ``_epoch_accepted``) and the KV cluster.  ``accepts(None)`` is
        # always true, so the legacy unreplicated controller — which
        # stamps nothing — is unaffected by the gate's presence.
        self.controller_epoch_gate = EpochGate()
        self.controller_host = self.network.add_host("controller", "10.255.0.1")
        self.controller_hosts = [self.controller_host]
        for index in range(1, controller_replicas):
            self.controller_hosts.append(
                self.network.add_host(
                    f"controller{index + 1}", f"10.255.0.{index + 1}"
                )
            )
        self.fencing = FencingRegistry(
            self.engine, epoch_gate=self.controller_epoch_gate
        )
        if legacy_controller:
            self.controller = Controller(
                self.engine, self.controller_host, self.fencing
            )
        else:
            self.controller = ControllerPanel(
                self.engine,
                self.controller_hosts,
                fencing=self.fencing,
                epoch_gate=self.controller_epoch_gate,
            )

        # Default database topology (§4.1): a replicated KV cluster —
        # primary + synchronous replica on separate hosts — watched by
        # the controller's failover monitor.  ``system.db`` resolves to
        # the *current* primary, so failure levers and oracles keep
        # working across an automatic promotion.
        self.db_host = self.network.add_host("db", "10.254.0.1")
        self.db_replica_host = self.network.add_host("db-replica", "10.254.0.2")
        self.db_cluster = ReplicatedKvCluster(
            self.engine, self.db_host, self.db_replica_host
        )
        self.db_cluster.epoch_gate = self.controller_epoch_gate
        self._kv_registry = []
        self.controller.attach_database(self.db_cluster, self._on_db_failover)
        self.remote_db_spec = remote_db
        self.remote_db = None
        self.remote_db_host = None
        if remote_db is not None:
            self.remote_db_host = self.network.add_host("remote-db", "10.252.0.1")
            self.remote_db = KvServer(self.engine, self.remote_db_host)

        self.agent_host = self.network.add_host("agent", "10.253.0.1")
        IpSlaResponder(self.engine, self.agent_host)
        self.agent = AgentServer(
            self.engine, self.agent_host, self.controller, rng=self.rng.stream("agent")
        )

        self.machines = {}
        self.pairs = {}
        self._machine_probers = {}

    @property
    def trace_store(self):
        """The tracer's span store, or None when tracing is off."""
        return self.tracer.store if self.tracer is not None else None

    @property
    def db(self):
        """The cluster's current primary KV server."""
        return self.db_cluster.primary

    # ------------------------------------------------------------------
    # database clients / failover
    # ------------------------------------------------------------------

    def kv_client(self, host):
        """An epoch-aware KV client on the current primary, registered
        for controller repoint pushes on failover."""
        client = KvClient(
            self.engine,
            host,
            self.db_cluster.primary_addr,
            self.db_cluster.port,
            epoch=self.db_cluster.epoch,
        )
        self._kv_registry.append(client)
        return client

    def _on_db_failover(self, new_addr, epoch):
        # Push the new endpoint to every registered client over the
        # management network (one gRPC-ish hop each).
        for client in self._kv_registry:
            self.engine.schedule(0.002, client.repoint, new_addr, epoch)

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------

    def add_machine(self, name, address):
        machine = HostMachine(self.engine, self.network, name, address)
        self.machines[name] = machine
        IpSlaResponder(self.engine, machine.host)
        self.controller.register_machine(machine)
        monitor = ProcessMonitor(
            self.engine, machine, on_event=self.controller.docker_event
        )
        monitor.start()
        if self.remote_db_host is not None:
            # the inter-facility path: dedicated link with real WAN latency
            self.network.connect(
                machine.host, self.remote_db_host,
                latency=self.remote_db_spec["latency"], bandwidth=10e9,
            )
        self.agent.probe_machine(machine)
        # Inter-machine IP SLA mesh (signal (iii) of §3.3.3).
        prober = IpSlaProber(
            self.engine,
            machine.host,
            name=f"peer-ipsla:{name}",
            on_change=self._on_peer_probe_change,
        )
        prober.start()
        for other_name, other in self.machines.items():
            if other is machine:
                continue
            prober.add_target(other_name, other.address)
            self._machine_probers[other_name].add_target(name, machine.address)
        self._machine_probers[name] = prober
        return machine

    def _on_peer_probe_change(self, prober, target_name, reachable):
        # name the *origin* machine: the panel gates this feed on which
        # replicas can currently reach the reporting machine
        origin = prober.name.split(":", 1)[1]
        self.controller.peer_ipsla_report(origin, target_name, reachable)

    def create_pair(self, name, primary_machine, backup_machine, service_addr,
                    local_as, router_id, neighbors, config_entries=100,
                    preheat_backup=True, profile="tensor", mrai=None,
                    mrai_mode="per_speaker", aggregate_snapshots=False,
                    aggregates=()):
        pair = TensorPair(
            self,
            name,
            primary_machine,
            backup_machine,
            service_addr,
            local_as,
            router_id,
            neighbors,
            config_entries=config_entries,
            preheat_backup=preheat_backup,
            profile=profile,
            mrai=mrai,
            mrai_mode=mrai_mode,
            aggregate_snapshots=aggregate_snapshots,
            aggregates=aggregates,
        )
        self.pairs[name] = pair
        self.controller.register_pair(pair)
        return pair

    def run(self, duration):
        self.engine.advance(duration)

    def rib_digest(self):
        """Canonical, picklable snapshot of every pair's Loc-RIBs.

        ``{(pair, vrf): ((prefix, peer_id, source_kind, attrs_wire), ...)}``
        built from :meth:`LocRib.export_entries`, attributes in wire form —
        two runs of the same scenario are equivalent iff their digests are
        equal, which is the comparison the parallel runtime's bit-identical
        guarantee is checked against (workers=1 vs workers=N).
        """
        digest = {}
        for pair_name in sorted(self.pairs):
            speaker = self.pairs[pair_name].speaker
            if speaker is None:
                continue
            for vrf_name in sorted(speaker.vrfs):
                entries = speaker.vrfs[vrf_name].loc_rib.export_entries()
                digest[(pair_name, vrf_name)] = tuple(
                    (
                        entry["prefix"],
                        str(entry["peer_id"]),
                        entry["source_kind"],
                        bytes(entry["attributes"]),
                    )
                    for entry in entries
                )
        return digest


def partition_fleet(cells, shards, weight=None):
    """Split fleet cells (site descriptors, pair specs, ...) into ``shards``
    balanced groups for the parallel runtime.

    Thin delegation to :func:`repro.sim.parallel.partition.partition_items`
    so topology-level code has a partitioner without importing the runtime
    package directly; same determinism guarantees.
    """
    from repro.sim.parallel.partition import partition_items

    return partition_items(cells, shards, weight=weight)


class TensorPair:
    """One primary/backup container pair (one BGP process, one BFD)."""

    def __init__(self, system, name, primary_machine, backup_machine, service_addr,
                 local_as, router_id, neighbors, config_entries=100,
                 preheat_backup=True, profile="tensor", mrai=None,
                 mrai_mode="per_speaker", aggregate_snapshots=False,
                 aggregates=()):
        self.system = system
        self.engine = system.engine
        self.name = name
        self.service_addr = service_addr
        self.local_as = local_as
        self.router_id = router_id
        self.neighbors = list(neighbors)
        self.config_entries = config_entries
        self.preheat_backup = preheat_backup
        self.profile = profile
        self.mrai = mrai
        self.mrai_mode = mrai_mode
        # DRAGON aggregation knobs (DESIGN.md §14), both default-off:
        # snapshot aggregation collapses uniform subtrees in the KV
        # snapshot chunks; ``aggregates`` enables export aggregation.
        self.aggregate_snapshots = aggregate_snapshots
        self.aggregates = tuple(aggregates)

        self.active_machine = primary_machine
        self.standby_machine = backup_machine
        self.active_container = primary_machine.create_container(
            f"{name}-a", config_entries
        )
        self.standby_container = backup_machine.create_container(
            f"{name}-b", config_entries
        )

        self.speaker = None
        self.bfd = None
        self.stack = None
        self.service_endpoint = None
        self.pipeline = None
        self._kv_clients = []
        self.supervisor = None
        self._suppress_supervision = False
        self._bfd_disc_registry = {}  # (vrf, remote) -> (my_disc, your_disc)
        self.activations = 0
        #: set while the standby container is known-dead (the pair has
        #: lost its insurance); cleared when a replacement comes up
        self.backup_degraded = False
        self._standby_refreshes = 0
        self.on_bfd_down = None
        self._migration_span = None  # open "migration" trace span

    # ------------------------------------------------------------------
    # controller-facing interface
    # ------------------------------------------------------------------

    @property
    def primary_machine_name(self):
        return self.active_machine.name

    @property
    def backup_machine_name(self):
        return self.standby_machine.name

    @property
    def primary_container_name(self):
        return self.active_container.name

    @property
    def backup_container_name(self):
        return self.standby_container.name

    def _epoch_accepted(self, action, epoch):
        """Receiver-side epoch fence on controller-driven actions."""
        gate = getattr(self.system, "controller_epoch_gate", None)
        if gate is None or gate.accepts(epoch):
            return True
        gate.reject((action, self.name), epoch)
        return False

    # ------------------------------------------------------------------
    # bring-up
    # ------------------------------------------------------------------

    def start(self, on_ready=None):
        """Boot the primary, start processes, preheat the backup."""
        self.active_container.start(
            on_running=lambda _c: self._activate_fresh(on_ready)
        )
        if self.preheat_backup:
            self.standby_container.start()

    def _activate_fresh(self, on_ready):
        self._build_runtime(self.active_container, self.active_machine)
        self.speaker.start()
        self.bfd.start()
        self._register_monitoring()
        self.engine.schedule(0.5, self._register_relay)
        if on_ready is not None:
            on_ready(self)

    def _build_runtime(self, container, machine, recovered=False):
        """Construct stack + pipeline + speaker + BFD inside ``container``."""
        binding = self.system.underlay.claim(
            self.service_addr, machine, container, vrf_name="svc"
        )
        self.service_endpoint = binding.endpoint
        self.stack = TcpStack(
            self.engine,
            self.service_endpoint,
            TcpStackConfig(hook_technology=self.system.hook_technology),
        )
        fast = self.system.kv_client(container.endpoint)
        bulk = self.system.kv_client(container.endpoint)
        self._kv_clients = [fast, bulk]
        remote_client = None
        remote_mode = "sync"
        if self.system.remote_db is not None:
            remote_client = KvClient(
                self.engine, container.endpoint, self.system.remote_db_host.address
            )
            remote_mode = self.system.remote_db_spec.get("mode", "sync")
            self._kv_clients.append(remote_client)
        self.pipeline = ReplicationPipeline(
            self.name, fast, bulk,
            remote_client=remote_client, remote_mode=remote_mode,
            aggregate_snapshots=self.aggregate_snapshots,
        )
        self.speaker = TensorBgpSpeaker(
            self.engine,
            self.stack,
            SpeakerConfig(
                self.name, self.local_as, self.router_id, profile=self.profile,
                mrai=self.mrai if self.mrai is not None else DEFAULT_MRAI,
                mrai_mode=self.mrai_mode,
                aggregates=self.aggregates,
            ),
            self.pipeline,
            self.name,
            verify_reads=self.system.verify_reads,
            hold_acks=self.system.hold_acks,
        )
        self.bfd = BfdProcess(
            self.engine, self.service_endpoint, rng=self.system.rng.stream(f"bfd:{self.name}")
        )
        for neighbor in self.neighbors:
            if not recovered:
                self.speaker.add_vrf(neighbor.vrf_name)
                self.speaker.add_peer(neighbor.to_peer_config())
            if neighbor.bfd:
                prior = self._bfd_disc_registry.get((neighbor.vrf_name, neighbor.remote_addr))
                bfd_kwargs = {}
                if neighbor.bfd_tx_interval is not None:
                    bfd_kwargs["tx_interval"] = neighbor.bfd_tx_interval
                if neighbor.bfd_detect_mult is not None:
                    bfd_kwargs["detect_mult"] = neighbor.bfd_detect_mult
                session = self.bfd.add_session(
                    neighbor.vrf_name,
                    neighbor.remote_addr,
                    on_state_change=self._on_bfd_state,
                    my_disc=prior[0] if prior else None,
                    your_disc=prior[1] if prior else 0,
                    initial_state=BfdState.UP if (recovered and prior) else BfdState.DOWN,
                    **bfd_kwargs,
                )
                self._bfd_disc_registry[(neighbor.vrf_name, neighbor.remote_addr)] = (
                    session.my_disc,
                    session.your_disc,
                )
        container.add_process("bgp", _BgpApp(self.speaker, self.stack))
        container.add_process("bfd", self.bfd)

    def _register_monitoring(self):
        container = self.active_container
        if not getattr(container, "_monitoring_registered", False):
            container._monitoring_registered = True
            self.system.controller.register_container_channel(
                container, self.active_machine
            )
            IpSlaResponder(self.engine, container.endpoint)
            self.system.agent.probe_container(container, self.active_machine)
        else:
            # re-activation of a container seen before: just repoint the
            # agent's probe (the responder and channel are still bound)
            self.system.agent.retarget_container(
                container.name, container.endpoint.address
            )
        if self.supervisor is not None:
            self.supervisor.stop()
        self.supervisor = AppSupervisor(self)
        self.supervisor.start()

    def _register_relay(self):
        """Ship BFD session specs to the agent (discriminators now known)."""
        if self.bfd is not None and self.bfd.alive:
            specs = self.bfd.export_relay_specs()
            if specs:
                self.system.agent.register_relay(self.name, specs)
                # keep the registry's your_disc fresh for recovery
                for spec in specs:
                    self._bfd_disc_registry[(spec["vrf"], spec["remote_addr"])] = (
                        spec["my_disc"],
                        spec["your_disc"],
                    )

    def _on_bfd_state(self, session, old, new):
        if new is BfdState.DOWN and old is BfdState.UP:
            if self.on_bfd_down is not None:
                self.on_bfd_down(self, session)

    # ------------------------------------------------------------------
    # recovery action: in-place application restart (E1)
    # ------------------------------------------------------------------

    def _begin_migration_span(self, record, kind):
        tracer = self.engine._trace_hook
        if tracer is None:
            return
        if self._migration_span is not None:
            self._migration_span.finish(outcome="superseded")
        self._migration_span = tracer.begin(
            "migration", parent=None,
            pair=self.name, kind=kind,
            failure=getattr(record, "failure_kind", None),
            from_container=self.active_container.name,
        )

    def restart_application(self, record, on_done, epoch=None):
        if not self._epoch_accepted("restart_application", epoch):
            return False
        self._begin_migration_span(record, "app_restart")
        self._suppress_supervision = True
        container = self.active_container
        # the dead processes' sockets and hooks are gone
        if self.stack is not None:
            self.stack.destroy()
        if self.bfd is not None:
            self.bfd.crash()
        self.engine.schedule(
            APP_RESTART_TIME, self._app_restarted, container, record, on_done
        )
        return True

    def _app_restarted(self, container, record, on_done):
        if not container.running:
            return  # the container died meanwhile; controller will re-detect
        record.rebooted_at = self.engine.now
        self._build_runtime(container, self.active_machine, recovered=True)
        self._recover_from_db(record, on_done)
        if self.active_machine.monitor is not None:
            self.active_machine.monitor.clear_reported(container.name)

    # ------------------------------------------------------------------
    # recovery action: NSR migration to the backup (E2/E4/E3/E5)
    # ------------------------------------------------------------------

    def kill_primary_container(self, epoch=None):
        if not self._epoch_accepted("kill_primary_container", epoch):
            return False
        self._suppress_supervision = True
        self.active_container.stop()
        return True

    def _standby_machine_healthy(self):
        machine = self.standby_machine
        return (
            machine.alive
            and machine.host.network_up
            and not self.system.fencing.is_fenced(machine.name)
        )

    def _ensure_healthy_standby(self):
        """Re-home the standby when its machine is fenced or dead.

        The controller guarantees at most one active per address via the
        underlay; this guarantees the *target* of a migration is a
        machine that can actually serve.
        """
        if self._standby_machine_healthy():
            return True
        for machine in self.system.machines.values():
            if machine is self.active_machine:
                continue
            if (machine.alive and machine.host.network_up
                    and not self.system.fencing.is_fenced(machine.name)):
                self.standby_machine = machine
                self.standby_container = machine.create_container(
                    f"{self.name}-{self.activations + 1}r", self.config_entries
                )
                return True
        return False  # nowhere to go: stay on the (possibly dead) primary

    def activate_backup(self, record, on_done, cold=False, epoch=None):
        if not self._epoch_accepted("activate_backup", epoch):
            return False
        self._suppress_supervision = True
        if not self._ensure_healthy_standby():
            record.note("no healthy standby machine available; aborting")
            return None
        self._begin_migration_span(record, "backup_activation")
        self.activations += 1
        container = self.standby_container
        if container.running and not cold:
            # Preheated: the container is alive; schedule-in + process start.
            delay = container.boot_time(preheated=True) + PROCESS_START_TIME
            self.engine.schedule(delay, self._backup_up, record, on_done)
        else:
            # Cold start: create/boot the container, then start processes.
            container.state = type(container.state).CREATED
            container.start(
                on_running=lambda _c: self.engine.schedule(
                    PROCESS_START_TIME, self._backup_up, record, on_done
                )
            )
        return True

    def refresh_standby(self, epoch=None):
        """Replace a dead standby container (controller-driven).

        Prefers re-provisioning on the current standby machine when it
        is healthy (only the container died); otherwise re-homes like
        ``_ensure_healthy_standby``.  Returns True on success, None when
        no healthy machine can host a standby (the pair stays degraded),
        False only when the epoch fence rejected the action.
        """
        if not self._epoch_accepted("refresh_standby", epoch):
            return False
        machine = self.standby_machine if self._standby_machine_healthy() else None
        if machine is None:
            for candidate in self.system.machines.values():
                if candidate is self.active_machine:
                    continue
                if (candidate.alive and candidate.host.network_up
                        and not self.system.fencing.is_fenced(candidate.name)):
                    machine = candidate
                    break
        if machine is None:
            return None
        self._standby_refreshes += 1
        self.standby_machine = machine
        self.standby_container = machine.create_container(
            f"{self.name}-f{self._standby_refreshes}", self.config_entries
        )
        if self.preheat_backup:
            self.standby_container.start()
        self.backup_degraded = False
        return True

    def _backup_up(self, record, on_done):
        record.rebooted_at = self.engine.now
        # Swap roles: the backup becomes the active side.
        old_container = self.active_container
        old_machine = self.active_machine
        self.active_container, self.standby_container = (
            self.standby_container,
            self.active_container,
        )
        self.active_machine, self.standby_machine = (
            self.standby_machine,
            self.active_machine,
        )
        self._build_runtime(self.active_container, self.active_machine, recovered=True)
        self._recover_from_db(record, on_done)
        self._register_monitoring()
        self.engine.schedule(0.5, self._register_relay)
        # Re-provision a standby on the old machine if it is healthy and
        # not fenced (after machine failures it stays empty until a manual
        # reset, per the fencing rule).
        if old_machine.alive and not self.system.fencing.is_fenced(old_machine.name):
            replacement = old_machine.create_container(
                f"{self.name}-{self.activations}s", self.config_entries
            )
            self.standby_container = replacement
            self.backup_degraded = False
            if self.preheat_backup:
                replacement.start()
        else:
            self.standby_container = old_container  # dead placeholder
            self.backup_degraded = True

    # ------------------------------------------------------------------
    # shared recovery tail: download state, repair TCP, resume
    # ------------------------------------------------------------------

    def _recover_from_db(self, record, on_done):
        recovery_client = self.system.kv_client(self.active_container.endpoint)
        self._kv_clients.append(recovery_client)
        recovery = BackupRecovery(self.engine, recovery_client, self.name)
        estimated = max(self.config_entries, 64)
        recovery.load(
            lambda state: self._state_loaded(state, record, on_done),
            estimated_records=estimated,
        )

    def _state_loaded(self, state, record, on_done):
        # Rebuild Loc-RIBs (no message replay).
        for neighbor in self.neighbors:
            self.speaker.add_vrf(neighbor.vrf_name)
        for vrf_name in state.vrf_names():
            if vrf_name not in self.speaker.vrfs:
                self.speaker.add_vrf(vrf_name)
            rebuilt = state.rebuild_loc_rib(
                vrf_name, self.local_as, self.speaker.config.router_id_int
            )
            self.speaker.vrfs[vrf_name].loc_rib = rebuilt
            self.pipeline.resume_delta_log(
                vrf_name, *state.delta_log_state(vrf_name)
            )
        # Sessions resume by adoption below — no fresh connects, so the
        # speaker is marked running without start().  It still listens:
        # if an adopted session later drops (e.g. a real link failure),
        # the passive side must accept the peer's reconnection.
        self.speaker.running = True
        if any(neighbor.mode == "passive" for neighbor in self.neighbors):
            self.speaker._ensure_listening()
        # Adopt each replicated connection.
        adopted = []
        for conn_id, meta in state.sessions.items():
            repair = state.tcp_repair_state(conn_id)
            conn = import_tcp_state(self.stack, repair)
            neighbor = self._neighbor_for(meta)
            if neighbor is None:
                continue
            peer_config = neighbor.to_peer_config()
            session = self.speaker.adopt_recovered_session(
                peer_config,
                conn,
                meta,
                in_pos=state.recovered_in_position(conn_id),
                out_state=state.recovered_out_state(conn_id),
            )
            for message_record in state.unapplied_messages(conn_id):
                self.speaker.apply_recovered_message(session, message_record)
            # restore the replicated partial-message tail (if any): the TCP
            # receive position already includes it, so the decoder must too
            partial_bytes, _upto = state.recovered_partial(conn_id)
            if partial_bytes:
                session.decoder.prime(partial_bytes)
            resume_connection(conn)
            # announce liveness immediately: repeated migrations inside one
            # keepalive interval would otherwise keep resetting the timer
            # and starve the remote's hold timer of traffic
            self.speaker.keepalive_due(session)
            adopted.append(session)
        # Outbound resync (the divergence corner in repro.core.recovery's
        # docstring): a change applied just before the crash whose UPDATE
        # was never generated is in no replay path.  Re-send the recent
        # withdrawals from the durable delta log, re-advertise the table.
        for session in adopted:
            vrf = session.vrf
            dead = [
                prefix
                for prefix in (
                    Prefix.parse(text)
                    for text in sorted(
                        state.recent_withdrawn_prefixes(vrf.name)
                    )
                )
                if vrf.loc_rib.best(prefix) is None
            ]
            self.speaker.resync_session(session, dead)
        # The repair-resume budget covers socket rebuilds and resyncs.
        self.engine.schedule(
            TCP_REPAIR_RESUME_TIME, self._recovery_finished, record, on_done
        )

    def _recovery_finished(self, record, on_done):
        record.recovered_at = self.engine.now
        if self._migration_span is not None:
            # The span links the two process incarnations: the container
            # that failed and the one now serving the service address.
            self._migration_span.finish(
                to_container=self.active_container.name,
                activations=self.activations,
            )
            self._migration_span = None
        self._suppress_supervision = False
        if self.supervisor is not None:
            self.supervisor._reported = False
        on_done()

    def _neighbor_for(self, meta):
        for neighbor in self.neighbors:
            if (
                neighbor.remote_addr == meta["remote_addr"]
                and neighbor.vrf_name == meta["vrf"]
            ):
                return neighbor
        return None

    # ------------------------------------------------------------------
    # failure-injection levers (driven by repro.failures)
    # ------------------------------------------------------------------

    def inject_application_failure(self):
        """E1: kill the BGP application (and its sockets) in place."""
        app = self.active_container.processes.get("bgp")
        if app is not None:
            app.crash()

    def inject_container_failure(self):
        """E2: kill the whole active container."""
        self.active_container.fail()
        if self.stack is not None:
            self.stack.destroy()

    def inject_container_network_failure(self):
        """E4: the active container's virtual NIC dies; processes live."""
        self.active_container.fail_network()
        if self.service_endpoint is not None:
            self.service_endpoint.fail_network()

    # ------------------------------------------------------------------

    def established_session_count(self):
        if self.speaker is None:
            return 0
        return len(self.speaker.established_sessions())

    def __repr__(self):
        return f"<TensorPair {self.name} active={self.active_container.name}>"


class _BgpApp:
    """Supervision adapter: one BGP application = speaker + its sockets.

    When the container (or the injector) kills the application, the
    speaker's timers stop and the TCP stack vanishes with the process —
    crucially *without* emitting RST/FIN, which the Netfilter guard rule
    would have dropped anyway.
    """

    def __init__(self, speaker, stack):
        self.speaker = speaker
        self.stack = stack

    @property
    def alive(self):
        return self.speaker.running and self.speaker.process.alive

    def crash(self):
        self.speaker.crash()
        self.stack.destroy()

    def stop(self):
        self.crash()


class AppSupervisor:
    """In-container process watchdog (the E1 detector, ~10 ms polls)."""

    def __init__(self, pair, interval=APP_MONITOR_INTERVAL):
        self.pair = pair
        self.interval = interval
        self.process = Process(pair.engine, f"supervisor:{pair.name}")
        self._reported = False

    def start(self):
        self.process.every(self.interval, self._poll)

    def _poll(self):
        pair = self.pair
        if pair._suppress_supervision or self._reported:
            return
        container = pair.active_container
        if not container.running:
            return  # container-level failure: the Docker monitor's job
        for name in ("bgp", "bfd"):
            if name in container.processes and not container.process_alive(name):
                self._reported = True
                # report rides a gRPC hop to the controller
                pair.engine.schedule(
                    0.002,
                    pair.system.controller.docker_event,
                    "process-dead",
                    container,
                    name,
                )
                return

    def stop(self):
        self.process.kill()
