"""Failure location (§3.3.3): combine signals, confirm, classify.

The controller cannot trust any single signal.  This detector implements
the paper's rules:

- **Application failures (E1)**: the in-container supervisor reports a
  dead BGP/BFD process; the container itself is fine.
- **Container failures (E2)**: the host's process monitor (Docker
  daemon), the controller's gRPC health check, or IP SLA probes flag the
  container.
- **Container network failures (E4)**: network probes to the container
  fail while "the process monitor on the host machine will not report an
  error".
- **Host machine (E3) / host network (E5) failures**: only when *all* of
  (i) controller gRPC heartbeat, (ii) IP SLA from the agent, and
  (iii) inter-server IP SLA fail, and a 3-second confirmation timer
  passes with all signals still failing, is the machine declared failed —
  "we take multiple measurements to verify it and avoid false positives".
"""

from repro.sim.calibration import HOST_FAILURE_CONFIRM_TIMER
from repro.sim.process import Timer


class FailureReport:
    """A confirmed, classified failure handed to the controller."""

    def __init__(self, kind, target_name, detected_at, confirmed_at, detail=None):
        self.kind = kind  # "application" | "container" | "container_network"
        #        | "machine_unreachable"
        self.target_name = target_name
        self.detected_at = detected_at
        self.confirmed_at = confirmed_at
        self.detail = detail

    def __repr__(self):
        return (
            f"<FailureReport {self.kind} {self.target_name}"
            f" det={self.detected_at:.3f} conf={self.confirmed_at:.3f}>"
        )


class _MachineSignals:
    __slots__ = ("grpc_down", "agent_ipsla_down", "peer_ipsla_down", "first_signal_at", "timer", "reported")

    def __init__(self):
        self.grpc_down = False
        self.agent_ipsla_down = False
        self.peer_ipsla_down = False
        self.first_signal_at = None
        self.timer = None
        self.reported = False

    def all_down(self):
        return self.grpc_down and self.agent_ipsla_down and self.peer_ipsla_down

    def any_down(self):
        return self.grpc_down or self.agent_ipsla_down or self.peer_ipsla_down


class _ContainerSignals:
    __slots__ = ("grpc_down", "ipsla_down", "dead_reported", "first_signal_at", "reported", "machine_name")

    def __init__(self):
        self.grpc_down = False
        self.ipsla_down = False
        self.dead_reported = False
        self.first_signal_at = None
        self.reported = False
        self.machine_name = None


class FailureDetector:
    """Aggregates raw signals into confirmed :class:`FailureReport`\\ s."""

    def __init__(self, engine, on_failure, confirm_timer=HOST_FAILURE_CONFIRM_TIMER):
        self.engine = engine
        self.on_failure = on_failure
        self.confirm_timer = confirm_timer
        self._machines = {}
        self._containers = {}
        #: machine_name -> status dict from its last healthy gRPC heartbeat
        self.machine_status = {}
        self.reports = []

    # ------------------------------------------------------------------
    # signal intake
    # ------------------------------------------------------------------

    def note_machine_status(self, machine_name, status):
        self.machine_status[machine_name] = status

    def note_process_dead(self, container_name, process_name, machine_name):
        """E1 via the in-container supervisor: immediate, authoritative."""
        self._emit("application", container_name, self.engine.now, self.engine.now,
                   detail={"process": process_name, "machine": machine_name})

    def note_container_dead(self, container_name):
        """E2 via the Docker-daemon monitor: immediate, authoritative."""
        state = self._container(container_name)
        if state.reported:
            return
        state.reported = True
        now = self.engine.now
        first = state.first_signal_at if state.first_signal_at is not None else now
        self._emit("container", container_name, first, now)

    def note_container_grpc(self, container_name, healthy, machine_name):
        state = self._container(container_name)
        state.machine_name = machine_name
        state.grpc_down = not healthy
        if not healthy and state.first_signal_at is None:
            state.first_signal_at = self.engine.now
        if healthy:
            state.first_signal_at = None
            state.reported = False
        self._evaluate_container(container_name, machine_name)

    def note_container_ipsla(self, container_name, reachable, machine_name):
        state = self._container(container_name)
        state.machine_name = machine_name
        state.ipsla_down = not reachable
        if not reachable and state.first_signal_at is None:
            state.first_signal_at = self.engine.now
        if reachable:
            state.reported = False
        self._evaluate_container(container_name, machine_name)

    def note_machine_grpc(self, machine_name, healthy):
        state = self._machine(machine_name)
        state.grpc_down = not healthy
        self._machine_signal_changed(machine_name, state)

    def note_machine_agent_ipsla(self, machine_name, reachable):
        state = self._machine(machine_name)
        state.agent_ipsla_down = not reachable
        self._machine_signal_changed(machine_name, state)

    def note_machine_peer_ipsla(self, machine_name, reachable):
        state = self._machine(machine_name)
        state.peer_ipsla_down = not reachable
        self._machine_signal_changed(machine_name, state)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------

    def _evaluate_container(self, container_name, machine_name):
        """Classify a container whose probes fail (E2 vs E4)."""
        state = self._container(container_name)
        if state.reported or not (state.grpc_down and state.ipsla_down):
            return
        machine_state = self._machine(machine_name)
        if machine_state.any_down():
            return  # machine-level issue; handled by the machine path
        state.reported = True
        status = self.machine_status.get(machine_name, {})
        container_states = status.get("containers", {})
        container_ok = container_states.get(container_name, {}).get("running", False)
        kind = "container_network" if container_ok else "container"
        self._emit(kind, container_name, state.first_signal_at or self.engine.now,
                   self.engine.now, detail={"machine": machine_name})

    def _machine_signal_changed(self, machine_name, state):
        if state.all_down():
            if state.first_signal_at is None:
                state.first_signal_at = self.engine.now
            if state.timer is None and not state.reported:
                # "a 3-second timer will be given before we begin the
                #  recovery to avoid false positives"
                state.timer = Timer(
                    self.engine,
                    lambda: self._confirm_machine(machine_name),
                    f"confirm:{machine_name}",
                )
                state.timer.start(self.confirm_timer)
        else:
            # Any recovering signal disarms the confirmation (transient
            # jitter must not trigger a mass migration).
            if state.timer is not None:
                state.timer.stop()
                state.timer = None
            if not state.any_down():
                state.first_signal_at = None
                state.reported = False
                # The machine path just concluded "false positive".  Any
                # container deferred to it (probes failing while machine
                # signals were down) is still broken — the probes report
                # edges, not levels, so without this sweep a container
                # network failure overlapped by a transient host blip is
                # never classified and the pair never recovers.
                self._reevaluate_machine_containers(machine_name)

    def _reevaluate_machine_containers(self, machine_name):
        for container_name, state in list(self._containers.items()):
            if (state.machine_name == machine_name
                    and state.grpc_down and state.ipsla_down):
                self._evaluate_container(container_name, machine_name)

    def _confirm_machine(self, machine_name):
        state = self._machine(machine_name)
        state.timer = None
        if not state.all_down() or state.reported:
            return
        state.reported = True
        self._emit(
            "machine_unreachable",
            machine_name,
            state.first_signal_at or self.engine.now,
            self.engine.now,
        )

    def _emit(self, kind, target, detected_at, confirmed_at, detail=None):
        report = FailureReport(kind, target, detected_at, confirmed_at, detail)
        self.reports.append(report)
        self.on_failure(report)

    # ------------------------------------------------------------------

    def _machine(self, name):
        if name not in self._machines:
            self._machines[name] = _MachineSignals()
        return self._machines[name]

    def _container(self, name):
        if name not in self._containers:
            self._containers[name] = _ContainerSignals()
        return self._containers[name]

    def reset_target(self, name):
        """Forget state after recovery so future failures re-report."""
        self._machines.pop(name, None)
        self._containers.pop(name, None)

    def rearm_target(self, name):
        """Allow a target to re-report *without* forgetting signal levels.

        Used when a recovery is abandoned: the probes may still be down
        (edge-triggered feeds will not re-fire), so we must keep the
        current levels and only clear the report latches.
        """
        machine = self._machines.get(name)
        if machine is not None:
            machine.reported = False
            if machine.timer is not None:
                machine.timer.stop()
                machine.timer = None
            self._machine_signal_changed(name, machine)
        container = self._containers.get(name)
        if container is not None:
            container.reported = False
            container.dead_reported = False
            if container.machine_name is not None:
                self._evaluate_container(name, container.machine_name)
