"""Fencing: the split-brain guard on failed machines.

§3.3.3: "once we decide to migrate, the original server will not be
re-used before a manual reset — even if it goes back online before that —
to avoid split-brain issues or oscillations."

With the replicated controller panel (DESIGN.md §15) the registry is
also an epoch-fence receiver: a fence request stamped with a stale
leadership epoch is rejected, so a deposed ex-leader cannot fence a
healthy machine.
"""


class FencingRegistry:
    """Tracks which machines are fenced (banned from hosting actives)."""

    def __init__(self, engine, epoch_gate=None):
        self.engine = engine
        self.epoch_gate = epoch_gate
        self._fenced = {}  # machine_name -> fenced_at
        self.history = []  # (time, action, machine_name)

    def fence(self, machine_name, epoch=None):
        if self.epoch_gate is not None and not self.epoch_gate.accepts(epoch):
            self.epoch_gate.reject(("fence", machine_name), epoch)
            self.history.append((self.engine.now, "rejected-fence", machine_name))
            return False
        if machine_name not in self._fenced:
            self._fenced[machine_name] = self.engine.now
            self.history.append((self.engine.now, "fence", machine_name))
        return True

    def is_fenced(self, machine_name):
        return machine_name in self._fenced

    def manual_reset(self, machine_name):
        """Operator-driven unfence after repair and inspection."""
        if machine_name in self._fenced:
            del self._fenced[machine_name]
            self.history.append((self.engine.now, "reset", machine_name))

    def fenced_machines(self):
        return sorted(self._fenced)

    def __len__(self):
        return len(self._fenced)
