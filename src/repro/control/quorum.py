"""Quorum voting, leadership leases and epoch fencing for the panel.

The replicated controller (DESIGN.md §15) splits the single controller's
*trust* three ways, borrowing P4BFT's comparator idea: each replica is an
independent witness (its own gRPC heartbeats, IP SLA feeds and database
probes), and a recovery action fires only when a **quorum** of replicas
independently confirmed the same failure.  A single crashed, partitioned
or *lying* replica can therefore neither trigger a wrong failover nor
suppress a right one.

Actions are additionally **epoch-fenced**: the panel elects a sticky
leader, every leadership change bumps a monotonic epoch, and receivers
(pairs, the fencing registry, the KV cluster) reject actions stamped
with an epoch below the announced floor — a partitioned ex-leader's
in-flight decisions die at the receiver instead of migrating a healthy
pair.  This reuses the discipline of the KV cluster's own failover
epochs (PR 5); the two epoch spaces are independent.
"""


class HealthVerdict:
    """One replica's confirmed opinion about one target."""

    __slots__ = ("replica_id", "kind", "target_name", "confirmed_at",
                 "incarnation", "detail")

    def __init__(self, replica_id, kind, target_name, confirmed_at,
                 incarnation, detail=None):
        self.replica_id = replica_id
        self.kind = kind
        self.target_name = target_name
        self.confirmed_at = confirmed_at
        #: the reporting detector's epoch: bumps every replica reboot, so
        #: a verdict can be traced to the detector incarnation that saw it
        self.incarnation = incarnation
        self.detail = detail

    def __repr__(self):
        return (
            f"<HealthVerdict r{self.replica_id}#{self.incarnation}"
            f" {self.kind} {self.target_name} @{self.confirmed_at:.3f}>"
        )


class QuorumTracker:
    """Counts distinct-replica votes per incident; fires each once.

    An *incident* is any hashable key (the panel uses
    ``("health", kind, target)`` and ``("db", cluster_epoch)``).  A vote
    is one replica's verdict; :meth:`submit` returns True exactly once —
    on the vote that first reaches quorum — and False for every earlier,
    later or repeated vote.  :meth:`reset_target` clears incidents
    naming a target once its recovery completed, so a *recurring* real
    failure can form a fresh quorum.
    """

    def __init__(self, size):
        self.size = size
        self.quorum = size // 2 + 1
        self._votes = {}  # incident key -> set of replica ids
        self._acted = set()

    def submit(self, key, replica_id):
        votes = self._votes.setdefault(key, set())
        votes.add(replica_id)
        if key in self._acted:
            return False
        if len(votes) >= self.quorum:
            self._acted.add(key)
            return True
        return False

    def votes(self, key):
        return frozenset(self._votes.get(key, ()))

    def acted(self, key):
        return key in self._acted

    def reset_target(self, target_name):
        """Forget every incident that names ``target_name``."""
        for key in [k for k in self._votes if target_name in k]:
            self._votes.pop(key, None)
            self._acted.discard(key)

    def __repr__(self):
        return (
            f"<QuorumTracker {self.quorum}/{self.size},"
            f" {len(self._votes)} incident(s), {len(self._acted)} acted>"
        )


class LeaderLease:
    """Sticky leadership over an ordered replica list.

    The leader keeps the lease while it is alive; when it dies, the
    lowest-indexed live replica takes over and the epoch increments.
    (Deliberately *not* a consensus protocol: the panel replicas share
    the simulated management fabric, so a deterministic lowest-index
    rule is enough — the safety burden is carried by the epoch fence,
    not by the election.)
    """

    def __init__(self, replicas):
        self.replicas = list(replicas)
        self.leader_index = 0
        self.epoch = 1
        self.transitions = []  # (epoch, leader_index) history

    def leader(self):
        return self.replicas[self.leader_index]

    def ensure(self):
        """Re-elect if the current leader is dead.  Returns True when
        leadership changed (callers then announce the new epoch)."""
        if self.replicas[self.leader_index].alive:
            return False
        for index, replica in enumerate(self.replicas):
            if replica.alive:
                self.leader_index = index
                self.epoch += 1
                self.transitions.append((self.epoch, index))
                return True
        # every replica is dead: the panel is down; keep the stale
        # leader so a later reboot resumes deterministically
        return False

    def __repr__(self):
        return f"<LeaderLease leader=r{self.leader_index} epoch={self.epoch}>"


class EpochGate:
    """The receiver-side fence: reject actions below the epoch floor.

    ``announce(epoch)`` raises the floor (monotonic); ``accepts(stamp)``
    is the check every receiver runs before executing a recovery action.
    A ``None`` stamp always passes — it marks a legacy (unreplicated)
    controller, whose actions are not epoch-fenced.
    """

    def __init__(self):
        self.floor = 1
        self.rejections = []  # (action, stamped_epoch, floor_at_rejection)

    def announce(self, epoch):
        if epoch > self.floor:
            self.floor = epoch

    def accepts(self, stamp):
        return stamp is None or stamp >= self.floor

    def reject(self, action, stamp):
        self.rejections.append((action, stamp, self.floor))

    def __repr__(self):
        return f"<EpochGate floor={self.floor} rejected={len(self.rejections)}>"
