"""The TKE-based controller (§3.2.2, §3.3.3).

Logically centralized: it owns the gRPC channels to every machine,
container and the agent server, receives the aggregated failure signals
through the :class:`~repro.control.detector.FailureDetector`, decides the
recovery action, and drives it on the registered container *pairs*.

Pairs are TENSOR-specific objects (see :mod:`repro.core.system`) exposing
a small interface:

- ``name``
- ``primary_machine_name`` / ``backup_machine_name``
- ``primary_container_name``
- ``restart_application(record, on_done)``   (E1: reboot in place)
- ``activate_backup(record, on_done, cold)`` (E2/E4/E3/E5: NSR migration)
"""

from repro.control.channels import GrpcChannel, HealthServer, next_grpc_port
from repro.control.db_monitor import DbFailoverMonitor
from repro.control.detector import FailureDetector
from repro.control.fencing import FencingRegistry
from repro.control.migration import MigrationRecord
from repro.sim.calibration import (
    CONTROLLER_DECISION_TIME,
    CONTROLLER_DECISION_TIME_MACHINE,
    HOST_MIGRATION_STAGGER,
)
from repro.sim.process import Process


class Controller:
    """The cluster controller."""

    def __init__(self, engine, host, fencing=None):
        self.engine = engine
        self.host = host  # controller's network endpoint
        self.process = Process(engine, "controller")
        self.detector = FailureDetector(engine, self._on_failure)
        # explicit None-check: an empty registry is falsy (it has __len__)
        self.fencing = fencing if fencing is not None else FencingRegistry(engine)
        self.machines = {}  # name -> HostMachine
        self.pairs = {}  # name -> pair object
        self._machine_channels = {}
        self._container_channels = {}
        self.records = []
        self.events = []
        self._recovering = set()
        self.failure_hooks = []  # fn(report) observers (tests/benchmarks)
        self.db_monitor = None

    # ------------------------------------------------------------------
    # registration / wiring
    # ------------------------------------------------------------------

    def register_machine(self, machine, health_port=None):
        """Track a machine: gRPC channel + its Docker-monitor events."""
        self.machines[machine.name] = machine
        port = health_port if health_port is not None else next_grpc_port(self.engine)
        HealthServer(
            self.engine,
            machine.host,
            status_fn=lambda m=machine: _machine_status(m),
            port=port,
        )
        channel = GrpcChannel(
            self.engine,
            self.host,
            machine.name,
            machine.address,
            target_port=port,
            on_unhealthy=lambda ch: self.detector.note_machine_grpc(ch.target_name, False),
            on_healthy=lambda ch: self.detector.note_machine_grpc(ch.target_name, True),
            on_status=lambda ch, status: self.detector.note_machine_status(
                ch.target_name, status
            ),
        )
        channel.start()
        self._machine_channels[machine.name] = channel
        return channel

    def register_container_channel(self, container, machine):
        """gRPC channel to one container's management endpoint."""
        if container.endpoint is None:
            raise RuntimeError(f"container {container.name} has no endpoint (not booted)")
        port = next_grpc_port(self.engine)
        HealthServer(
            self.engine,
            container.endpoint,
            status_fn=lambda c=container: _container_status(c),
            port=port,
        )
        channel = GrpcChannel(
            self.engine,
            self.host,
            container.name,
            container.endpoint.address,
            target_port=port,
            on_unhealthy=lambda ch: self.detector.note_container_grpc(
                ch.target_name, False, machine.name
            ),
            on_healthy=lambda ch: self.detector.note_container_grpc(
                ch.target_name, True, machine.name
            ),
        )
        channel.start()
        self._container_channels[container.name] = channel
        return channel

    def register_pair(self, pair):
        self.pairs[pair.name] = pair

    def attach_database(self, cluster, on_failover=None):
        """Watch a replicated KV cluster and fail it over automatically.

        On a confirmed primary death the monitor promotes the replica
        under the next cluster epoch; ``on_failover(new_addr, epoch)``
        is then invoked (the system uses it to repoint every KV client).
        """

        def record(new_addr, epoch):
            self.events.append(
                (self.engine.now, "database-failover", (new_addr, epoch))
            )
            if on_failover is not None:
                on_failover(new_addr, epoch)

        self.db_monitor = DbFailoverMonitor(
            self.engine, self.host, cluster, on_failover=record
        )
        return self.db_monitor

    def docker_event(self, kind, container, detail):
        """Entry point for ProcessMonitor events forwarded over gRPC."""
        if kind == "container-dead":
            self.detector.note_container_dead(container.name)
        elif kind == "process-dead":
            self.detector.note_process_dead(
                container.name, detail, container.machine.name
            )

    # ------------------------------------------------------------------
    # failure handling (§3.3.3)
    # ------------------------------------------------------------------

    def _on_failure(self, report):
        self.events.append((self.engine.now, "failure-report", report))
        for hook in self.failure_hooks:
            hook(report)
        if report.kind == "machine_unreachable":
            self._handle_machine_failure(report)
        else:
            self._handle_container_level_failure(report)

    def _handle_container_level_failure(self, report):
        pair = self._pair_of_container(report.target_name)
        if pair is None or pair.name in self._recovering:
            return
        self._recovering.add(pair.name)
        record = MigrationRecord(report.kind, report.target_name)
        record.detected_at = report.confirmed_at
        self.records.append(record)
        self.process.after(
            CONTROLLER_DECISION_TIME, self._initiate_container_recovery, pair, record, report
        )

    def _initiate_container_recovery(self, pair, record, report):
        record.initiated_at = self.engine.now
        done = lambda: self._recovery_done(pair, record)
        if report.kind == "application":
            record.note("in-place application restart")
            pair.restart_application(record, done)
        else:
            if report.kind == "container_network":
                # "the controller will kill the primary container through
                #  TKE while starting the BGP NSR migration"
                record.note("killing primary container via TKE")
                pair.kill_primary_container()
            record.note("NSR migration to backup container")
            pair.activate_backup(record, done, cold=False)

    def _handle_machine_failure(self, report):
        machine_name = report.target_name
        # Fencing first: the machine must never answer for service
        # addresses again until manually reset (split-brain guard).
        self.fencing.fence(machine_name)
        affected = [
            pair
            for pair in self.pairs.values()
            if pair.primary_machine_name == machine_name
            and pair.name not in self._recovering
        ]
        self.events.append(
            (self.engine.now, "machine-migration", (machine_name, len(affected)))
        )
        for index, pair in enumerate(affected):
            self._recovering.add(pair.name)
            record = MigrationRecord("machine", pair.primary_container_name)
            record.detected_at = report.confirmed_at
            self.records.append(record)
            delay = CONTROLLER_DECISION_TIME_MACHINE + index * HOST_MIGRATION_STAGGER
            self.process.after(
                delay, self._initiate_machine_recovery, pair, record
            )

    def _initiate_machine_recovery(self, pair, record):
        record.initiated_at = self.engine.now
        record.note("mass NSR migration after machine failure")
        pair.activate_backup(
            record, lambda: self._recovery_done(pair, record), cold=True
        )

    def _recovery_done(self, pair, record):
        if record.recovered_at is None:
            record.recovered_at = self.engine.now
        self._recovering.discard(pair.name)
        self.events.append((self.engine.now, "recovery-done", pair.name))

    def _pair_of_container(self, container_name):
        for pair in self.pairs.values():
            if pair.primary_container_name == container_name:
                return pair
        return None

    # ------------------------------------------------------------------

    def manual_reset_machine(self, machine_name):
        """Operator unfences a repaired machine (§3.3.3).

        The reset is a reimage: every container that was running when the
        machine was fenced is stopped first.  Without this, a zombie BGP
        process from before the failure would come back online with the
        machine and fight the migrated active — the exact split-brain the
        fencing rule exists to prevent.
        """
        machine = self.machines.get(machine_name)
        if machine is not None:
            for container in machine.containers.values():
                if container.running:
                    container.stop()
            if machine.monitor is not None:
                machine.monitor.clear_reported()
        self.fencing.manual_reset(machine_name)
        self.detector.reset_target(machine_name)

    def completed_records(self):
        return [r for r in self.records if r.complete]


def _machine_status(machine):
    return {
        "containers": {
            name: {
                "running": container.running,
                "processes": {
                    pname: container.process_alive(pname)
                    for pname in container.processes
                },
            }
            for name, container in machine.containers.items()
        },
    }


def _container_status(container):
    return {
        "running": container.running,
        "processes": {
            name: container.process_alive(name) for name in container.processes
        },
    }
