"""The TKE-based controller (§3.2.2, §3.3.3).

Logically centralized: it owns the gRPC channels to every machine,
container and the agent server, receives the aggregated failure signals
through the :class:`~repro.control.detector.FailureDetector`, decides the
recovery action, and drives it on the registered container *pairs*.

Pairs are TENSOR-specific objects (see :mod:`repro.core.system`) exposing
a small interface:

- ``name``
- ``primary_machine_name`` / ``backup_machine_name``
- ``primary_container_name`` / ``backup_container_name``
- ``restart_application(record, on_done)``   (E1: reboot in place)
- ``activate_backup(record, on_done, cold)`` (E2/E4/E3/E5: NSR migration)
- ``refresh_standby()``                      (replace a dead backup)

The recovery *policy* lives in :class:`RecoveryActions`, shared verbatim
with the replicated :class:`~repro.control.panel.ControllerPanel`
(DESIGN.md §15): the panel substitutes quorum-gated report intake and
epoch-stamped execution via the small hook methods at the top of the
mixin, while the single-controller deployment keeps every hook at its
no-op default — which is what keeps a panel-of-1 bit-identical to this
class.
"""

from repro.control.channels import GrpcChannel, HealthServer, next_grpc_port
from repro.control.db_monitor import DbFailoverMonitor
from repro.control.detector import FailureDetector
from repro.control.fencing import FencingRegistry
from repro.control.migration import MigrationRecord
from repro.sim.calibration import (
    CONFIG_LOAD_TIME_PER_ENTRY,
    CONTROLLER_DECISION_TIME,
    CONTROLLER_DECISION_TIME_MACHINE,
    HOST_MIGRATION_STAGGER,
    RECOVERY_DEADLINE,
)
from repro.sim.process import Process


class RecoveryActions:
    """Shared recovery policy: classify → decide → drive → bound.

    Subclasses provide ``engine``, ``process``, ``fencing``, ``machines``,
    ``pairs``, ``records``, ``events``, ``_recovering``,
    ``_active_recovery`` and ``abandoned_records``.
    """

    # -- replication hooks (panel overrides; defaults = single controller)

    def _action_epoch(self):
        """Leadership epoch stamped on recovery actions (None = unfenced)."""
        return None

    def _action_still_valid(self, epoch):
        """Recheck a decision at execution time (panel: am I still leader?)."""
        return True

    def _rearm_target(self, name):
        self.detector.rearm_target(name)

    def _reset_target(self, name):
        self.detector.reset_target(name)

    def _pair_recovered(self, pair):
        """Called after a pair's recovery closes (panel: reset quorum)."""

    @staticmethod
    def _pair_call(fn, *args, epoch=None, **kwargs):
        # Pairs (and test stubs) predating the epoch fence take no
        # ``epoch`` kwarg; only stamp the call when there is a stamp.
        if epoch is None:
            return fn(*args, **kwargs)
        return fn(*args, epoch=epoch, **kwargs)

    # ------------------------------------------------------------------
    # failure handling (§3.3.3)
    # ------------------------------------------------------------------

    def _handle_container_level_failure(self, report):
        pair, role = self._pair_of_container(report.target_name)
        if pair is None:
            return
        if role == "standby":
            self._handle_backup_failure(pair, report)
            return
        if pair.name in self._recovering:
            return
        self._recovering.add(pair.name)
        record = MigrationRecord(report.kind, report.target_name)
        record.detected_at = report.confirmed_at
        self.records.append(record)
        self._active_recovery[pair.name] = record
        epoch = self._action_epoch()
        self.process.after(
            CONTROLLER_DECISION_TIME, self._initiate_container_recovery,
            pair, record, report, epoch,
        )
        self.process.after(
            self._recovery_deadline_for(pair),
            self._check_recovery_deadline, pair, record,
        )

    def _initiate_container_recovery(self, pair, record, report, epoch=None):
        if not self._action_still_valid(epoch):
            self._action_rejected(pair, record, report.kind, "leader-superseded")
            return
        record.initiated_at = self.engine.now
        done = lambda: self._recovery_done(pair, record)
        if report.kind == "application":
            record.note("in-place application restart")
            ok = self._pair_call(pair.restart_application, record, done,
                                 epoch=epoch)
            if ok is False:
                self._action_rejected(pair, record, report.kind, "stale-epoch")
        else:
            if report.kind == "container_network":
                # "the controller will kill the primary container through
                #  TKE while starting the BGP NSR migration"
                record.note("killing primary container via TKE")
                ok = self._pair_call(pair.kill_primary_container, epoch=epoch)
                if ok is False:
                    self._action_rejected(pair, record, report.kind,
                                          "stale-epoch")
                    return
            record.note("NSR migration to backup container")
            ok = self._pair_call(pair.activate_backup, record, done,
                                 cold=False, epoch=epoch)
            if ok is False:
                self._action_rejected(pair, record, report.kind, "stale-epoch")

    def _handle_backup_failure(self, pair, report):
        """A *standby* container failed: the pair lost its insurance.

        Before this path existed the report was silently dropped
        (``_pair_of_container`` only matched the primary) and a later
        primary failure migrated onto a corpse.
        """
        now = self.engine.now
        if pair.name in self._recovering:
            # the in-flight migration's target just died; the recovery
            # deadline will abandon it and re-arm detection
            self.events.append((now, "backup-failed-during-recovery",
                                (pair.name, report.target_name)))
            return
        if report.kind == "container_network":
            # The E2-vs-E4 classifier saw the standby still running —
            # only its probes failed (typically the tail of a healed
            # transient blip).  Visibility only; don't churn the standby.
            self.events.append((now, "backup-unreachable",
                                (pair.name, report.target_name)))
            return
        if getattr(pair, "backup_degraded", False):
            return
        pair.backup_degraded = True
        self.events.append((now, "backup-degraded",
                            (pair.name, report.target_name)))
        self.process.after(
            CONTROLLER_DECISION_TIME, self._refresh_standby,
            pair, report.target_name, self._action_epoch(),
        )

    def _refresh_standby(self, pair, dead_container_name, epoch):
        if not self._action_still_valid(epoch):
            self.events.append(
                (self.engine.now, "action-rejected",
                 (pair.name, "refresh_standby", "leader-superseded"))
            )
            return
        if pair.name in self._recovering:
            return  # a primary failure raced in; the migration owns the pair
        refresh = getattr(pair, "refresh_standby", None)
        if refresh is None:
            return
        ok = self._pair_call(refresh, epoch=epoch)
        if ok is False:
            self.events.append(
                (self.engine.now, "action-rejected",
                 (pair.name, "refresh_standby", "stale-epoch"))
            )
            return
        if ok:
            self.events.append(
                (self.engine.now, "backup-refreshed",
                 (pair.name, pair.backup_container_name))
            )
            self._reset_target(dead_container_name)

    def _handle_machine_failure(self, report):
        machine_name = report.target_name
        epoch = self._action_epoch()
        # Fencing first: the machine must never answer for service
        # addresses again until manually reset (split-brain guard).
        ok = self.fencing.fence(machine_name, epoch=epoch)
        if ok is False:
            self.events.append(
                (self.engine.now, "action-rejected",
                 (machine_name, "fence", "stale-epoch"))
            )
            return
        affected = [
            pair
            for pair in self.pairs.values()
            if pair.primary_machine_name == machine_name
            and pair.name not in self._recovering
        ]
        self.events.append(
            (self.engine.now, "machine-migration", (machine_name, len(affected)))
        )
        for index, pair in enumerate(affected):
            self._recovering.add(pair.name)
            record = MigrationRecord("machine", pair.primary_container_name)
            record.detected_at = report.confirmed_at
            self.records.append(record)
            self._active_recovery[pair.name] = record
            delay = CONTROLLER_DECISION_TIME_MACHINE + index * HOST_MIGRATION_STAGGER
            self.process.after(
                delay, self._initiate_machine_recovery, pair, record, epoch
            )
            self.process.after(
                delay + self._recovery_deadline_for(pair),
                self._check_recovery_deadline, pair, record,
            )

    def _initiate_machine_recovery(self, pair, record, epoch=None):
        if not self._action_still_valid(epoch):
            self._action_rejected(pair, record, "machine", "leader-superseded")
            return
        record.initiated_at = self.engine.now
        record.note("mass NSR migration after machine failure")
        ok = self._pair_call(
            pair.activate_backup, record,
            lambda: self._recovery_done(pair, record), cold=True, epoch=epoch,
        )
        if ok is False:
            self._action_rejected(pair, record, "machine", "stale-epoch")

    def _recovery_done(self, pair, record):
        if getattr(record, "abandoned", False):
            # the deadline already gave up on this migration; the pair's
            # state was re-armed, so only note the straggler completion
            record.note("late completion after abandonment")
            self.events.append(
                (self.engine.now, "recovery-late-completion", pair.name)
            )
            return
        if record.recovered_at is None:
            record.recovered_at = self.engine.now
        self._recovering.discard(pair.name)
        self._active_recovery.pop(pair.name, None)
        self.events.append((self.engine.now, "recovery-done", pair.name))
        self._pair_recovered(pair)

    # ------------------------------------------------------------------
    # recovery deadline: bound every migration, never leak ``_recovering``
    # ------------------------------------------------------------------

    def _recovery_deadline_for(self, pair):
        """Deadline budget, scaled by the pair's config size.

        ``RECOVERY_DEADLINE`` covers detection → decision → boot → TCP
        repair with generous slack; the per-entry term covers config
        load on full-table pairs, where a legitimate cold boot takes
        minutes — those must not be falsely abandoned.
        """
        entries = getattr(pair, "config_entries", 0) or 0
        return RECOVERY_DEADLINE + CONFIG_LOAD_TIME_PER_ENTRY * entries

    def _check_recovery_deadline(self, pair, record):
        if record.recovered_at is not None:
            return
        if self._active_recovery.get(pair.name) is not record:
            return  # closed out or superseded meanwhile
        record.abandoned = True
        record.note("recovery abandoned: deadline expired")
        self.abandoned_records.append(record)
        self._recovering.discard(pair.name)
        self._active_recovery.pop(pair.name, None)
        self.events.append(
            (self.engine.now, "recovery-abandoned",
             (pair.name, record.failure_kind))
        )
        self._rearm_pair_detection(pair)
        self._pair_recovered(pair)

    def _rearm_pair_detection(self, pair):
        """Clear every report latch so a stuck pair can be re-detected.

        The feeds are edge-triggered: without re-arming, a pair whose
        migration died mid-flight (promotee killed) is invisible forever
        — its failure was already "reported" at every layer.
        """
        for machine_name in (pair.primary_machine_name,
                             pair.backup_machine_name):
            machine = self.machines.get(machine_name)
            if machine is not None and getattr(machine, "monitor", None) is not None:
                machine.monitor.clear_reported()
            self._rearm_target(machine_name)
        supervisor = getattr(pair, "supervisor", None)
        if supervisor is not None:
            supervisor._reported = False
        self._rearm_target(pair.primary_container_name)
        backup_name = getattr(pair, "backup_container_name", None)
        if backup_name is not None:
            self._rearm_target(backup_name)

    def _action_rejected(self, pair, record, kind, reason):
        """An epoch-fenced receiver (or a validity recheck) refused us."""
        record.abandoned = True
        record.note(f"action rejected: {reason}")
        self._recovering.discard(pair.name)
        if self._active_recovery.get(pair.name) is record:
            self._active_recovery.pop(pair.name, None)
        self.events.append(
            (self.engine.now, "action-rejected", (pair.name, kind, reason))
        )
        self._rearm_pair_detection(pair)
        self._pair_recovered(pair)

    def _pair_of_container(self, container_name):
        """Map a container to ``(pair, role)``; role is active|standby."""
        for pair in self.pairs.values():
            if pair.primary_container_name == container_name:
                return pair, "active"
            if getattr(pair, "backup_container_name", None) == container_name:
                return pair, "standby"
        return None, None

    # ------------------------------------------------------------------

    def manual_reset_machine(self, machine_name):
        """Operator unfences a repaired machine (§3.3.3).

        The reset is a reimage: every container that was running when the
        machine was fenced is stopped first.  Without this, a zombie BGP
        process from before the failure would come back online with the
        machine and fight the migrated active — the exact split-brain the
        fencing rule exists to prevent.
        """
        machine = self.machines.get(machine_name)
        if machine is not None:
            for container in machine.containers.values():
                if container.running:
                    container.stop()
            if machine.monitor is not None:
                machine.monitor.clear_reported()
        self.fencing.manual_reset(machine_name)
        self._reset_target(machine_name)

    def completed_records(self):
        return [r for r in self.records if r.complete]


class Controller(RecoveryActions):
    """The cluster controller."""

    def __init__(self, engine, host, fencing=None):
        self.engine = engine
        self.host = host  # controller's network endpoint
        self.process = Process(engine, "controller")
        self.detector = FailureDetector(engine, self._on_failure)
        # explicit None-check: an empty registry is falsy (it has __len__)
        self.fencing = fencing if fencing is not None else FencingRegistry(engine)
        self.machines = {}  # name -> HostMachine
        self.pairs = {}  # name -> pair object
        self._machine_channels = {}
        self._container_channels = {}
        self.records = []
        self.events = []
        self._recovering = set()
        self._active_recovery = {}  # pair name -> in-flight MigrationRecord
        self.abandoned_records = []
        self.failure_hooks = []  # fn(report) observers (tests/benchmarks)
        self.db_monitor = None

    # ------------------------------------------------------------------
    # registration / wiring
    # ------------------------------------------------------------------

    def register_machine(self, machine, health_port=None):
        """Track a machine: gRPC channel + its Docker-monitor events."""
        self.machines[machine.name] = machine
        port = health_port if health_port is not None else next_grpc_port(self.engine)
        HealthServer(
            self.engine,
            machine.host,
            status_fn=lambda m=machine: _machine_status(m),
            port=port,
        )
        channel = GrpcChannel(
            self.engine,
            self.host,
            machine.name,
            machine.address,
            target_port=port,
            on_unhealthy=lambda ch: self.detector.note_machine_grpc(ch.target_name, False),
            on_healthy=lambda ch: self.detector.note_machine_grpc(ch.target_name, True),
            on_status=lambda ch, status: self.detector.note_machine_status(
                ch.target_name, status
            ),
        )
        channel.start()
        self._machine_channels[machine.name] = channel
        return channel

    def register_container_channel(self, container, machine):
        """gRPC channel to one container's management endpoint."""
        if container.endpoint is None:
            raise RuntimeError(f"container {container.name} has no endpoint (not booted)")
        port = next_grpc_port(self.engine)
        HealthServer(
            self.engine,
            container.endpoint,
            status_fn=lambda c=container: _container_status(c),
            port=port,
        )
        channel = GrpcChannel(
            self.engine,
            self.host,
            container.name,
            container.endpoint.address,
            target_port=port,
            on_unhealthy=lambda ch: self.detector.note_container_grpc(
                ch.target_name, False, machine.name
            ),
            on_healthy=lambda ch: self.detector.note_container_grpc(
                ch.target_name, True, machine.name
            ),
        )
        channel.start()
        self._container_channels[container.name] = channel
        return channel

    def register_pair(self, pair):
        self.pairs[pair.name] = pair

    def attach_database(self, cluster, on_failover=None):
        """Watch a replicated KV cluster and fail it over automatically.

        On a confirmed primary death the monitor promotes the replica
        under the next cluster epoch; ``on_failover(new_addr, epoch)``
        is then invoked (the system uses it to repoint every KV client).
        """

        def record(new_addr, epoch):
            self.events.append(
                (self.engine.now, "database-failover", (new_addr, epoch))
            )
            if on_failover is not None:
                on_failover(new_addr, epoch)

        self.db_monitor = DbFailoverMonitor(
            self.engine, self.host, cluster, on_failover=record
        )
        return self.db_monitor

    def docker_event(self, kind, container, detail):
        """Entry point for ProcessMonitor events forwarded over gRPC."""
        if kind == "container-dead":
            self.detector.note_container_dead(container.name)
        elif kind == "process-dead":
            self.detector.note_process_dead(
                container.name, detail, container.machine.name
            )

    def peer_ipsla_report(self, origin_machine_name, target_name, reachable):
        """Inter-machine IP SLA verdict about ``target_name``.

        The single controller trusts every origin; the panel gates this
        on which replicas can currently reach the *origin* machine.
        """
        self.detector.note_machine_peer_ipsla(target_name, reachable)

    def _on_failure(self, report):
        self.events.append((self.engine.now, "failure-report", report))
        for hook in self.failure_hooks:
            hook(report)
        if report.kind == "machine_unreachable":
            self._handle_machine_failure(report)
        else:
            self._handle_container_level_failure(report)


def _machine_status(machine):
    return {
        "containers": {
            name: {
                "running": container.running,
                "processes": {
                    pname: container.process_alive(pname)
                    for pname in container.processes
                },
            }
            for name, container in machine.containers.items()
        },
    }


def _container_status(container):
    return {
        "running": container.running,
        "processes": {
            name: container.process_alive(name) for name in container.processes
        },
    }
