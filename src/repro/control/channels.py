"""gRPC-style channels: health servers and heartbeat clients.

"the controller will set up gRPC channels to all the containers, their
host machines, and the agent server.  The gRPC channels will send gRPC
heartbeats for health monitoring." (§3.3.2)
"""

from repro.sim.calibration import GRPC_HEARTBEAT_INTERVAL, GRPC_HEARTBEAT_TIMEOUT
from repro.sim.process import Process
from repro.sim.rpc import RpcClient, RpcServer

GRPC_PORT_BASE = 50051


class HealthServer:
    """The gRPC health endpoint running on a monitored entity.

    ``status_fn()`` returns a dict (process states etc.) included in every
    heartbeat reply; the controller's application-layer management reads
    it.
    """

    def __init__(self, engine, host, status_fn=None, port=GRPC_PORT_BASE):
        self.engine = engine
        self.host = host
        self.port = port
        self.status_fn = status_fn or (lambda: {})
        self.rpc = RpcServer(engine, host, port, self._handle, protocol="grpc")

    def _handle(self, method, _body):
        if method == "health":
            return {"ok": True, "status": self.status_fn()}
        return {"ok": False}

    def close(self):
        self.rpc.close()


class GrpcChannel:
    """A controller-side heartbeat channel to one health server.

    After ``miss_threshold`` consecutive timeouts the channel reports
    unhealthy via ``on_unhealthy(channel)``; a later success reports
    ``on_healthy(channel)``.  Healthy replies stream their status dict to
    ``on_status(channel, status)``.
    """

    def __init__(
        self,
        engine,
        local_host,
        target_name,
        target_addr,
        target_port=GRPC_PORT_BASE,
        interval=GRPC_HEARTBEAT_INTERVAL,
        timeout=GRPC_HEARTBEAT_TIMEOUT,
        miss_threshold=2,
        on_unhealthy=None,
        on_healthy=None,
        on_status=None,
    ):
        self.engine = engine
        self.target_name = target_name
        self.target_addr = target_addr
        self.interval = interval
        self.timeout = timeout
        self.miss_threshold = miss_threshold
        self.on_unhealthy = on_unhealthy
        self.on_healthy = on_healthy
        self.on_status = on_status
        self.client = RpcClient(engine, local_host, target_addr, target_port, protocol="grpc")
        self.process = Process(engine, f"grpc:{target_name}")
        self.consecutive_misses = 0
        self.healthy = True
        self.last_status = {}
        self.last_reply_at = None
        self._task = None

    def start(self):
        self._task = self.process.every(self.interval, self._beat)

    def _beat(self):
        self.client.call(
            "health",
            {},
            on_reply=self._on_reply,
            on_timeout=self._on_miss,
            timeout=self.timeout,
        )

    def _on_reply(self, reply):
        self.consecutive_misses = 0
        self.last_reply_at = self.engine.now
        self.last_status = reply.get("status", {})
        if not self.healthy:
            self.healthy = True
            if self.on_healthy is not None:
                self.on_healthy(self)
        if self.on_status is not None:
            self.on_status(self, self.last_status)

    def _on_miss(self):
        self.consecutive_misses += 1
        if self.healthy and self.consecutive_misses >= self.miss_threshold:
            self.healthy = False
            if self.on_unhealthy is not None:
                self.on_unhealthy(self)

    def stop(self):
        self.process.kill()
        self.client.close()

    def __repr__(self):
        state = "healthy" if self.healthy else "UNHEALTHY"
        return f"<GrpcChannel to {self.target_name} {state}>"


def next_grpc_port(engine):
    """Distinct port per health server co-hosted on one endpoint.

    Engine-scoped so that allocations in one simulation are independent
    of any other simulation sharing the process (parallel-runtime
    determinism across worker placements).
    """
    return GRPC_PORT_BASE + engine.next_id("grpc.port") % 1000
