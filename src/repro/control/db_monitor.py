"""Controller-side database health monitor and automatic failover.

Reuses the §3.3 detection discipline (periodic probes, a miss window,
then a verdict) against the KV cluster's primary: the controller pings
the primary's KV port, and when misses accumulate past a confirmation
window it promotes the replica under the next cluster epoch and pushes
repoints to every registered client so held ACKs drain automatically.

Timing: probes every ``PING_INTERVAL`` with a ``PING_TIMEOUT`` budget,
promotion after ``CONFIRM_WINDOW`` of continuous silence.  The window is
deliberately wider than any transient database blip the chaos engine
injects (0.4–1.2 s, and the 2.0 s ablation outage in the NSR invariant
tests) so a recoverable hiccup never triggers a spurious failover, yet
narrow enough that detection + promotion + client drain completes well
inside the liveness oracle's 6 s held-ACK streak limit.
"""

from repro.kvstore.client import KvClient

PING_INTERVAL = 0.5
PING_TIMEOUT = 0.5
CONFIRM_WINDOW = 2.5


class DbFailoverMonitor:
    """Pings the KV primary; promotes the replica on confirmed death."""

    def __init__(self, engine, host, cluster, on_failover=None):
        self.engine = engine
        self.host = host
        self.cluster = cluster
        self.on_failover = on_failover
        self.client = KvClient(engine, host, cluster.primary_addr,
                               cluster.port)
        self._first_miss = None
        self._stopped = False
        self.failovers = 0
        self.engine.schedule(PING_INTERVAL, self._tick)

    def _tick(self):
        if self._stopped:
            return
        self.client.ping(
            on_done=self._on_pong,
            on_error=self._on_miss,
            timeout=PING_TIMEOUT,
        )
        self.engine.schedule(PING_INTERVAL, self._tick)

    def _on_pong(self):
        self._first_miss = None

    def _on_miss(self, _method, _cause):
        if self._stopped:
            return
        now = self.engine.now
        if self._first_miss is None:
            self._first_miss = now
            return
        if now - self._first_miss < CONFIRM_WINDOW:
            return
        self._promote()

    def _promote(self):
        cluster = self.cluster
        # Only promote when there is a live replica to promote onto;
        # after one failover the "replica" slot holds the dead old
        # primary, so a second confirmed death (both nodes gone) waits
        # here rather than ping-ponging the primary role.
        if cluster.replica is None or cluster.replica.failed:
            return
        new_addr = cluster.promote_replica()
        self.failovers += 1
        self._first_miss = None
        self.client.repoint(new_addr, epoch=cluster.epoch)
        if self.on_failover is not None:
            self.on_failover(new_addr, cluster.epoch)

    def stop(self):
        self._stopped = True
        self.client.close()
