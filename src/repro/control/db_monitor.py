"""Controller-side database health monitor and automatic failover.

Reuses the §3.3 detection discipline (periodic probes, a miss window,
then a verdict) against the KV cluster's primary: the controller pings
the primary's KV port, and when misses accumulate past a confirmation
window it promotes the replica under the next cluster epoch and pushes
repoints to every registered client so held ACKs drain automatically.

Timing: probes every ``PING_INTERVAL`` with a ``PING_TIMEOUT`` budget,
promotion after ``CONFIRM_WINDOW`` of continuous silence.  The window is
deliberately wider than any transient database blip the chaos engine
injects (0.4–1.2 s, and the 2.0 s ablation outage in the NSR invariant
tests) so a recoverable hiccup never triggers a spurious failover, yet
narrow enough that detection + promotion + client drain completes well
inside the liveness oracle's 6 s held-ACK streak limit.

Both the pong and the miss path check the *endpoint generation* the ping
was issued against: after a repoint (or stop) a straggler reply from the
old — possibly fenced — primary must neither clear ``_first_miss`` and
mask a real outage, nor count as a miss against the new primary.

Under the replicated controller panel (DESIGN.md §15) each replica runs
its own monitor as a *witness*: instead of promoting directly it hands a
verdict to the panel via ``propose``, and the quorum leader calls
:meth:`execute_promotion` with its leadership epoch.  The losing
replicas are then told about the outcome via :meth:`note_promoted` so
their probes chase the new primary.
"""

from repro.kvstore.client import KvClient

PING_INTERVAL = 0.5
PING_TIMEOUT = 0.5
CONFIRM_WINDOW = 2.5


class DbFailoverMonitor:
    """Pings the KV primary; promotes the replica on confirmed death."""

    def __init__(self, engine, host, cluster, on_failover=None, propose=None):
        self.engine = engine
        self.host = host
        self.cluster = cluster
        self.on_failover = on_failover
        #: panel mode — called with (monitor) instead of promoting locally
        self.propose = propose
        self.client = KvClient(engine, host, cluster.primary_addr,
                               cluster.port)
        self._first_miss = None
        self._stopped = False
        self.failovers = 0
        self.engine.schedule(PING_INTERVAL, self._tick)

    def _tick(self):
        if self._stopped:
            return
        generation = self.client.endpoint_generation
        self.client.ping(
            on_done=lambda: self._on_pong(generation),
            on_error=lambda method, cause: self._on_miss(method, cause,
                                                         generation),
            timeout=PING_TIMEOUT,
        )
        self.engine.schedule(PING_INTERVAL, self._tick)

    def _on_pong(self, generation):
        if self._stopped or generation != self.client.endpoint_generation:
            return
        self._first_miss = None

    def _on_miss(self, _method, _cause, generation=None):
        if self._stopped:
            return
        if (generation is not None
                and generation != self.client.endpoint_generation):
            return
        now = self.engine.now
        if self._first_miss is None:
            self._first_miss = now
            return
        if now - self._first_miss < CONFIRM_WINDOW:
            return
        self._promote()

    def promotion_viable(self):
        # Only promote when there is a live replica to promote onto;
        # after one failover the "replica" slot holds the dead old
        # primary, so a second confirmed death (both nodes gone) waits
        # here rather than ping-ponging the primary role.
        cluster = self.cluster
        return cluster.replica is not None and not cluster.replica.failed

    def _promote(self):
        if not self.promotion_viable():
            return
        if self.propose is not None:
            self.propose(self)
            return
        self.execute_promotion()

    def execute_promotion(self, controller_epoch=None):
        """Promote the replica; the quorum leader's entry point.

        Returns the new primary address, or None when the promotion was
        not viable or the cluster's epoch gate rejected a stale leader.
        """
        if not self.promotion_viable():
            return None
        new_addr = self.cluster.promote_replica(
            controller_epoch=controller_epoch)
        if new_addr is None:
            return None
        self.failovers += 1
        self._first_miss = None
        self.client.repoint(new_addr, epoch=self.cluster.epoch)
        if self.on_failover is not None:
            self.on_failover(new_addr, self.cluster.epoch)
        return new_addr

    def note_promoted(self, new_addr, epoch):
        """A *different* replica's promotion won: follow the new primary."""
        self._first_miss = None
        self.client.repoint(new_addr, epoch=epoch)

    def stop(self):
        self._stopped = True
        self.client.close()
